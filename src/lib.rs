//! # obfs — Optimistic lock-free parallel BFS
//!
//! Facade crate re-exporting the public API of the workspace. See the
//! README for the full architecture and `DESIGN.md` for the paper mapping.
//!
//! ```
//! use obfs::prelude::*;
//!
//! let g = gen::erdos_renyi(1_000, 8_000, 42);
//! let opts = BfsOptions { threads: 4, ..BfsOptions::default() };
//! let result = run_bfs(Algorithm::Bfswsl, &g, 0, &opts);
//! let serial = serial_bfs(&g, 0);
//! assert_eq!(result.levels, serial.levels);
//! ```

#![warn(missing_docs)]

pub use obfs_apps as apps;
pub use obfs_baselines as baselines;
pub use obfs_core as core;
pub use obfs_graph as graph;
pub use obfs_runtime as runtime;
pub use obfs_sync as sync;
pub use obfs_util as util;

/// Everything a typical downstream user needs.
pub mod prelude {
    pub use obfs_core::{
        run_batch, run_bfs, serial::serial_bfs, Algorithm, BatchResult, BfsOptions, BfsResult,
        CompactionPolicy, DedupMode, Direction, ForcedDirection, HybridPolicy, KernelChoice,
        ScanBackend, SegmentPolicy, WatchdogPolicy, MAX_BATCH,
    };
    pub use obfs_graph::{gen, CsrGraph, GraphBuilder};
    pub use obfs_sync::ChaosConfig;
    pub use obfs_util::Xoshiro256StarStar;
}
