#!/usr/bin/env bash
# Download a small set of real SuiteSparse graphs and run the
# Graph500-style BFS kernel over them (`realgraph` bench bin), emitting
# BENCH_realgraph.json for the `compare` regression gate.
#
# Everything else in this repo runs offline; this script is the one
# deliberately-online leg, so it SOFT-FAILS on network trouble: if no
# graph can be fetched it prints a notice and exits 0 (CI's scheduled
# job then simply has nothing to compare). Downloads are cached in
# $CACHE_DIR, so repeat runs (and the CI cache action) skip the network.
#
#   THREADS=8 SOURCES=16 ./scripts/realgraph.sh
#   BASELINE=results/BENCH_realgraph_prev.json ./scripts/realgraph.sh
#
# With BASELINE set and present, the fresh report is diffed against it
# with the regression gate (informational here; the scheduled workflow
# decides what to do with the exit code).
set -uo pipefail
cd "$(dirname "$0")/.."

THREADS="${THREADS:-8}"
SOURCES="${SOURCES:-8}"
SEED="${SEED:-1}"
CACHE_DIR="${CACHE_DIR:-.realgraph-cache}"
BASELINE="${BASELINE:-}"

# Small, well-connected SuiteSparse matrices (MatrixMarket format):
# undirected road-ish / web-ish graphs in the few-hundred-K-edge range —
# big enough to exercise stealing, small enough for a CI runner.
GRAPHS=(
  "https://suitesparse-collection-website.herokuapp.com/MM/SNAP/ca-GrQc.tar.gz ca-GrQc"
  "https://suitesparse-collection-website.herokuapp.com/MM/SNAP/as-735.tar.gz as-735"
  "https://suitesparse-collection-website.herokuapp.com/MM/Gleich/minnesota.tar.gz minnesota"
)

mkdir -p "$CACHE_DIR"
fetched=()

for entry in "${GRAPHS[@]}"; do
    url="${entry% *}"
    name="${entry#* }"
    mtx="$CACHE_DIR/$name.mtx"
    if [[ -s "$mtx" ]]; then
        echo "cached: $mtx"
        fetched+=("$mtx")
        continue
    fi
    echo "fetching $name ..."
    tmp="$CACHE_DIR/$name.tar.gz"
    if curl -fsSL --connect-timeout 15 --max-time 300 -o "$tmp" "$url"; then
        # Archives unpack to <name>/<name>.mtx.
        if tar -xzf "$tmp" -C "$CACHE_DIR" && [[ -s "$CACHE_DIR/$name/$name.mtx" ]]; then
            mv "$CACHE_DIR/$name/$name.mtx" "$mtx"
            rm -rf "$CACHE_DIR/$name" "$tmp"
            fetched+=("$mtx")
        else
            echo "notice: $name: archive did not contain $name.mtx; skipping" >&2
            rm -rf "$CACHE_DIR/$name" "$tmp"
        fi
    else
        echo "notice: could not download $name (network unavailable?); skipping" >&2
        rm -f "$tmp"
    fi
done

if [[ ${#fetched[@]} -eq 0 ]]; then
    echo "realgraph.sh: no graphs available (offline?) — nothing to do, exiting 0"
    exit 0
fi

set -e
cargo run --release -q -p obfs-bench --bin realgraph -- \
    "${fetched[@]}" --json --threads "$THREADS" --sources "$SOURCES" --seed "$SEED"

if [[ -n "$BASELINE" && -s "$BASELINE" ]]; then
    echo "== regression gate vs $BASELINE =="
    cargo run --release -q -p obfs-bench --bin compare -- \
        "$BASELINE" BENCH_realgraph.json
else
    echo "realgraph.sh: no baseline to compare against (set BASELINE=...)"
fi
