#!/usr/bin/env bash
# Sanitizer + fault-injection gate (invoked by .github/workflows/ci.yml,
# runnable locally from anywhere in the repo).
#
# Two legs:
#   1. The chaos suite: every parallel algorithm under deterministic
#      fault plans, asserting exact results AND that each recovery
#      counter fires (tests/chaos.rs + the chaos-gated unit tests).
#   2. ThreadSanitizer over the relaxed-atomic racy backend. That
#      backend is data-race-free by construction (relaxed atomics are
#      not data races), so TSan verifies no unintended plain-memory
#      race snuck into the queues, barrier, worker pool, or driver.
#      Requires nightly + rust-src (-Zbuild-std instruments std too);
#      skipped with a warning when unavailable (e.g. offline sandboxes).
#
# The volatile backend is intentionally NOT run under TSan: its whole
# point is bit-level fidelity to the paper's deliberate C++ data races,
# which TSan would (correctly) report.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== leg 1: chaos fault-injection suite (default backend) =="
cargo test --features chaos --quiet

echo "== leg 2: ThreadSanitizer on the relaxed-atomic backend =="
host="$(rustc -vV | sed -n 's/^host: //p')"
src_lock="$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library/Cargo.lock"
if [[ -f "$src_lock" ]]; then
    # --lib --tests: doctests don't link against the instrumented std.
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        -p obfs-sync -p obfs-runtime -p obfs-core --lib --tests --quiet
else
    echo "warning: nightly rust-src not installed; skipping the TSan leg" >&2
    echo "         (rustup component add rust-src --toolchain nightly)" >&2
fi

echo "sanitize.sh: all gates passed"
