#!/usr/bin/env bash
# Sanitizer + fault-injection + static-analysis gate (invoked by
# .github/workflows/ci.yml, runnable locally from anywhere in the repo).
#
# Four legs:
#   1. Bounded model checking: `obfs model` explores interleavings of
#      the three racy protocol cores over virtualized TSO memory and
#      must find every seeded bug while the real protocols hold
#      (crates/core/src/model). Always runs — needs no nightly, no
#      sanitizer runtime, no network.
#   2. obfs-lint: the token-aware race-surface audit — SAFETY comments
#      on every unsafe block, the counted crates/sync containment
#      allowlist, zero locks/RMWs in every hot-path region (budgets
#      pinned in lint/budget.txt), `// ord:` justifications on strong
#      orderings, racy-protocol claim/revalidation pairing, feature-shim
#      signature parity, and DESIGN.md flight-taxonomy drift — then the
#      mutation self-test, which seeds an RMW into a live hot-path
#      region and requires the analyzer to catch it. Always runs.
#   3. The chaos suite: every parallel algorithm under deterministic
#      fault plans, asserting exact results AND that each recovery
#      counter fires (tests/chaos.rs + the chaos-gated unit tests).
#   4. ThreadSanitizer over the relaxed-atomic racy backend. That
#      backend is data-race-free by construction (relaxed atomics are
#      not data races), so TSan verifies no unintended plain-memory
#      race snuck into the queues, barrier, worker pool, or driver.
#      Requires nightly + rust-src (-Zbuild-std instruments std too);
#      skipped with a warning when unavailable (e.g. offline sandboxes).
#
# Legs 3 and 4 are the *dynamic* race checks; legs 1 and 2 are static
# and unconditional, so the gate still exercises the racy protocols
# even where TSan cannot run. If every dynamic AND model-based race leg
# were skipped the gate would be vacuous, so that exits non-zero.
#
# The volatile backend is intentionally NOT run under TSan: its whole
# point is bit-level fidelity to the paper's deliberate C++ data races,
# which TSan would (correctly) report.
set -euo pipefail
cd "$(dirname "$0")/.."

race_legs_run=0

echo "== leg 1: bounded model check of the racy protocol cores =="
cargo run --release --quiet -p obfs-cli -- model
race_legs_run=$((race_legs_run + 1))

echo "== leg 2: obfs-lint (race-surface audit + mutation self-test) =="
cargo run --release --quiet -p obfs-lint -- .
./scripts/lint_selftest.sh

echo "== leg 3: chaos fault-injection suite (default backend) =="
cargo test --features chaos --quiet
race_legs_run=$((race_legs_run + 1))

echo "== leg 4: ThreadSanitizer on the relaxed-atomic backend =="
host="$(rustc -vV | sed -n 's/^host: //p')"
src_lock="$(rustc +nightly --print sysroot 2>/dev/null)/lib/rustlib/src/rust/library/Cargo.lock"
if [[ -f "$src_lock" ]]; then
    # --lib --tests: doctests don't link against the instrumented std.
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host" \
        -p obfs-sync -p obfs-runtime -p obfs-core --lib --tests --quiet
    race_legs_run=$((race_legs_run + 1))
else
    echo "warning: nightly rust-src not installed; skipping the TSan leg" >&2
    echo "         (rustup component add rust-src --toolchain nightly)" >&2
fi

if [[ "$race_legs_run" -eq 0 ]]; then
    echo "error: every race-checking leg was skipped — the gate verified nothing" >&2
    exit 1
fi

echo "sanitize.sh: all gates passed ($race_legs_run race-checking legs ran)"
