#!/usr/bin/env bash
# Regenerate every recorded benchmark artifact: the human-readable tables
# in results/*.txt and the machine-readable BENCH_*.json reports (table6,
# fig3, graph500 — the bins wired to the BenchReport emitter). Run from
# anywhere in the repo; artifacts land in results/ and the repo root.
#
# The flag values below are the ones the committed results were recorded
# with; override via env, e.g.
#
#   DIVISOR=128 THREADS=4 ./scripts/bench.sh        # quicker smoke pass
#   ONLY=table6 ./scripts/bench.sh                  # one benchmark
#
# Every emitted BENCH_*.json is schema-validated by the bin itself before
# it exits (and again by tests/bench_schema.rs), so a bad report fails
# this script rather than landing in a commit.
set -euo pipefail
cd "$(dirname "$0")/.."

DIVISOR="${DIVISOR:-64}"
THREADS="${THREADS:-12}"
SOURCES="${SOURCES:-8}"
SEED="${SEED:-1}"
ONLY="${ONLY:-}"

run() {
    local name="$1"
    shift
    if [[ -n "$ONLY" && "$ONLY" != "$name" ]]; then
        return
    fi
    echo "== bench: $name =="
    cargo run --release -q -p obfs-bench --bin "$name" -- "$@"
}

mkdir -p results

# Tables and figures of the paper (text artifacts).
run table4 --divisor "$DIVISOR" --seed "$SEED" \
    | tee results/table4.txt
run table5 --divisor "$DIVISOR" --threads 12 --sources "$SOURCES" --seed "$SEED" \
    | tee results/table5_p12.txt
run table5 --divisor "$DIVISOR" --threads 32 --sources "$SOURCES" --seed "$SEED" \
    | tee results/table5_p32.txt
run fig2 --divisor "$DIVISOR" --sources 5 --seed "$SEED" \
    | tee results/fig2.txt
run levels --divisor "$DIVISOR" --threads "$THREADS" --seed "$SEED" \
    | tee results/levels.txt
run ablations --divisor "$DIVISOR" --threads "$THREADS" --sources "$SOURCES" --seed "$SEED" \
    | tee results/ablations.txt

# The three bins with machine-readable reports (BENCH_<name>.json in CWD).
run table6 --json --divisor "$DIVISOR" --threads "$THREADS" --sources 20 --seed "$SEED" \
    | tee results/table6.txt
run fig3 --json --divisor "$DIVISOR" --threads "$THREADS" --sources "$SOURCES" --seed "$SEED" \
    | tee results/fig3.txt
run graph500 --json --divisor 32 --threads "$THREADS" --sources 16 --seed "$SEED" \
    | tee results/graph500.txt

echo "bench.sh: done (tables in results/, reports in BENCH_*.json)"
