#!/usr/bin/env bash
# Regenerate every recorded benchmark artifact: the human-readable tables
# in results/*.txt and the machine-readable BENCH_*.json reports (table6,
# fig3, graph500 — the bins wired to the BenchReport emitter). Run from
# anywhere in the repo; artifacts land in results/ and the repo root.
#
# The flag values below are the ones the committed results were recorded
# with; override via env, e.g.
#
#   DIVISOR=128 THREADS=4 ./scripts/bench.sh        # quicker smoke pass
#   ONLY=table6 ./scripts/bench.sh                  # one benchmark
#
# Every emitted BENCH_*.json is schema-validated by the bin itself before
# it exits (and again by tests/bench_schema.rs), so a bad report fails
# this script rather than landing in a commit.
set -euo pipefail
cd "$(dirname "$0")/.."

DIVISOR="${DIVISOR:-64}"
THREADS="${THREADS:-12}"
SOURCES="${SOURCES:-8}"
SEED="${SEED:-1}"
ONLY="${ONLY:-}"

# run <bin> <outfile> <flags...> — the tee happens inside so a skipped
# benchmark (ONLY=...) never truncates another benchmark's recording.
run() {
    local name="$1" out="$2"
    shift 2
    if [[ -n "$ONLY" && "$ONLY" != "$name" ]]; then
        return
    fi
    echo "== bench: $name =="
    cargo run --release -q -p obfs-bench --bin "$name" -- "$@" | tee "$out"
}

mkdir -p results

# Tables and figures of the paper (text artifacts).
run table4 results/table4.txt --divisor "$DIVISOR" --seed "$SEED"
run table5 results/table5_p12.txt --divisor "$DIVISOR" --threads 12 --sources "$SOURCES" --seed "$SEED"
run table5 results/table5_p32.txt --divisor "$DIVISOR" --threads 32 --sources "$SOURCES" --seed "$SEED"
run fig2 results/fig2.txt --divisor "$DIVISOR" --sources 5 --seed "$SEED"
run levels results/levels.txt --divisor "$DIVISOR" --threads "$THREADS" --seed "$SEED"
run ablations results/ablations.txt --divisor "$DIVISOR" --threads "$THREADS" --sources "$SOURCES" --seed "$SEED"

# The bins with machine-readable reports (BENCH_<name>.json in CWD).
run table6 results/table6.txt --json --hybrid --divisor "$DIVISOR" --threads "$THREADS" --sources 20 --seed "$SEED"
run fig3 results/fig3.txt --json --divisor "$DIVISOR" --threads "$THREADS" --sources "$SOURCES" --seed "$SEED"
run graph500 results/graph500.txt --json --divisor 32 --threads "$THREADS" --sources 16 --seed "$SEED"
run bombard results/bombard.txt --json --batch --divisor "$DIVISOR" --threads "$THREADS" --seed "$SEED" \
    --queries 512 --capacity 256 --burst 256

echo "bench.sh: done (tables in results/, reports in BENCH_*.json)"
