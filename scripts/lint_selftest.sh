#!/usr/bin/env bash
# Mutation self-test for obfs-lint (invoked by .github/workflows/ci.yml,
# runnable locally from anywhere in the repo).
#
# The fixture tests prove each pass fires on synthetic trees; this
# script proves the deployed gate fires on *this* tree: it copies the
# repo, seeds an atomic RMW into the first hot-path region of
# crates/core/src/state.rs, and requires the prebuilt analyzer to exit 1
# with a `hot-path-atomics` finding. If the markers drifted, the scan
# skipped the file, or the zero-RMW rule went soft, the seeded violation
# sails through and this script fails CI.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint mutation self-test =="
cargo build --release --quiet -p obfs-lint
bin="$(pwd)/target/release/obfs-lint"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Copy the tree minus the build cache and git metadata.
for entry in ./* ./.github; do
    base="$(basename "$entry")"
    [[ "$base" == "target" || "$base" == "*" ]] && continue
    cp -r "$entry" "$tmp/"
done

echo "-- control: the pristine copy must pass --"
"$bin" "$tmp" >/dev/null

victim="$tmp/crates/core/src/state.rs"
grep -q 'lint:region hot-path:' "$victim" || {
    echo "error: no hot-path region marker in state.rs — mutation has no target" >&2
    exit 1
}
awk '
    !seeded && /lint:region hot-path:/ {
        print
        print "    POISON.fetch_add(1, ORD); // seeded by lint_selftest.sh"
        seeded = 1
        next
    }
    { print }
' "$victim" > "$victim.tmp" && mv "$victim.tmp" "$victim"

echo "-- mutant: a seeded RMW in a hot-path region must fail the lint --"
set +e
out="$("$bin" "$tmp" 2>&1)"
status=$?
set -e
if [[ "$status" -ne 1 ]]; then
    echo "error: expected exit 1 from the mutated tree, got $status" >&2
    echo "$out" >&2
    exit 1
fi
if ! grep -q 'hot-path-atomics' <<<"$out"; then
    echo "error: mutated tree failed, but not with a hot-path-atomics finding:" >&2
    echo "$out" >&2
    exit 1
fi

echo "lint_selftest.sh: seeded hot-path RMW was caught (exit 1, hot-path-atomics)"
