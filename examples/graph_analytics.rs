//! One pass through the application layer: everything the paper's §I
//! says BFS is a building block for, executed on one scale-free graph —
//! components, shortest paths, bipartiteness, clustering, betweenness
//! centrality, and a max-flow instance derived from the graph.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use obfs::apps;
use obfs::prelude::*;

fn main() {
    let graph = gen::suite::scale_free_like(50_000, 10.0, 2.3, 77);
    // Symmetrize for the undirected analyses.
    let mut b = GraphBuilder::new(graph.num_vertices()).symmetrize(true);
    b.extend(graph.edges());
    let graph = b.build();
    println!(
        "graph: {} vertices, {} edges (symmetrized scale-free)",
        graph.num_vertices(),
        graph.num_edges()
    );
    let opts = BfsOptions { threads: 8, ..BfsOptions::default() };

    // --- connected components ---
    let c = apps::connected_components(&graph, Algorithm::Bfscl, &opts);
    let mut sizes = c.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "\ncomponents: {} total; giant = {} vertices ({:.1}%)",
        c.count,
        c.giant_size(),
        100.0 * c.giant_size() as f64 / graph.num_vertices() as f64
    );

    // --- shortest path between two random giant-component members ---
    let members: Vec<u32> = (0..graph.num_vertices() as u32)
        .filter(|&v| c.label[v as usize] == 0)
        .collect();
    let (a, z) = (members[0], members[members.len() - 1]);
    match apps::shortest_path(&graph, a, z, Algorithm::Bfswsl, &opts) {
        Some(p) => println!("shortest path {a} -> {z}: {} hops", p.hops()),
        None => println!("{a} and {z} are disconnected (unexpected)"),
    }

    // --- bipartiteness ---
    match apps::bipartition(&graph, Algorithm::Bfscl, &opts) {
        apps::Bipartition::Bipartite { .. } => {
            println!("bipartite: yes (no odd cycles)")
        }
        apps::Bipartition::OddCycle { u, v } => {
            println!("bipartite: no — odd cycle through edge ({u}, {v})")
        }
    }

    // --- BFS-ball clustering (the ref. [8] primitive) ---
    let clustering = apps::bfs_ball_clustering(&graph, 2);
    let csizes = clustering.sizes();
    println!(
        "clustering (radius 2): {} clusters, largest {}, mean size {:.1}",
        clustering.count(),
        csizes.iter().max().unwrap(),
        graph.num_vertices() as f64 / clustering.count() as f64
    );

    // --- sampled betweenness centrality ---
    let bc = apps::betweenness_centrality(&graph, 24, 3);
    let mut ranked: Vec<(u32, f64)> =
        bc.iter().enumerate().map(|(v, &x)| (v as u32, x)).collect();
    ranked.sort_by(|x, y| y.1.partial_cmp(&x.1).unwrap());
    println!("\ntop-5 betweenness (24 pivots):");
    for &(v, score) in ranked.iter().take(5) {
        println!("  v{v:<7} bc≈{score:>12.0}  degree {}", graph.degree(v));
    }

    // --- max flow between the two biggest hubs ---
    let (hub1, _) = graph.max_degree();
    let hub1 = {
        let _ = hub1;
        ranked[0].0
    };
    let hub2 = ranked[1].0;
    let mut net = apps::FlowNetwork::new(graph.num_vertices());
    for (u, v) in graph.edges() {
        net.add_edge(u, v, 1);
    }
    let mut net2 = net.clone();
    let flow = apps::max_flow(&mut net2, hub1, hub2);
    println!(
        "\nmax flow (unit capacities) between hubs v{hub1} and v{hub2}: {flow} \
         (= number of edge-disjoint paths)"
    );
    assert!(flow >= 1, "hubs in the giant component must be connected");
}
