//! Social-network analysis: the "degrees of separation" workload from
//! the paper's motivation. Builds a Barabási–Albert network, measures
//! separation from several seed users with every BFS algorithm, and
//! shows why hub handling matters on scale-free graphs.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use obfs::prelude::*;
use obfs_graph::stats;

fn main() {
    // Preferential-attachment network: 200k users, each new user follows
    // 4 existing ones; early users become celebrities (hubs).
    let n = 200_000;
    let graph = gen::barabasi_albert(n, 4, 7);
    let summary = stats::summarize(&graph);
    println!(
        "network: {} users, {} follow edges, biggest hub has {} connections",
        summary.n, summary.m, summary.max_degree
    );
    if let Some(gamma) = summary.power_law_gamma {
        println!("degree distribution power-law exponent ≈ {gamma:.2} (BA model: ≈3)");
    }

    let threads = 8;
    let runner = obfs::core::BfsRunner::new(threads);
    let opts = BfsOptions { threads, ..BfsOptions::default() };
    let sources = stats::sample_sources(&graph, 3, 99);

    println!("\nper-algorithm traversal of {} sources:", sources.len());
    for algo in [
        Algorithm::Serial,
        Algorithm::Bfscl,
        Algorithm::Bfswl,
        Algorithm::Bfswsl,
    ] {
        let mut total_ms = 0.0;
        let mut max_sep = 0;
        for &src in &sources {
            let r = runner.run(algo, &graph, src, &opts);
            total_ms += r.stats.traversal_time.as_secs_f64() * 1e3;
            max_sep = max_sep.max(r.depth());
        }
        println!(
            "  {:<8} {:>8.2} ms total, max separation {}",
            algo.name(),
            total_ms,
            max_sep
        );
    }

    // Degrees-of-separation distribution from one user.
    let src = sources[0];
    let r = runner.run(Algorithm::Bfswsl, &graph, src, &opts);
    let mut by_level = vec![0usize; r.depth() as usize + 1];
    for &l in &r.levels {
        if l != obfs::core::UNVISITED {
            by_level[l as usize] += 1;
        }
    }
    println!("\ndegrees of separation from user {src}:");
    let mut cumulative = 0usize;
    for (d, c) in by_level.iter().enumerate() {
        cumulative += c;
        println!(
            "  within {d} hops: {:>7} users ({:.1}%)",
            cumulative,
            100.0 * cumulative as f64 / n as f64
        );
    }

    // Hub diversion telemetry: the scale-free variant classifies
    // high-degree users into the phase-2 hub path.
    let hub_threshold = opts.resolved_hub_threshold(&graph);
    let hubs = (0..n as u32).filter(|&v| graph.degree(v) > hub_threshold).count();
    println!(
        "\nscale-free handling: {hubs} users exceed the hub threshold ({hub_threshold}); \
         their follow lists are split across all {threads} workers in phase 2"
    );
}
