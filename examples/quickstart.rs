//! Quickstart: generate a graph, run the paper's headline algorithm
//! (BFSWSL — lock-free, scale-free work-stealing), and verify the result.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use obfs::prelude::*;

fn main() {
    // A scale-free graph like the web/social graphs the paper targets:
    // 100k vertices, power-law degrees.
    let graph = gen::suite::scale_free_like(100_000, 12.0, 2.3, 42);
    println!(
        "graph: {} vertices, {} directed edges, max degree {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree().0
    );

    let opts = BfsOptions {
        threads: 8,
        record_parents: true,
        ..BfsOptions::default()
    };
    let src = 0;

    // The optimistic lock-free BFS: no locks, no atomic RMW instructions
    // anywhere in its queue handling.
    let result = run_bfs(Algorithm::Bfswsl, &graph, src, &opts);
    println!(
        "BFS_WSL: reached {} vertices in {} levels ({:.2} ms, {} threads)",
        result.reached(),
        result.stats.levels,
        result.stats.traversal_time.as_secs_f64() * 1e3,
        opts.threads
    );
    println!(
        "optimistic overhead: {} explorations for {} reached vertices \
         ({} duplicate pops detected)",
        result.stats.totals.vertices_explored,
        result.reached(),
        result.stats.totals.duplicate_explorations,
    );

    // Validate against the serial reference.
    let serial = serial_bfs(&graph, src);
    obfs::core::validate::check_levels(&result, &serial.levels).expect("levels must match");
    obfs::core::validate::check_self_consistent(&graph, src, &result)
        .expect("BFS tree must be valid");
    println!("validated: identical levels to serial BFS, parents form a valid BFS tree");

    // Level histogram — the frontier profile that drives load balancing.
    let mut hist = vec![0usize; result.depth() as usize + 1];
    for &l in &result.levels {
        if l != obfs::core::UNVISITED {
            hist[l as usize] += 1;
        }
    }
    println!("\nfrontier sizes per level:");
    for (d, n) in hist.iter().enumerate() {
        println!("  level {d:>2}: {n:>8}  {}", "#".repeat((n / 2000).min(60)));
    }
}
