//! BFS as a building block: unweighted shortest paths and connected
//! components on a mesh-like graph (the cage-style workload), using the
//! parallel BFS's parent array to reconstruct actual routes.
//!
//! ```sh
//! cargo run --release --example shortest_paths
//! ```

use obfs::prelude::*;
use obfs_graph::INVALID_VERTEX;

fn main() {
    // A 3-D torus with local chords — the mesh shape of the paper's cage
    // matrices (DNA electrophoresis).
    let graph = gen::suite::cage_like(64_000, 12.0, 5);
    println!(
        "mesh: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let opts = BfsOptions {
        threads: 8,
        record_parents: true,
        ..BfsOptions::default()
    };

    // --- shortest path between two far-apart vertices ---
    let src: u32 = 0;
    let result = run_bfs(Algorithm::Bfscl, &graph, src, &opts);
    obfs::core::validate::check_self_consistent(&graph, src, &result)
        .expect("valid BFS tree");
    let parents = result.parents.as_ref().unwrap();

    // Pick the deepest reachable vertex as the destination.
    let (dst, dist) = result
        .levels
        .iter()
        .enumerate()
        .filter(|(_, &l)| l != obfs::core::UNVISITED)
        .max_by_key(|(_, &l)| l)
        .map(|(v, &l)| (v as u32, l))
        .unwrap();
    println!("\nshortest path {src} -> {dst}: {dist} hops");

    // Walk the parent chain back to the source.
    let mut path = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parents[cur as usize];
        assert_ne!(cur, INVALID_VERTEX, "broken parent chain");
        path.push(cur);
    }
    path.reverse();
    assert_eq!(path.len() as u32, dist + 1);
    // Verify every hop is a real edge.
    for w in path.windows(2) {
        assert!(
            graph.neighbors(w[0]).contains(&w[1]),
            "path hop {} -> {} is not an edge",
            w[0],
            w[1]
        );
    }
    let shown = path.len().min(12);
    println!(
        "route (first {shown} of {} vertices): {:?}{}",
        path.len(),
        &path[..shown],
        if path.len() > shown { " ..." } else { "" }
    );

    // --- connected components via repeated BFS ---
    println!("\nconnected components (BFS sweep):");
    let n = graph.num_vertices();
    let mut component = vec![u32::MAX; n];
    let mut next_component = 0u32;
    let mut sizes = Vec::new();
    for v in 0..n as u32 {
        if component[v as usize] != u32::MAX {
            continue;
        }
        let r = run_bfs(Algorithm::Bfswl, &graph, v, &opts);
        let mut size = 0usize;
        for (u, &l) in r.levels.iter().enumerate() {
            if l != obfs::core::UNVISITED && component[u] == u32::MAX {
                component[u] = next_component;
                size += 1;
            }
        }
        sizes.push(size);
        next_component += 1;
        if next_component > 10 {
            println!("  (stopping after 10 components)");
            break;
        }
    }
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!("  {} component(s); sizes: {:?}", sizes.len(), &sizes[..sizes.len().min(5)]);
    assert_eq!(
        sizes.iter().sum::<usize>(),
        component.iter().filter(|&&c| c != u32::MAX).count()
    );
}
