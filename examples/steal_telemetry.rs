//! Steal-outcome telemetry: reproduces the *kind* of analysis behind the
//! paper's Table VI interactively — locked vs lock-free work-stealing on
//! a hub-heavy graph, with the full failure breakdown.
//!
//! ```sh
//! cargo run --release --example steal_telemetry
//! ```

use obfs::prelude::*;
use obfs::core::StealCounters;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

fn print_counters(name: &str, s: &StealCounters, locked: bool) {
    assert!(s.is_consistent(), "{name}: inconsistent counters {s:?}");
    println!("\n{name}: {} steal attempts", s.attempts);
    println!("  successful      : {:>8} ({:>6.2}%)", s.success, pct(s.success, s.attempts));
    if locked {
        println!(
            "  victim locked   : {:>8} ({:>6.2}%)",
            s.victim_locked,
            pct(s.victim_locked, s.attempts)
        );
    } else {
        println!("  victim locked   :      N/A (no locks exist)");
    }
    println!(
        "  victim idle     : {:>8} ({:>6.2}%)",
        s.victim_idle,
        pct(s.victim_idle, s.attempts)
    );
    println!(
        "  segment too small:{:>8} ({:>6.2}%)",
        s.too_small,
        pct(s.too_small, s.attempts)
    );
    if !locked {
        println!("  stale segment   : {:>8} ({:>6.2}%)", s.stale, pct(s.stale, s.attempts));
        println!(
            "  invalid segment : {:>8} ({:>6.2}%)",
            s.invalid,
            pct(s.invalid, s.attempts)
        );
    }
}

fn main() {
    // Wikipedia-like scale-free stand-in, as in Table VI.
    let graph = gen::suite::scale_free_like(120_000, 12.5, 2.3, 21);
    println!(
        "graph: {} vertices, {} edges (scale-free, wikipedia-like)",
        graph.num_vertices(),
        graph.num_edges()
    );
    let threads = 8;
    let sources = obfs_graph::stats::sample_sources(&graph, 20, 3);
    let runner = obfs::core::BfsRunner::new(threads);
    let opts = BfsOptions { threads, ..BfsOptions::default() };

    let mut results = Vec::new();
    for (algo, locked) in [(Algorithm::Bfsws, true), (Algorithm::Bfswsl, false)] {
        let mut total = StealCounters::default();
        let mut ms = 0.0;
        let reference = serial_bfs(&graph, sources[0]);
        for (i, &src) in sources.iter().enumerate() {
            let r = runner.run(algo, &graph, src, &opts);
            if i == 0 {
                obfs::core::validate::check_levels(&r, &reference.levels)
                    .expect("parallel result must match serial");
            }
            total.merge(&r.stats.totals.steal);
            ms += r.stats.traversal_time.as_secs_f64() * 1e3;
        }
        println!("\n=== {} ({:.1} ms over {} sources) ===", algo.name(), ms, sources.len());
        print_counters(algo.name(), &total, locked);
        results.push((algo, total));
    }

    let (_, ws) = &results[0];
    let (_, wsl) = &results[1];
    println!("\n=== comparison (paper Table VI shape) ===");
    println!(
        "lock-free success rate {:.2}% vs locked {:.2}% — the paper observed the \
         lock-free version stealing slightly more successfully",
        pct(wsl.success, wsl.attempts),
        pct(ws.success, ws.attempts)
    );
    println!(
        "lock-free pathologies are rare: stale {:.3}%, invalid {:.3}% of attempts — \
         the price of optimism is tiny, while every locked attempt risked \
         'victim locked' ({:.2}%)",
        pct(wsl.stale, wsl.attempts),
        pct(wsl.invalid, wsl.attempts),
        pct(ws.victim_locked, ws.attempts)
    );
}
