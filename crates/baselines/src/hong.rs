//! Baseline2: Hong, Oguntebi & Olukotun (PACT'11) multicore BFS.
//!
//! The paper compares against the four multicore CPU implementations of
//! Hong et al. — level-synchronous BFS built on atomic read-modify-write
//! instructions. We reproduce the variant family:
//!
//! * [`HongVariant::ReadArray`] — no queues: every level scans the whole
//!   vertex range, exploring vertices whose level equals the current
//!   depth (static partition, "read-based method").
//! * [`HongVariant::Queue`] — one shared output queue; the tail index is
//!   advanced with atomic fetch-add, visited claims with CAS on the level
//!   array.
//! * [`HongVariant::QueueBitmap`] — shared queue + packed visited bitmap
//!   maintained with atomic `fetch_or` (the "queue + bitmap" method).
//! * [`HongVariant::LocalQueueReadBitmap`] — per-thread local output
//!   queues, read-based frontier identification, CAS bitmap (the paper's
//!   strongest CPU variant, "Local queue + read + bitmap").
//!
//! These are the *atomic-instruction school* the optimistic algorithms
//! are measured against; they intentionally use `fetch_add` / `fetch_or`
//! / `compare_exchange`.

use obfs_core::stats::{RunStats, ThreadStats};
use obfs_core::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId};
use obfs_runtime::LevelPool;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// The four multicore variants of Baseline2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HongVariant {
    /// Scan all vertices per level; no queues.
    ReadArray,
    /// One shared queue, fetch-add tail, CAS level claims.
    Queue,
    /// Shared queue plus a fetch-or visited bitmap.
    QueueBitmap,
    /// Per-thread queues, read-based scan, CAS bitmap (their best).
    LocalQueueReadBitmap,
    /// The paper's actual headline method: per level, "an appropriate
    /// version of BFS algorithm is chosen ... based on the number of
    /// vertices in the current level and the next level queues" — here,
    /// the queue method for small frontiers and the read-based scan once
    /// the frontier exceeds a fixed fraction of the vertex count.
    Hybrid,
}

impl HongVariant {
    /// All variants in the paper's comparison order (hybrid last).
    pub const ALL: [HongVariant; 5] = [
        HongVariant::ReadArray,
        HongVariant::Queue,
        HongVariant::QueueBitmap,
        HongVariant::LocalQueueReadBitmap,
        HongVariant::Hybrid,
    ];

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            HongVariant::ReadArray => "Hong[read]",
            HongVariant::Queue => "Hong[queue]",
            HongVariant::QueueBitmap => "Hong[queue+bitmap]",
            HongVariant::LocalQueueReadBitmap => "Hong[localq+read+bitmap]",
            HongVariant::Hybrid => "Hong[hybrid]",
        }
    }
}

impl std::fmt::Display for HongVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Atomic visited bitmap (one bit per vertex, `fetch_or` claims).
struct Bitmap {
    words: Vec<AtomicU64>,
}

impl Bitmap {
    fn new(n: usize) -> Self {
        Self { words: (0..n.div_ceil(64)).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Atomically claim bit `v`; true if this call set it.
    #[inline]
    fn claim(&self, v: usize) -> bool {
        let mask = 1u64 << (v % 64);
        self.words[v / 64].fetch_or(mask, Ordering::Relaxed) & mask == 0
    }

    #[inline]
    fn test(&self, v: usize) -> bool {
        self.words[v / 64].load(Ordering::Relaxed) & (1 << (v % 64)) != 0
    }
}

/// Run one of the Baseline2 variants from `src` on a fresh pool.
pub fn hong_bfs(
    variant: HongVariant,
    graph: &CsrGraph,
    src: VertexId,
    threads: usize,
) -> BfsResult {
    let pool = LevelPool::new(threads);
    hong_bfs_on_pool(variant, graph, src, &pool)
}

/// Run one of the Baseline2 variants on an existing pool.
pub fn hong_bfs_on_pool(
    variant: HongVariant,
    graph: &CsrGraph,
    src: VertexId,
    pool: &LevelPool,
) -> BfsResult {
    let n = graph.num_vertices();
    assert!((src as usize) < n, "source {src} out of range for n={n}");
    let threads = pool.threads();
    match variant {
        HongVariant::ReadArray => read_array(graph, src, pool, threads),
        HongVariant::Queue => shared_queue(graph, src, pool, threads, false),
        HongVariant::QueueBitmap => shared_queue(graph, src, pool, threads, true),
        HongVariant::LocalQueueReadBitmap => local_queue_read_bitmap(graph, src, pool, threads),
        HongVariant::Hybrid => hybrid(graph, src, pool, threads),
    }
    .finish(n)
}

/// Internal accumulator shared by the variant drivers.
struct HongRun<'a> {
    levels: Vec<AtomicU32>,
    stats: Vec<ThreadStats>,
    depth: u32,
    t0: std::time::Instant,
    _graph: &'a CsrGraph,
}

impl HongRun<'_> {
    fn finish(self, n: usize) -> BfsResult {
        let traversal_time = self.t0.elapsed();
        let levels: Vec<u32> = (0..n).map(|v| self.levels[v].load(Ordering::Relaxed)).collect();
        BfsResult {
            levels,
            parents: None,
            stats: RunStats::from_threads(self.stats, self.depth + 1, traversal_time),
        }
    }
}

fn init_levels(n: usize, src: VertexId) -> Vec<AtomicU32> {
    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    levels[src as usize].store(0, Ordering::Relaxed);
    levels
}

/// Read-based method: scan all vertices per level, no queues.
fn read_array<'a>(
    graph: &'a CsrGraph,
    src: VertexId,
    pool: &LevelPool,
    threads: usize,
) -> HongRun<'a> {
    let n = graph.num_vertices();
    let t0 = std::time::Instant::now();
    let levels = init_levels(n, src);
    let stats: Vec<_> = (0..threads).map(|_| AtomicStats::default()).collect();
    let found_next = AtomicBool::new(false);
    let depth = AtomicU32::new(0);
    pool.run(|ctx| {
        let tid = ctx.tid();
        let per = n.div_ceil(threads);
        let (lo, hi) = ((tid * per).min(n), ((tid + 1) * per).min(n));
        let mut d = 0u32;
        loop {
            let mut found = false;
            for v in lo..hi {
                if levels[v].load(Ordering::Relaxed) != d {
                    continue;
                }
                stats[tid].explored.fetch_add(1, Ordering::Relaxed);
                let neigh = graph.neighbors(v as VertexId);
                stats[tid].edges.fetch_add(neigh.len() as u64, Ordering::Relaxed);
                for &w in neigh {
                    // CAS claims exactly one discoverer per vertex.
                    if levels[w as usize]
                        .compare_exchange(UNVISITED, d + 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_ok()
                    {
                        stats[tid].discovered.fetch_add(1, Ordering::Relaxed);
                        found = true;
                    }
                }
            }
            if found {
                found_next.store(true, Ordering::Relaxed);
            }
            let leader = ctx.barrier().wait();
            if leader {
                depth.store(d, Ordering::Relaxed);
            }
            ctx.barrier().wait_then(|| {});
            // Re-read after full synchronization.
            // ord: Acquire pairs with the workers' Release of `found_next`.
            let any = found_next.load(Ordering::Acquire);
            // ord: Release re-arms the cleared flag for the next level's Acquire re-read.
            ctx.barrier().wait_then(|| found_next.store(false, Ordering::Release));
            if !any {
                break;
            }
            d += 1;
        }
    })
    .unwrap_or_else(|e| panic!("worker pool failed: {e}"));
    HongRun {
        levels,
        stats: stats.iter().map(AtomicStats::snapshot).collect(),
        depth: depth.load(Ordering::Relaxed),
        t0,
        _graph: graph,
    }
}

/// Shared-queue method: one global frontier array per side, tail advanced
/// with fetch-add; optional visited bitmap.
fn shared_queue<'a>(
    graph: &'a CsrGraph,
    src: VertexId,
    pool: &LevelPool,
    threads: usize,
    use_bitmap: bool,
) -> HongRun<'a> {
    let n = graph.num_vertices();
    let t0 = std::time::Instant::now();
    let levels = init_levels(n, src);
    let bitmap = use_bitmap.then(|| Bitmap::new(n));
    if let Some(b) = &bitmap {
        b.claim(src as usize);
    }
    let stats: Vec<_> = (0..threads).map(|_| AtomicStats::default()).collect();
    let qa: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let qb: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    qa[0].store(src, Ordering::Relaxed);
    let in_size = AtomicUsize::new(1);
    let out_tail = AtomicUsize::new(0);
    let head = AtomicUsize::new(0);
    let depth = AtomicU32::new(0);
    pool.run(|ctx| {
        let tid = ctx.tid();
        let mut d = 0u32;
        let mut parity = 0usize;
        loop {
            let (qin, qout) = if parity == 0 { (&qa, &qb) } else { (&qb, &qa) };
            // ord: Acquire pairs with the leader's Release of `in_size` — makes the prior level's queue writes visible
            let size = in_size.load(Ordering::Acquire);
            loop {
                // Chunked atomic head advance (fetch_add — the RMW the
                // optimistic algorithms avoid).
                let chunk = 64.min(size);
                let start = head.fetch_add(chunk, Ordering::Relaxed);
                if start >= size {
                    break;
                }
                let end = (start + chunk).min(size);
                for slot in &qin[start..end] {
                    let v = slot.load(Ordering::Relaxed);
                    stats[tid].explored.fetch_add(1, Ordering::Relaxed);
                    let neigh = graph.neighbors(v);
                    stats[tid].edges.fetch_add(neigh.len() as u64, Ordering::Relaxed);
                    for &w in neigh {
                        let fresh = match &bitmap {
                            Some(b) => b.claim(w as usize),
                            None => levels[w as usize]
                                .compare_exchange(
                                    UNVISITED,
                                    d + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok(),
                        };
                        if fresh {
                            if bitmap.is_some() {
                                levels[w as usize].store(d + 1, Ordering::Relaxed);
                            }
                            let slot = out_tail.fetch_add(1, Ordering::Relaxed);
                            qout[slot].store(w, Ordering::Relaxed);
                            stats[tid].discovered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            }
            let mut next = 0usize;
            ctx.barrier().wait_then(|| {
                // ord: AcqRel — acquires every worker's tail bump, releases the zeroed tail for the next level
                next = out_tail.swap(0, Ordering::AcqRel);
                // ord: Release publishes the new frontier size to the workers' Acquire loads
                in_size.store(next, Ordering::Release);
                head.store(0, Ordering::Relaxed);
                depth.store(d, Ordering::Relaxed);
            });
            // ord: Acquire pairs with the leader's Release of `in_size` above
            if in_size.load(Ordering::Acquire) == 0 {
                break;
            }
            parity ^= 1;
            d += 1;
        }
    })
    .unwrap_or_else(|e| panic!("worker pool failed: {e}"));
    HongRun {
        levels,
        stats: stats.iter().map(AtomicStats::snapshot).collect(),
        depth: depth.load(Ordering::Relaxed),
        t0,
        _graph: graph,
    }
}

/// "Local queue + read + bitmap": per-thread output queues, read-based
/// frontier scan of the previous level's queues, CAS bitmap.
fn local_queue_read_bitmap<'a>(
    graph: &'a CsrGraph,
    src: VertexId,
    pool: &LevelPool,
    threads: usize,
) -> HongRun<'a> {
    let n = graph.num_vertices();
    let t0 = std::time::Instant::now();
    let levels = init_levels(n, src);
    let bitmap = Bitmap::new(n);
    bitmap.claim(src as usize);
    let stats: Vec<_> = (0..threads).map(|_| AtomicStats::default()).collect();
    // Per-thread queues, double-buffered.
    let make = || -> Vec<Vec<AtomicU32>> {
        (0..threads).map(|_| (0..n).map(|_| AtomicU32::new(0)).collect()).collect()
    };
    let qa = make();
    let qb = make();
    let sizes_a: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    let sizes_b: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
    qa[(src as usize) % threads][0].store(src, Ordering::Relaxed);
    sizes_a[(src as usize) % threads].store(1, Ordering::Relaxed);
    let total = AtomicUsize::new(1);
    let depth = AtomicU32::new(0);
    pool.run(|ctx| {
        let tid = ctx.tid();
        let mut d = 0u32;
        let mut parity = 0usize;
        loop {
            let (qin, qout, sin, sout) = if parity == 0 {
                (&qa, &qb, &sizes_a, &sizes_b)
            } else {
                (&qb, &qa, &sizes_b, &sizes_a)
            };
            // Read-based: every thread reads ALL input queues but only
            // the indices it owns (static interleave), so no head atomics.
            let mut out = 0usize;
            for k in 0..threads {
                // ord: Acquire pairs with producer `k`'s Release of its size — orders its queue writes before our reads
                let size = sin[k].load(Ordering::Acquire);
                let mut i = tid;
                while i < size {
                    let v = qin[k][i].load(Ordering::Relaxed);
                    stats[tid].explored.fetch_add(1, Ordering::Relaxed);
                    let neigh = graph.neighbors(v);
                    stats[tid].edges.fetch_add(neigh.len() as u64, Ordering::Relaxed);
                    for &w in neigh {
                        if !bitmap.test(w as usize) && bitmap.claim(w as usize) {
                            levels[w as usize].store(d + 1, Ordering::Relaxed);
                            qout[tid][out].store(w, Ordering::Relaxed);
                            out += 1;
                            stats[tid].discovered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    i += threads;
                }
            }
            // ord: Release publishes this thread's queue writes under its size
            sout[tid].store(out, Ordering::Release);
            ctx.barrier().wait_then(|| {
                // ord: Acquire folds in every producer's Release-published count
                let sum: usize = sout.iter().map(|s| s.load(Ordering::Acquire)).sum();
                // ord: Release publishes the level total to the workers' Acquire loads
                total.store(sum, Ordering::Release);
                for s in sin {
                    // ord: Release — the cleared size is next level's producer baseline
                    s.store(0, Ordering::Release);
                }
                depth.store(d, Ordering::Relaxed);
            });
            // ord: Acquire pairs with the leader's Release of `total` above
            if total.load(Ordering::Acquire) == 0 {
                break;
            }
            parity ^= 1;
            d += 1;
        }
    })
    .unwrap_or_else(|e| panic!("worker pool failed: {e}"));
    HongRun {
        levels,
        stats: stats.iter().map(AtomicStats::snapshot).collect(),
        depth: depth.load(Ordering::Relaxed),
        t0,
        _graph: graph,
    }
}

/// Hybrid method: per level, pick the queue engine (small frontiers —
/// exact work, cache-friendly) or the read-based scan (huge frontiers —
/// no queue-tail contention, sequential memory order). The switch point
/// is `frontier > n / SCAN_DIVISOR`, mirroring the level-size test the
/// PACT'11 paper describes.
fn hybrid<'a>(
    graph: &'a CsrGraph,
    src: VertexId,
    pool: &LevelPool,
    threads: usize,
) -> HongRun<'a> {
    /// Frontier fraction above which the read-based scan engine runs.
    const SCAN_DIVISOR: usize = 16;
    let n = graph.num_vertices();
    let t0 = std::time::Instant::now();
    let levels = init_levels(n, src);
    let bitmap = Bitmap::new(n);
    bitmap.claim(src as usize);
    let stats: Vec<_> = (0..threads).map(|_| AtomicStats::default()).collect();
    // Queue engine storage (double-buffered shared queues).
    let qa: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let qb: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    qa[0].store(src, Ordering::Relaxed);
    let in_size = AtomicUsize::new(1);
    let out_tail = AtomicUsize::new(0);
    let head = AtomicUsize::new(0);
    let depth = AtomicU32::new(0);
    // When the scan engine ran, the next level's frontier only exists in
    // `levels`; the queue engine then needs a rebuild pass.
    let frontier_in_queues = AtomicUsize::new(1); // 1 = qin holds the frontier

    pool.run(|ctx| {
        let tid = ctx.tid();
        let per = n.div_ceil(threads);
        let (lo, hi) = ((tid * per).min(n), ((tid + 1) * per).min(n));
        let mut d = 0u32;
        let mut parity = 0usize;
        loop {
            // ord: Acquire pairs with the leader's Release of `in_size` — makes the prior level's queue writes visible
            let frontier = in_size.load(Ordering::Acquire);
            let scan_level = frontier > n / SCAN_DIVISOR;
            let (qin, qout) = if parity == 0 { (&qa, &qb) } else { (&qb, &qa) };
            if scan_level {
                // Read-based engine over this thread's vertex range.
                for v in lo..hi {
                    if levels[v].load(Ordering::Relaxed) != d {
                        continue;
                    }
                    stats[tid].explored.fetch_add(1, Ordering::Relaxed);
                    let neigh = graph.neighbors(v as VertexId);
                    stats[tid].edges.fetch_add(neigh.len() as u64, Ordering::Relaxed);
                    for &w in neigh {
                        if !bitmap.test(w as usize) && bitmap.claim(w as usize) {
                            levels[w as usize].store(d + 1, Ordering::Relaxed);
                            let slot = out_tail.fetch_add(1, Ordering::Relaxed);
                            qout[slot].store(w, Ordering::Relaxed);
                            stats[tid].discovered.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            } else {
                // Queue engine. If the previous level ran the scan engine,
                // qin already holds its discoveries (both engines push to
                // qout), so no rebuild is needed — the flag documents the
                // invariant.
                debug_assert_eq!(frontier_in_queues.load(Ordering::Relaxed), 1);
                let size = frontier;
                loop {
                    let chunk = 64.min(size.max(1));
                    let start = head.fetch_add(chunk, Ordering::Relaxed);
                    if start >= size {
                        break;
                    }
                    let end = (start + chunk).min(size);
                    for slot in &qin[start..end] {
                        let v = slot.load(Ordering::Relaxed);
                        stats[tid].explored.fetch_add(1, Ordering::Relaxed);
                        let neigh = graph.neighbors(v);
                        stats[tid].edges.fetch_add(neigh.len() as u64, Ordering::Relaxed);
                        for &w in neigh {
                            if !bitmap.test(w as usize) && bitmap.claim(w as usize) {
                                levels[w as usize].store(d + 1, Ordering::Relaxed);
                                let slot = out_tail.fetch_add(1, Ordering::Relaxed);
                                qout[slot].store(w, Ordering::Relaxed);
                                stats[tid].discovered.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                }
            }
            ctx.barrier().wait_then(|| {
                // ord: AcqRel — acquires every worker's tail bump, releases the zeroed tail for the next level
                let next = out_tail.swap(0, Ordering::AcqRel);
                // ord: Release publishes the new frontier size to the workers' Acquire loads
                in_size.store(next, Ordering::Release);
                head.store(0, Ordering::Relaxed);
                depth.store(d, Ordering::Relaxed);
                frontier_in_queues.store(1, Ordering::Relaxed);
            });
            // ord: Acquire pairs with the leader's Release of `in_size` above
            if in_size.load(Ordering::Acquire) == 0 {
                break;
            }
            parity ^= 1;
            d += 1;
        }
    })
    .unwrap_or_else(|e| panic!("worker pool failed: {e}"));
    HongRun {
        levels,
        stats: stats.iter().map(AtomicStats::snapshot).collect(),
        depth: depth.load(Ordering::Relaxed),
        t0,
        _graph: graph,
    }
}

/// Shared-memory stats accumulators (the baselines may hit them from any
/// worker; contention is irrelevant for correctness-focused counters).
#[derive(Default)]
struct AtomicStats {
    explored: AtomicU64,
    edges: AtomicU64,
    discovered: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> ThreadStats {
        ThreadStats {
            vertices_explored: self.explored.load(Ordering::Relaxed),
            edges_scanned: self.edges.load(Ordering::Relaxed),
            vertices_discovered: self.discovered.load(Ordering::Relaxed),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_core::serial::serial_bfs;
    use obfs_graph::gen;

    fn check(variant: HongVariant, g: &CsrGraph, src: u32, threads: usize) {
        let r = hong_bfs(variant, g, src, threads);
        let ser = serial_bfs(g, src);
        assert_eq!(r.levels, ser.levels, "{variant} (p={threads}, src={src})");
    }

    #[test]
    fn all_variants_match_serial_on_random_graph() {
        let g = gen::erdos_renyi(700, 5000, 3);
        for v in HongVariant::ALL {
            check(v, &g, 0, 4);
        }
    }

    #[test]
    fn all_variants_on_path_and_star() {
        for v in HongVariant::ALL {
            check(v, &gen::path(150), 0, 3);
            check(v, &gen::star(300), 1, 3);
        }
    }

    #[test]
    fn all_variants_single_thread() {
        for v in HongVariant::ALL {
            check(v, &gen::cycle(60), 2, 1);
        }
    }

    #[test]
    fn queue_variants_on_dense_graph() {
        // Dense graphs maximize duplicate-discovery races on the queue
        // tail and the bitmap.
        let g = gen::complete(80);
        check(HongVariant::Queue, &g, 0, 6);
        check(HongVariant::QueueBitmap, &g, 0, 6);
        check(HongVariant::LocalQueueReadBitmap, &g, 0, 6);
    }

    #[test]
    fn disconnected_graph() {
        let g = CsrGraph::from_edges(8, &[(0, 1), (1, 2), (5, 6)]);
        for v in HongVariant::ALL {
            let r = hong_bfs(v, &g, 0, 2);
            assert_eq!(r.levels[2], 2, "{v}");
            assert_eq!(r.levels[5], UNVISITED, "{v}");
        }
    }

    #[test]
    fn exactly_one_discovery_per_vertex() {
        // CAS/bitmap claims mean no duplicate discoveries, unlike the
        // optimistic algorithms.
        let g = gen::erdos_renyi(500, 4000, 9);
        for v in HongVariant::ALL {
            let r = hong_bfs(v, &g, 0, 4);
            assert_eq!(
                r.stats.totals.vertices_discovered as usize,
                r.reached() - 1,
                "{v}: discoveries must equal reached-1"
            );
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: std::collections::HashSet<_> =
            HongVariant::ALL.iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), HongVariant::ALL.len());
    }

    #[test]
    fn hybrid_switches_engines_and_stays_correct() {
        // Binary tree: frontier doubles each level and crosses n/16, so
        // both engines run within one traversal.
        check(HongVariant::Hybrid, &gen::binary_tree(4095), 0, 4);
        // Dense graph: level 1 is nearly everything (scan engine).
        check(HongVariant::Hybrid, &gen::complete(120), 0, 4);
        // Deep path: frontier of 1, queue engine only.
        check(HongVariant::Hybrid, &gen::path(300), 0, 3);
    }
}
