//! Direction-optimizing BFS (Beamer, Asanović & Patterson, SC'12),
//! discussed in the paper's prior-work section (§II, ref. \[5\]).
//!
//! Hybrid of *top-down* (parent → child, classic frontier expansion,
//! atomic CAS claims) and *bottom-up* (child → parent: every unvisited
//! vertex checks whether any in-neighbour is in the current frontier —
//! no claims needed because vertices are statically partitioned). The
//! traversal switches to bottom-up when the frontier's out-edge volume
//! exceeds `1/alpha` of the unexplored edge volume and back to top-down
//! when the frontier shrinks below `n / beta` (Beamer's heuristic with
//! the published constants α=14, β=24).
//!
//! Like Baseline2 this uses atomic RMW instructions; it is included as
//! the modern direction-optimizing comparison point and as the stress
//! case for dense, low-diameter graphs (where the paper's own algorithms
//! pay the duplicate-exploration tax).

use obfs_core::stats::{RunStats, ThreadStats};
use obfs_core::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId};
use obfs_runtime::LevelPool;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Beamer's published switching constants.
pub const ALPHA: u64 = 14;
/// See [`ALPHA`]; β controls the switch back to top-down.
pub const BETA: u64 = 24;

/// Which direction each level ran in (exposed for tests/telemetry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Parent-to-child frontier expansion.
    TopDown,
    /// Child-to-parent frontier probing.
    BottomUp,
}

/// Result of a direction-optimizing run: the BFS result plus the
/// per-level direction trace.
#[derive(Debug)]
pub struct BeamerResult {
    /// The traversal result.
    pub bfs: BfsResult,
    /// Direction used at each level.
    pub directions: Vec<Direction>,
}

/// Run direction-optimizing BFS. `transpose` must be the in-edge graph
/// (`graph.transpose()`); pass the graph itself for symmetric graphs.
pub fn beamer_bfs(
    graph: &CsrGraph,
    transpose: &CsrGraph,
    src: VertexId,
    threads: usize,
) -> BeamerResult {
    let pool = LevelPool::new(threads);
    beamer_bfs_on_pool(graph, transpose, src, &pool)
}

/// As [`beamer_bfs`] but reusing a worker pool.
pub fn beamer_bfs_on_pool(
    graph: &CsrGraph,
    transpose: &CsrGraph,
    src: VertexId,
    pool: &LevelPool,
) -> BeamerResult {
    let n = graph.num_vertices();
    assert!((src as usize) < n, "source {src} out of range for n={n}");
    assert_eq!(transpose.num_vertices(), n, "transpose vertex count mismatch");
    let threads = pool.threads();
    let t0 = std::time::Instant::now();

    let levels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNVISITED)).collect();
    levels[src as usize].store(0, Ordering::Relaxed);
    let words = n.div_ceil(64);
    let current: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(0)).collect();
    let next: Vec<AtomicU64> = (0..words).map(|_| AtomicU64::new(0)).collect();
    current[src as usize / 64].store(1 << (src % 64), Ordering::Relaxed);

    // Shared per-level aggregates, reduced at the barrier.
    let next_vertices: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let next_edges: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(0)).collect();
    let stats: Vec<(AtomicU64, AtomicU64)> =
        (0..threads).map(|_| (AtomicU64::new(0), AtomicU64::new(0))).collect();

    // Level-loop control written by the barrier leader.
    let frontier_vertices = AtomicU64::new(1);
    let frontier_edges = AtomicU64::new(graph.degree(src) as u64);
    let unexplored_edges = AtomicU64::new(graph.num_edges());
    let bottom_up_flag = AtomicU64::new(0);
    let depth = AtomicU32::new(0);
    let dir_trace: std::sync::Mutex<Vec<Direction>> = std::sync::Mutex::new(Vec::new());

    pool.run(|ctx| {
        let tid = ctx.tid();
        let per = n.div_ceil(threads);
        let (lo, hi) = ((tid * per).min(n), ((tid + 1) * per).min(n));
        let mut d = 0u32;
        let mut cur_is_a = true; // which bitmap plays "current"
        loop {
            // Leader decides the direction for this level.
            ctx.barrier().wait_then(|| {
                let mf = frontier_edges.load(Ordering::Relaxed);
                let mu = unexplored_edges.load(Ordering::Relaxed);
                let nf = frontier_vertices.load(Ordering::Relaxed);
                let was_bottom_up = bottom_up_flag.load(Ordering::Relaxed) == 1;
                let go_bottom_up = if was_bottom_up {
                    nf >= (n as u64) / BETA // stay until the frontier shrinks
                } else {
                    mf > mu / ALPHA
                };
                bottom_up_flag.store(go_bottom_up as u64, Ordering::Relaxed);
                dir_trace.lock().unwrap().push(if go_bottom_up {
                    Direction::BottomUp
                } else {
                    Direction::TopDown
                });
            });
            let bottom_up = bottom_up_flag.load(Ordering::Relaxed) == 1;
            let (cur, nxt): (&[AtomicU64], &[AtomicU64]) =
                if cur_is_a { (&current, &next) } else { (&next, &current) };

            let mut my_vertices = 0u64;
            let mut my_edges = 0u64;
            let mut explored = 0u64;
            let mut scanned = 0u64;
            if bottom_up {
                // Child → parent: each thread owns vertex range [lo, hi);
                // no atomics needed for claims.
                for v in lo..hi {
                    if levels[v].load(Ordering::Relaxed) != UNVISITED {
                        continue;
                    }
                    for &u in transpose.neighbors(v as VertexId) {
                        scanned += 1;
                        if cur[u as usize / 64].load(Ordering::Relaxed) >> (u % 64) & 1 == 1 {
                            levels[v].store(d + 1, Ordering::Relaxed);
                            nxt[v / 64].fetch_or(1 << (v % 64), Ordering::Relaxed);
                            my_vertices += 1;
                            my_edges += graph.degree(v as VertexId) as u64;
                            break;
                        }
                    }
                }
            } else {
                // Parent → child over this thread's share of frontier
                // bitmap words.
                let wper = words.div_ceil(threads);
                let (wlo, whi) = ((tid * wper).min(words), ((tid + 1) * wper).min(words));
                // wi also names the vertices (wi * 64 + bit), so the
                // index loop is the clearer form here.
                #[allow(clippy::needless_range_loop)]
                for wi in wlo..whi {
                    let mut bits = cur[wi].load(Ordering::Relaxed);
                    while bits != 0 {
                        let b = bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let v = (wi * 64 + b) as VertexId;
                        explored += 1;
                        let neigh = graph.neighbors(v);
                        scanned += neigh.len() as u64;
                        for &w in neigh {
                            if levels[w as usize]
                                .compare_exchange(
                                    UNVISITED,
                                    d + 1,
                                    Ordering::Relaxed,
                                    Ordering::Relaxed,
                                )
                                .is_ok()
                            {
                                nxt[w as usize / 64]
                                    .fetch_or(1 << (w % 64), Ordering::Relaxed);
                                my_vertices += 1;
                                my_edges += graph.degree(w) as u64;
                            }
                        }
                    }
                }
            }
            next_vertices[tid].store(my_vertices, Ordering::Relaxed);
            next_edges[tid].store(my_edges, Ordering::Relaxed);
            stats[tid].0.fetch_add(explored + my_vertices, Ordering::Relaxed);
            stats[tid].1.fetch_add(scanned, Ordering::Relaxed);

            ctx.barrier().wait_then(|| {
                let nf: u64 = next_vertices.iter().map(|x| x.load(Ordering::Relaxed)).sum();
                let mf: u64 = next_edges.iter().map(|x| x.load(Ordering::Relaxed)).sum();
                unexplored_edges.fetch_sub(
                    mf.min(unexplored_edges.load(Ordering::Relaxed)),
                    Ordering::Relaxed,
                );
                frontier_vertices.store(nf, Ordering::Relaxed);
                frontier_edges.store(mf, Ordering::Relaxed);
                depth.store(d, Ordering::Relaxed);
            });
            if frontier_vertices.load(Ordering::Relaxed) == 0 {
                break;
            }
            // Clear my share of the old frontier for reuse two levels on.
            let wper = words.div_ceil(threads);
            let (wlo, whi) = ((tid * wper).min(words), ((tid + 1) * wper).min(words));
            for w in &cur[wlo..whi] {
                w.store(0, Ordering::Relaxed);
            }
            ctx.barrier().wait();
            cur_is_a = !cur_is_a;
            d += 1;
        }
    })
    .unwrap_or_else(|e| panic!("worker pool failed: {e}"));

    let traversal_time = t0.elapsed();
    let out_levels: Vec<u32> = (0..n).map(|v| levels[v].load(Ordering::Relaxed)).collect();
    let per_thread: Vec<ThreadStats> = stats
        .iter()
        .map(|(e, s)| ThreadStats {
            vertices_explored: e.load(Ordering::Relaxed),
            edges_scanned: s.load(Ordering::Relaxed),
            ..Default::default()
        })
        .collect();
    let mut directions = dir_trace.into_inner().unwrap();
    directions.truncate(depth.load(Ordering::Relaxed) as usize + 1);
    BeamerResult {
        bfs: BfsResult {
            levels: out_levels,
            parents: None,
            stats: RunStats::from_threads(
                per_thread,
                depth.load(Ordering::Relaxed) + 1,
                traversal_time,
            ),
        },
        directions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_core::serial::serial_bfs;
    use obfs_graph::gen;

    fn check(g: &CsrGraph, src: u32, threads: usize) -> BeamerResult {
        let t = g.transpose();
        let r = beamer_bfs(g, &t, src, threads);
        let ser = serial_bfs(g, src);
        assert_eq!(r.bfs.levels, ser.levels, "beamer (p={threads}, src={src})");
        r
    }

    #[test]
    fn matches_serial_on_varied_graphs() {
        check(&gen::path(200), 0, 2);
        check(&gen::binary_tree(1023), 0, 4);
        check(&gen::erdos_renyi(800, 6000, 3), 0, 4);
        check(&gen::barabasi_albert(600, 3, 7), 2, 4);
    }

    #[test]
    fn directed_graphs_use_real_in_edges() {
        // Asymmetric: 0 -> 1 -> 2, plus 3 -> 2. Bottom-up must look at
        // in-edges, not out-edges.
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (3, 2)]);
        let r = check(&g, 0, 2);
        assert_eq!(r.bfs.levels, vec![0, 1, 2, UNVISITED]);
    }

    #[test]
    fn dense_graph_switches_to_bottom_up() {
        // Complete graph: the first frontier expansion covers everything;
        // the heuristic must fire bottom-up at least once.
        let g = gen::complete(400);
        let r = check(&g, 0, 4);
        assert!(
            r.directions.contains(&Direction::BottomUp),
            "expected a bottom-up level on K400, got {:?}",
            r.directions
        );
    }

    #[test]
    fn sparse_path_stays_top_down_until_exhaustion() {
        // On a path the frontier is 1 vertex, so top-down must hold until
        // the unexplored edge volume collapses (mu/alpha rounds to ~0 in
        // the last few levels, where Beamer's rule legitimately flips).
        let g = gen::path(500);
        let r = check(&g, 0, 2);
        let levels = r.directions.len();
        let early = &r.directions[..levels * 9 / 10];
        assert!(
            early.iter().all(|&d| d == Direction::TopDown),
            "early path levels must be top-down"
        );
    }

    #[test]
    fn single_thread_and_single_vertex() {
        check(&gen::cycle(30), 3, 1);
        let g = CsrGraph::from_edges(1, &[]);
        let r = check(&g, 0, 2);
        assert_eq!(r.bfs.levels, vec![0]);
    }

    #[test]
    fn direction_trace_length_matches_levels() {
        let g = gen::binary_tree(255);
        let r = check(&g, 0, 3);
        assert_eq!(r.directions.len() as u32, r.bfs.stats.levels);
    }
}
