//! Comparison baselines used in the paper's evaluation.
//!
//! * **Baseline1** — Leiserson & Schardl, *A work-efficient parallel
//!   breadth-first search algorithm (or how to cope with the
//!   nondeterminism of reducers)*, SPAA 2010. Frontiers are *bags*
//!   (binomial-forest-like collections of *pennants*) processed by a
//!   work-stealing fork-join scheduler; per-worker output bags emulate
//!   the `bag` reducer. Lock- and atomic-free in its queue handling, but
//!   built on a complicated recursive data structure — exactly the
//!   contrast the paper draws with its plain-array approach.
//! * **Baseline2** — Hong, Oguntebi & Olukotun, *Efficient parallel graph
//!   exploration on multi-core CPU and GPU*, PACT 2011 (the four
//!   multicore CPU variants). Level-synchronous BFS using read-based
//!   and queue-based frontiers with optional CAS-maintained visited
//!   bitmaps — the atomic-RMW-based school of parallel BFS.
//! * **Direction-optimizing BFS** — Beamer, Asanović & Patterson, SC
//!   2012 (paper §II ref. \[5\]): the top-down/bottom-up hybrid, included
//!   as the modern comparison point for dense low-diameter graphs.

#![warn(missing_docs)]

pub mod bag;
pub mod beamer;
pub mod hong;
pub mod pbfs;

pub use bag::{Bag, Pennant};
pub use beamer::{beamer_bfs, BeamerResult, Direction};
pub use hong::{hong_bfs, HongVariant};
pub use pbfs::{pbfs, PbfsRunner};
