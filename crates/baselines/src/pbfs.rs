//! Baseline1: Leiserson–Schardl PBFS (SPAA'10).
//!
//! Layer-synchronous BFS where each layer is a [`Bag`]. The layer is
//! processed by the work-stealing fork-join pool: each pennant becomes a
//! task; tasks recursively detach subtrees above the grain size as
//! subtasks and walk small subtrees serially. Discovered vertices go into
//! **per-worker output bags** — our explicit rendering of the cilk++
//! `bag` reducer: every worker strand appends to its own view, and the
//! views are reduced (bag-union) at the layer boundary.
//!
//! Like the original, the distance array is updated with *benign races*
//! (plain stores of the same value within a layer); the algorithm takes
//! no lock and no atomic RMW on its data structures — its complexity is
//! in the bag, which is the contrast the paper draws.

use crate::bag::{Bag, Pennant, PennantNode};
use obfs_core::perthread::PerThread;
use obfs_core::stats::{RunStats, ThreadStats};
use obfs_core::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId};
use obfs_runtime::{ForkJoinPool, TaskCtx};
use obfs_sync::RacyBuf;
use std::sync::Arc;

/// Subtrees of height <= this are walked serially (grain ~ 2^6 = 64
/// vertices per task, matching PBFS's coarsening).
const GRAIN_HEIGHT: u32 = 6;

/// One-shot convenience wrapper around [`PbfsRunner`].
pub fn pbfs(graph: &CsrGraph, src: VertexId, threads: usize) -> BfsResult {
    PbfsRunner::new(threads).run(graph, src)
}

/// Reusable PBFS executor owning its fork-join pool.
pub struct PbfsRunner {
    pool: ForkJoinPool,
}

/// Shared state for one layer's task graph.
struct LayerShared<'g> {
    graph: &'g CsrGraph,
    levels: &'g RacyBuf,
    next: u32,
    out_bags: PerThread<Bag>,
    stats: PerThread<ThreadStats>,
}

impl PbfsRunner {
    /// A runner with its own `threads`-wide fork-join pool.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1);
        Self { pool: ForkJoinPool::new(threads) }
    }

    /// Worker count of the owned pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Run PBFS from `src`.
    pub fn run(&mut self, graph: &CsrGraph, src: VertexId) -> BfsResult {
        let n = graph.num_vertices();
        assert!((src as usize) < n, "source {src} out of range for n={n}");
        let threads = self.pool.threads();
        let t0 = std::time::Instant::now();

        let levels = RacyBuf::filled(n, UNVISITED);
        levels.set(src as usize, 0);
        let mut in_bag = Bag::new();
        in_bag.insert(src);
        let totals = PerThread::new(threads, |_| ThreadStats::default());
        let mut level = 0u32;

        while !in_bag.is_empty() {
            let shared = Arc::new(LayerShared {
                graph,
                levels: &levels,
                next: level + 1,
                out_bags: PerThread::new(threads, |_| Bag::new()),
                stats: PerThread::new(threads, |_| ThreadStats::default()),
            });
            let shared_static: Arc<LayerShared<'static>> =
                // SAFETY: `scope` blocks until every task completes, so the
                // 'static view of the borrowed graph/levels never escapes
                // the borrow. (The fork-join pool's documented scope
                // pattern.)
                unsafe { std::mem::transmute(Arc::clone(&shared)) };
            let pennants = in_bag.take_pennants();
            self.pool.scope(move |ctx| {
                for p in pennants {
                    let s = Arc::clone(&shared_static);
                    ctx.spawn(move |c| process_pennant(c, p, s));
                }
            });
            let shared = Arc::try_unwrap(shared).ok().expect("all tasks done; sole owner");
            // Reduce: union the per-worker bags into the next layer.
            let mut next_bag = Bag::new();
            let mut out_bags = shared.out_bags;
            for b in out_bags.iter_mut() {
                next_bag.union(std::mem::take(b));
            }
            let mut layer_stats = shared.stats;
            for (t, s) in layer_stats.iter_mut().enumerate() {
                // SAFETY: exclusive &mut access after the scope.
                unsafe { totals.get_mut(t) }.merge(s);
            }
            in_bag = next_bag;
            if in_bag.is_empty() {
                break;
            }
            level += 1;
        }

        let traversal_time = t0.elapsed();
        let out_levels: Vec<u32> = (0..n).map(|v| levels.get(v)).collect();
        BfsResult {
            levels: out_levels,
            parents: None,
            stats: RunStats::from_threads(totals.into_values(), level + 1, traversal_time),
        }
    }
}

/// Task: process a whole pennant.
fn process_pennant(ctx: &TaskCtx<'_>, pennant: Pennant, shared: Arc<LayerShared<'static>>) {
    let (root, k) = pennant.into_parts();
    process_node(ctx, root, k, shared);
}

/// Process the subtree rooted at `node` (height bound `h`): spawn big
/// children as subtasks, walk small ones inline.
fn process_node(
    ctx: &TaskCtx<'_>,
    mut node: Box<PennantNode>,
    h: u32,
    shared: Arc<LayerShared<'static>>,
) {
    if h > GRAIN_HEIGHT {
        if let Some(left) = node.left.take() {
            let s = Arc::clone(&shared);
            ctx.spawn(move |c| process_node(c, left, h - 1, s));
        }
        if let Some(right) = node.right.take() {
            let s = Arc::clone(&shared);
            ctx.spawn(move |c| process_node(c, right, h - 1, s));
        }
        explore(ctx, node.value, &shared);
    } else {
        walk_serial(ctx, &node, &shared);
    }
}

fn walk_serial(ctx: &TaskCtx<'_>, node: &PennantNode, shared: &LayerShared<'static>) {
    explore(ctx, node.value, shared);
    if let Some(l) = &node.left {
        walk_serial(ctx, l, shared);
    }
    if let Some(r) = &node.right {
        walk_serial(ctx, r, shared);
    }
}

#[inline]
fn explore(ctx: &TaskCtx<'_>, v: VertexId, shared: &LayerShared<'static>) {
    let wid = ctx.worker_id();
    // SAFETY: tasks on one worker run sequentially; only worker `wid`
    // touches slot `wid`.
    let (bag, ts) = unsafe { (shared.out_bags.get_mut(wid), shared.stats.get_mut(wid)) };
    ts.vertices_explored += 1;
    let neigh = shared.graph.neighbors(v);
    ts.edges_scanned += neigh.len() as u64;
    for &w in neigh {
        // Benign race, exactly as in the original PBFS: two workers may
        // both see UNVISITED and both insert w (into different bags);
        // both stores write the same level value.
        if shared.levels.get(w as usize) == UNVISITED {
            shared.levels.set(w as usize, shared.next);
            bag.insert(w);
            ts.vertices_discovered += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_core::serial::serial_bfs;
    use obfs_graph::gen;

    fn check(g: &CsrGraph, src: u32, threads: usize) {
        let r = pbfs(g, src, threads);
        let ser = serial_bfs(g, src);
        assert_eq!(r.levels, ser.levels, "pbfs (p={threads}, src={src})");
    }

    #[test]
    fn matches_serial_small_graphs() {
        check(&gen::path(100), 0, 2);
        check(&gen::star(200), 0, 4);
        check(&gen::binary_tree(511), 0, 4);
        check(&gen::complete(40), 3, 4);
    }

    #[test]
    fn matches_serial_random_graphs() {
        for seed in 0..4 {
            let g = gen::erdos_renyi(800, 6000, seed);
            check(&g, (seed as u32 * 37) % 800, 4);
        }
    }

    #[test]
    fn single_thread() {
        check(&gen::cycle(64), 5, 1);
    }

    #[test]
    fn large_frontier_spawns_tasks() {
        // 2^13 - 1 node tree: frontiers reach 4096, far above the grain,
        // so the recursive splitting path runs.
        let g = gen::binary_tree((1 << 13) - 1);
        check(&g, 0, 4);
    }

    #[test]
    fn runner_is_reusable() {
        let mut runner = PbfsRunner::new(3);
        let g = gen::erdos_renyi(300, 2000, 9);
        let ser = serial_bfs(&g, 0);
        for _ in 0..3 {
            let r = runner.run(&g, 0);
            assert_eq!(r.levels, ser.levels);
        }
    }

    #[test]
    fn stats_accumulate() {
        let g = gen::barabasi_albert(400, 2, 2);
        let r = pbfs(&g, 0, 4);
        let reached = r.reached() as u64;
        assert!(r.stats.totals.vertices_explored >= reached);
        assert!(r.stats.totals.edges_scanned >= g.num_edges() / 2);
        assert_eq!(r.stats.totals.lock_acquisitions, 0, "PBFS takes no locks");
        assert_eq!(r.stats.totals.steal.attempts, 0, "scheduler steals are not BFS steals");
    }

    #[test]
    fn disconnected() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (3, 4)]);
        let r = pbfs(&g, 0, 2);
        assert_eq!(r.levels[1], 1);
        assert_eq!(r.levels[3], UNVISITED);
    }
}
