//! The Leiserson–Schardl *bag* data structure (SPAA'10, §3).
//!
//! A **pennant** is a tree of `2^k` nodes whose root has exactly one
//! child, that child being the root of a complete binary tree of
//! `2^k − 1` nodes. Two pennants of equal size merge into one of twice
//! the size in O(1) (`union`), and the inverse `split` halves one in
//! O(1).
//!
//! A **bag** is a sparse array (*spine*) of pennants, at most one of each
//! size `2^k` — the binary-counter representation of its element count.
//! Insertion is binary increment (amortized O(1)), bag-union is binary
//! addition (O(log n)), bag-split is a right-shift (O(log n)).
//!
//! PBFS traverses a layer bag by handing each pennant to the fork-join
//! scheduler, recursively splitting large pennants into their two
//! complete subtrees.

use obfs_graph::VertexId;

/// A node of a pennant's binary tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PennantNode {
    /// The stored vertex.
    pub value: VertexId,
    /// Left subtree.
    pub left: Option<Box<PennantNode>>,
    /// Right subtree.
    pub right: Option<Box<PennantNode>>,
}

impl PennantNode {
    fn leaf(value: VertexId) -> Box<PennantNode> {
        Box::new(PennantNode { value, left: None, right: None })
    }

    /// Walk the subtree, invoking `f` on every value.
    pub fn for_each(&self, f: &mut impl FnMut(VertexId)) {
        f(self.value);
        if let Some(l) = &self.left {
            l.for_each(f);
        }
        if let Some(r) = &self.right {
            r.for_each(f);
        }
    }
}

/// A pennant of exactly `2^k` elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pennant {
    root: Box<PennantNode>,
    k: u32,
}

impl Pennant {
    /// Singleton pennant (`k = 0`).
    pub fn singleton(value: VertexId) -> Self {
        Self { root: PennantNode::leaf(value), k: 0 }
    }

    /// `log2` of the element count.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Element count (`2^k`).
    pub fn len(&self) -> usize {
        1usize << self.k
    }

    /// Always false: a pennant holds at least its root.
    pub fn is_empty(&self) -> bool {
        false // a pennant always holds at least its root
    }

    /// O(1) union of two equal-size pennants (SPAA'10 Fig. 2):
    /// `y` becomes the new left child of `x`'s root, inheriting `x`'s old
    /// child as its right subtree.
    pub fn union(mut x: Pennant, mut y: Pennant) -> Pennant {
        assert_eq!(x.k, y.k, "pennant union requires equal sizes");
        y.root.right = x.root.left.take();
        x.root.left = Some(y.root);
        x.k += 1;
        x
    }

    /// O(1) inverse of [`Pennant::union`]: halves this pennant, returning
    /// the detached half. Panics on a singleton.
    pub fn split(&mut self) -> Pennant {
        assert!(self.k > 0, "cannot split a singleton pennant");
        let mut y = self.root.left.take().expect("non-singleton pennant must have a child");
        self.root.left = y.right.take();
        self.k -= 1;
        Pennant { root: y, k: self.k }
    }

    /// Visit every element.
    pub fn for_each(&self, mut f: impl FnMut(VertexId)) {
        self.root.for_each(&mut f);
    }

    /// Consume into the root node (for task-parallel traversal) together
    /// with `k`.
    pub fn into_parts(self) -> (Box<PennantNode>, u32) {
        (self.root, self.k)
    }

    /// Collect elements into a vector (test helper).
    pub fn to_vec(&self) -> Vec<VertexId> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(|x| v.push(x));
        v
    }
}

/// A bag of vertices: at most one pennant per size class.
#[derive(Debug, Clone, Default)]
pub struct Bag {
    spine: Vec<Option<Pennant>>,
}

impl Bag {
    /// An empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of elements (sum of pennant sizes).
    pub fn len(&self) -> usize {
        self.spine
            .iter()
            .enumerate()
            .filter_map(|(k, s)| s.as_ref().map(|_| 1usize << k))
            .sum()
    }

    /// True when the bag holds no elements.
    pub fn is_empty(&self) -> bool {
        self.spine.iter().all(|s| s.is_none())
    }

    /// Binary-increment insertion: carry equal-size pennants upward.
    pub fn insert(&mut self, value: VertexId) {
        let mut carry = Pennant::singleton(value);
        let mut k = 0usize;
        loop {
            if k == self.spine.len() {
                self.spine.push(Some(carry));
                return;
            }
            match self.spine[k].take() {
                None => {
                    self.spine[k] = Some(carry);
                    return;
                }
                Some(existing) => {
                    carry = Pennant::union(existing, carry);
                    k += 1;
                }
            }
        }
    }

    /// Binary-addition union: merge `other` into `self` in O(log n).
    pub fn union(&mut self, other: Bag) {
        let max_len = self.spine.len().max(other.spine.len());
        self.spine.resize_with(max_len, || None);
        let mut other_spine = other.spine;
        other_spine.resize_with(max_len, || None);
        let mut carry: Option<Pennant> = None;
        for (a_slot, b_slot) in self.spine.iter_mut().zip(other_spine.iter_mut()) {
            let a = a_slot.take();
            let b = b_slot.take();
            let (res, new_carry) = full_adder(a, b, carry);
            *a_slot = res;
            carry = new_carry;
        }
        if let Some(c) = carry {
            self.spine.push(Some(c));
        }
    }

    /// Bag-split (SPAA'10 Fig. 4): right-shift the spine, splitting each
    /// pennant in half. `self` keeps one half; the returned bag gets the
    /// other. A leftover singleton (the former `2^0` pennant) stays in
    /// `self`, making the split sizes differ by at most one.
    pub fn split(&mut self) -> Bag {
        if self.spine.is_empty() {
            return Bag::new();
        }
        let leftover = self.spine[0].take();
        let mut other = Bag { spine: Vec::with_capacity(self.spine.len()) };
        for k in 1..self.spine.len() {
            match self.spine[k].take() {
                None => {
                    self.spine[k - 1] = None;
                    other.spine.push(None);
                }
                Some(mut p) => {
                    let half = p.split();
                    self.spine[k - 1] = Some(p);
                    other.spine.push(Some(half));
                }
            }
        }
        if let Some(l) = self.spine.last() {
            if l.is_none() {
                self.spine.pop();
            }
        }
        if let Some(single) = leftover {
            // Re-insert the odd element.
            let mut k = 0;
            let mut carry = single;
            loop {
                if k == self.spine.len() {
                    self.spine.push(Some(carry));
                    break;
                }
                match self.spine[k].take() {
                    None => {
                        self.spine[k] = Some(carry);
                        break;
                    }
                    Some(e) => {
                        carry = Pennant::union(e, carry);
                        k += 1;
                    }
                }
            }
        }
        other
    }

    /// Visit every element.
    pub fn for_each(&self, mut f: impl FnMut(VertexId)) {
        for p in self.spine.iter().flatten() {
            p.for_each(&mut f);
        }
    }

    /// Drain the spine's pennants (for task-parallel layer processing).
    pub fn take_pennants(&mut self) -> Vec<Pennant> {
        self.spine.drain(..).flatten().collect()
    }

    /// Collect into a sorted vector (test helper).
    pub fn to_sorted_vec(&self) -> Vec<VertexId> {
        let mut v = Vec::with_capacity(self.len());
        self.for_each(|x| v.push(x));
        v.sort_unstable();
        v
    }
}

/// One column of the binary addition in [`Bag::union`].
fn full_adder(
    a: Option<Pennant>,
    b: Option<Pennant>,
    carry: Option<Pennant>,
) -> (Option<Pennant>, Option<Pennant>) {
    match (a, b, carry) {
        (None, None, None) => (None, None),
        (Some(x), None, None) | (None, Some(x), None) | (None, None, Some(x)) => (Some(x), None),
        (Some(x), Some(y), None) | (Some(x), None, Some(y)) | (None, Some(x), Some(y)) => {
            (None, Some(Pennant::union(x, y)))
        }
        (Some(x), Some(y), Some(z)) => (Some(z), Some(Pennant::union(x, y))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn structural_ok(p: &Pennant) -> bool {
        // A pennant of 2^k nodes: root has only a left child, which roots
        // a complete binary tree of 2^k - 1 nodes.
        fn complete_size(n: &PennantNode) -> Option<usize> {
            let l = n.left.as_ref().map_or(Some(0), |c| complete_size(c))?;
            let r = n.right.as_ref().map_or(Some(0), |c| complete_size(c))?;
            // complete trees here are the "full binomial" shape produced
            // by unions: left subtree has one more level than right.
            Some(1 + l + r)
        }
        if p.root.right.is_some() {
            return false;
        }
        complete_size(&p.root).is_some_and(|s| s == p.len())
    }

    /// Build a pennant of `2^k` elements `base..base+2^k` by tournament
    /// unions.
    fn build_pennant(base: u32, k: u32) -> Pennant {
        let mut layer: Vec<Pennant> =
            (0..1u32 << k).map(|i| Pennant::singleton(base + i)).collect();
        while layer.len() > 1 {
            layer = layer
                .chunks_exact(2)
                .map(|pair| {
                    let [a, b] = pair else { unreachable!() };
                    Pennant::union(a.clone(), b.clone())
                })
                .collect();
        }
        layer.pop().unwrap()
    }

    #[test]
    fn union_doubles_and_split_inverts() {
        let mut p = build_pennant(0, 4);
        assert_eq!(p.len(), 16);
        assert!(p.len().is_power_of_two());
        assert!(structural_ok(&p));
        let before: Vec<_> = {
            let mut v = p.to_vec();
            v.sort_unstable();
            v
        };
        let half = p.split();
        assert_eq!(p.len(), half.len());
        let mut after = p.to_vec();
        after.extend(half.to_vec());
        after.sort_unstable();
        assert_eq!(before, after, "split must preserve the element set");
    }

    #[test]
    fn split_then_union_roundtrip() {
        let mut p = Pennant::union(
            Pennant::union(Pennant::singleton(1), Pennant::singleton(2)),
            Pennant::union(Pennant::singleton(3), Pennant::singleton(4)),
        );
        let set_before = {
            let mut v = p.to_vec();
            v.sort_unstable();
            v
        };
        let y = p.split();
        let rejoined = Pennant::union(p, y);
        let mut set_after = rejoined.to_vec();
        set_after.sort_unstable();
        assert_eq!(set_before, set_after);
        assert_eq!(rejoined.len(), 4);
    }

    #[test]
    #[should_panic(expected = "equal sizes")]
    fn union_rejects_mismatched_sizes() {
        let a = Pennant::union(Pennant::singleton(1), Pennant::singleton(2));
        let b = Pennant::singleton(3);
        let _ = Pennant::union(a, b);
    }

    #[test]
    #[should_panic(expected = "singleton")]
    fn split_rejects_singleton() {
        let mut p = Pennant::singleton(1);
        let _ = p.split();
    }

    #[test]
    fn bag_insert_counts_like_binary_counter() {
        let mut b = Bag::new();
        for i in 0..100u32 {
            b.insert(i);
            assert_eq!(b.len(), i as usize + 1);
        }
        assert_eq!(b.to_sorted_vec(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bag_union_is_multiset_union() {
        let mut a = Bag::new();
        let mut b = Bag::new();
        for i in 0..37u32 {
            a.insert(i);
        }
        for i in 37..100u32 {
            b.insert(i);
        }
        a.union(b);
        assert_eq!(a.len(), 100);
        assert_eq!(a.to_sorted_vec(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bag_union_with_empty() {
        let mut a = Bag::new();
        a.insert(5);
        a.union(Bag::new());
        assert_eq!(a.len(), 1);
        let mut e = Bag::new();
        e.union(a);
        assert_eq!(e.to_sorted_vec(), vec![5]);
    }

    #[test]
    fn bag_split_halves_and_preserves_elements() {
        for n in [1usize, 2, 3, 7, 8, 64, 100, 255] {
            let mut b = Bag::new();
            for i in 0..n as u32 {
                b.insert(i);
            }
            let other = b.split();
            assert_eq!(b.len() + other.len(), n, "n={n}");
            let diff = b.len().abs_diff(other.len());
            assert!(diff <= 1, "n={n}: split sizes {} / {}", b.len(), other.len());
            let mut all = b.to_sorted_vec();
            all.extend(other.to_sorted_vec());
            all.sort_unstable();
            assert_eq!(all, (0..n as u32).collect::<Vec<_>>(), "n={n}");
        }
    }

    #[test]
    fn empty_bag_behaviour() {
        let mut b = Bag::new();
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
        let s = b.split();
        assert!(s.is_empty());
        assert_eq!(b.take_pennants().len(), 0);
    }

    #[test]
    fn take_pennants_drains() {
        let mut b = Bag::new();
        for i in 0..10u32 {
            b.insert(i);
        }
        let ps = b.take_pennants();
        assert!(b.is_empty());
        let total: usize = ps.iter().map(|p| p.len()).sum();
        assert_eq!(total, 10);
        // 10 = 0b1010: pennants of size 2 and 8
        let mut ks: Vec<u32> = ps.iter().map(|p| p.k()).collect();
        ks.sort_unstable();
        assert_eq!(ks, vec![1, 3]);
    }
}
