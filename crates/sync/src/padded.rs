//! Cache-line padding to prevent false sharing.

use std::ops::{Deref, DerefMut};

/// Pads and aligns `T` to 128 bytes (two 64-byte lines, covering adjacent
/// line prefetchers on x86).
///
/// Per-thread queue headers (`front`, `rear` pointers) and per-thread
/// counters are wrapped in this so that one thread's writes do not
/// invalidate its neighbours' cache lines — the paper's per-thread queue
/// layout relies on the same separation.
#[repr(align(128))]
#[derive(Debug, Default, Clone, Copy)]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap a value with cache-line padding.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_size() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<[u8; 200]>>(), 256);
    }

    #[test]
    fn deref_roundtrip() {
        let mut p = CachePadded::new(5u64);
        assert_eq!(*p, 5);
        *p += 1;
        assert_eq!(p.into_inner(), 6);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v: Vec<CachePadded<u32>> = (0..4).map(CachePadded::new).collect();
        let a = &*v[0] as *const u32 as usize;
        let b = &*v[1] as *const u32 as usize;
        assert!(b - a >= 128);
    }
}
