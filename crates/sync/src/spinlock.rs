//! A test-and-test-and-set (TTAS) spin lock with `try_lock`.
//!
//! This is the lock used by the paper's lock-based comparison variants
//! (BFSC, BFSW, BFSWS). The work-stealing variants only ever use
//! [`SpinLock::try_lock`], matching the paper's observation that the lock
//! wait time per steal attempt is O(1) via `try_lock()`.
//!
//! Because the reproduction environment oversubscribes cores (more worker
//! threads than CPUs), the blocking `lock` path yields to the scheduler
//! after a bounded amount of spinning instead of burning a full quantum.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A mutual-exclusion spin lock protecting a `T`.
#[derive(Debug, Default)]
pub struct SpinLock<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to `data`, so it is Sync as
// long as T can be sent between threads.
unsafe impl<T: ?Sized + Send> Sync for SpinLock<T> {}
// SAFETY: moving the lock moves the owned `T` — same bound.
unsafe impl<T: ?Sized + Send> Send for SpinLock<T> {}

/// RAII guard; releases the lock on drop.
pub struct SpinLockGuard<'a, T: ?Sized> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// An unlocked lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self { locked: AtomicBool::new(false), data: UnsafeCell::new(value) }
    }

    /// Unwrap the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> SpinLock<T> {
    /// Acquire the lock, spinning (with yields) until available.
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            // Test-and-test-and-set: spin on a plain load first so the
            // line stays shared until it is plausibly free.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                // Fault injection: deferred racy stores must not leak
                // into a critical section (no-op without `chaos`).
                crate::chaos::quiesce();
                return SpinLockGuard { lock: self };
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                // Oversubscribed machines: let the lock holder run.
                std::thread::yield_now();
                spins = 0;
            }
        }
    }

    /// Try to acquire without waiting. Returns `None` if held.
    #[inline]
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if !self.locked.load(Ordering::Relaxed)
            && self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
        {
            crate::chaos::quiesce();
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held (racy snapshot; diagnostics only).
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized> Deref for SpinLockGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for SpinLockGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the lock, so access is exclusive.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for SpinLockGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Fault injection: racy stores made inside the critical section
        // must be visible before the lock is released (no-op without
        // `chaos`), preserving the exactness of the locked variants.
        crate::chaos::quiesce();
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_mutation() {
        let l = SpinLock::new(10);
        {
            let mut g = l.lock();
            *g += 5;
        }
        assert_eq!(*l.lock(), 15);
        assert_eq!(l.into_inner(), 15);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let l = SpinLock::new(());
        let g = l.lock();
        assert!(l.is_locked());
        assert!(l.try_lock().is_none());
        drop(g);
        assert!(!l.is_locked());
        assert!(l.try_lock().is_some());
    }

    #[test]
    fn counter_is_exact_under_contention() {
        const THREADS: usize = 8;
        const PER: usize = 10_000;
        let l = Arc::new(SpinLock::new(0usize));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..PER {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), THREADS * PER);
    }

    #[test]
    fn try_lock_contention_never_double_acquires() {
        let l = Arc::new(SpinLock::new(0i64));
        let inside = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                let inside = Arc::clone(&inside);
                std::thread::spawn(move || {
                    let mut acquired = 0;
                    while acquired < 1000 {
                        if let Some(mut g) = l.try_lock() {
                            // Relaxed suffices: the lock's own
                            // acquire/release edges order the probe —
                            // the assertion is *about* that exclusion,
                            // it doesn't need to re-create it.
                            assert!(!inside.swap(true, Ordering::Relaxed), "two guards alive");
                            *g += 1;
                            inside.store(false, Ordering::Relaxed);
                            acquired += 1;
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), 4000);
    }

    #[test]
    fn get_mut_without_locking() {
        let mut l = SpinLock::new(1);
        *l.get_mut() = 2;
        assert_eq!(*l.lock(), 2);
    }
}
