//! Synchronization substrate for the optimistic BFS reproduction.
//!
//! The paper's central primitive is a shared integer that many threads read
//! and write **without locks and without atomic read-modify-write
//! instructions**. This crate provides that primitive ([`racy`]), the spin
//! locks used by the paper's lock-based comparison variants ([`spinlock`],
//! [`ticket`]), the sense-reversing barrier used for BFS level
//! synchronization ([`barrier`]), and cache-line padding ([`padded`]).
//!
//! # The two racy backends
//!
//! The original C++ code performs plain, unguarded loads and stores on
//! shared `int` queue indices. Rust offers two ways to express that:
//!
//! * **Relaxed atomics** (default): `AtomicU32::{load,store}(Relaxed)`.
//!   On every mainstream ISA these compile to the *same machine
//!   instructions* as plain loads/stores — no `lock` prefix, no fence, no
//!   RMW — while remaining defined behaviour in the Rust memory model.
//!   This is the faithful reproduction of "no locks and no atomic
//!   instructions" as the paper means it (the paper's "atomic
//!   instructions" are `lock cmpxchg` / `lock xadd` style RMW ops).
//! * **Volatile** (`--features volatile-racy`): `UnsafeCell` +
//!   `ptr::read_volatile` / `ptr::write_volatile`. This is bit-level
//!   identical to the C++ source but is formally a data race (UB) in the
//!   Rust abstract machine. It is provided for fidelity experiments only
//!   and is off by default.
//!
//! Every consumer goes through the same [`racy::RacyU32`] /
//! [`racy::RacyUsize`] API so the backend is a pure compile-time switch.

#![warn(missing_docs)]

pub mod barrier;
pub mod cancel;
pub mod chaos;
pub mod clock;
pub mod flight;
pub mod metrics;
pub mod model;
pub mod padded;
pub mod racy;
pub mod spinlock;
pub mod ticket;

pub use barrier::SpinBarrier;
pub use cancel::{CancelCause, CancelToken};
pub use chaos::ChaosConfig;
pub use clock::{Clock, ManualClock};
pub use padded::CachePadded;
pub use racy::{RacyBuf, RacyBuf64, RacyU32, RacyU64, RacyUsize};
pub use spinlock::{SpinLock, SpinLockGuard};
pub use ticket::TicketLock;
