//! Cooperative cancellation with optional deadlines.
//!
//! A [`CancelToken`] is the control-plane handle a caller keeps while a
//! traversal runs: `cancel()` asks the run to stop, an optional
//! deadline makes it stop by itself, and the workers poll [`check`] at
//! the same dispatch granularity as the watchdog (per segment fetch /
//! steal attempt / bottom-up chunk — never per edge).
//!
//! # Memory model: why a plain-store flag is enough
//!
//! The cancelled flag is a single `AtomicBool` written with a relaxed
//! *store* and read with relaxed *loads* — no read-modify-write, no
//! fences, the same instruction shape as the paper's racy queue
//! cursors. The argument mirrors the watchdog abort flag
//! (`obfs-core`'s `wd_abort`): the flag only ever goes `false → true`,
//! every consumer treats a stale `false` as "keep working a little
//! longer" (bounded by one dispatch quantum plus one level barrier,
//! where release/acquire edges make the store visible), and a stale
//! `true` is impossible to mis-handle because the run-abort decision
//! itself is made once, by the barrier leader in a serial section, and
//! published to the workers through the barrier like every other
//! leader decision. Cancellation therefore needs *no* new
//! synchronization beyond what the level-synchronous protocol already
//! has.
//!
//! Deadlines are absolute [`Clock`] ticks fixed at token creation, so
//! the polling path compares two integers; with a manual clock the
//! deadline branch is fully deterministic in tests.
//!
//! [`check`]: CancelToken::check

use crate::clock::Clock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Arc;
use std::time::Duration;

/// Why a run stopped early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called.
    Cancelled,
    /// The token's deadline passed.
    DeadlineExceeded,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Absolute deadline in `clock` ticks; `None` = no deadline.
    deadline_ns: Option<u64>,
    clock: Clock,
}

/// A cloneable cancellation handle; clones observe the same flag and
/// deadline. Zero polling cost to runs that carry no token.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token with no deadline on `clock` (cancel-only).
    pub fn new(clock: &Clock) -> Self {
        Self::build(clock, None)
    }

    /// A token whose deadline is `d` from now on `clock`.
    pub fn with_deadline(clock: &Clock, d: Duration) -> Self {
        Self::build(clock, Some(clock.deadline_after(d)))
    }

    /// A token with an absolute deadline in `clock` ticks (what the
    /// engine uses so retries keep the original deadline).
    pub fn with_deadline_at(clock: &Clock, deadline_ns: u64) -> Self {
        Self::build(clock, Some(deadline_ns))
    }

    fn build(clock: &Clock, deadline_ns: Option<u64>) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline_ns,
                clock: clock.clone(),
            }),
        }
    }

    /// Request cancellation (idempotent; a plain relaxed store).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Relaxed);
    }

    /// Whether [`cancel`](Self::cancel) has been observed (deadline not
    /// consulted).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Relaxed)
    }

    /// The absolute deadline in clock ticks, if the token has one.
    pub fn deadline_ns(&self) -> Option<u64> {
        self.inner.deadline_ns
    }

    /// The clock the deadline is measured against.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// Poll the token: `None` keeps running; `Some(cause)` asks the run
    /// to quiesce. An explicit cancel wins over a passed deadline so
    /// the reported cause is stable once observed.
    #[inline]
    pub fn check(&self) -> Option<CancelCause> {
        if self.inner.cancelled.load(Relaxed) {
            return Some(CancelCause::Cancelled);
        }
        match self.inner.deadline_ns {
            Some(d) if self.inner.clock.now_ns() >= d => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }
}

thread_local! {
    /// The stall-breaker probe: chaos-injected stalls poll this token
    /// so "stall until cancelled" faults stay cooperative (see
    /// `chaos::ChaosConfig::stall_after`).
    static PROBE: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Install `token` as the current thread's stall-breaker probe
/// (replacing any previous one). The BFS driver installs the run's
/// token here so chaos stalls break promptly on cancellation.
pub fn install_probe(token: CancelToken) {
    PROBE.with(|p| *p.borrow_mut() = Some(token));
}

/// Remove the current thread's probe, returning whether one was
/// installed (soak tests assert the pool leaves no probe behind).
pub fn uninstall_probe() -> bool {
    PROBE.with(|p| p.borrow_mut().take().is_some())
}

/// Whether the current thread has an installed probe.
pub fn probe_installed() -> bool {
    PROBE.with(|p| p.borrow().is_some())
}

/// Whether the installed probe's token asks for cancellation (false
/// when no probe is installed).
#[inline]
pub fn probe_fired() -> bool {
    PROBE.with(|p| p.borrow().as_ref().is_some_and(|t| t.check().is_some()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let clock = Clock::wall();
        let t = CancelToken::new(&clock);
        assert_eq!(t.check(), None);
        assert!(!t.is_cancelled());
        let t2 = t.clone();
        t.cancel();
        assert_eq!(t.check(), Some(CancelCause::Cancelled));
        assert_eq!(t2.check(), Some(CancelCause::Cancelled));
        assert!(t2.is_cancelled());
        t.cancel(); // idempotent
        assert_eq!(t.check(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn deadline_fires_deterministically_on_a_manual_clock() {
        let (clock, hand) = Clock::manual();
        let t = CancelToken::with_deadline(&clock, Duration::from_millis(10));
        assert_eq!(t.deadline_ns(), Some(10_000_000));
        assert_eq!(t.check(), None, "frozen clock: deadline cannot pass");
        hand.advance(Duration::from_millis(9));
        assert_eq!(t.check(), None);
        hand.advance(Duration::from_millis(1));
        assert_eq!(t.check(), Some(CancelCause::DeadlineExceeded));
        assert!(!t.is_cancelled(), "deadline does not set the cancel flag");
    }

    #[test]
    fn explicit_cancel_wins_over_passed_deadline() {
        let (clock, hand) = Clock::manual();
        let t = CancelToken::with_deadline_at(&clock, 5);
        t.cancel();
        hand.set_ns(100);
        assert_eq!(t.check(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn zero_deadline_fires_immediately() {
        let clock = Clock::wall();
        let t = CancelToken::with_deadline(&clock, Duration::ZERO);
        assert_eq!(t.check(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn probe_lifecycle() {
        assert!(!probe_installed());
        assert!(!probe_fired(), "no probe: never fires");
        let clock = Clock::wall();
        let t = CancelToken::new(&clock);
        install_probe(t.clone());
        assert!(probe_installed());
        assert!(!probe_fired());
        t.cancel();
        assert!(probe_fired());
        assert!(uninstall_probe());
        assert!(!uninstall_probe(), "second uninstall finds nothing");
        assert!(!probe_fired());
    }
}
