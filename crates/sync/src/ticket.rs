//! A FIFO ticket lock.
//!
//! Used as an alternative lock for the lock-based BFS variants in the
//! ablation benches: ticket locks hand out the critical section in arrival
//! order, which models the Θ(p) centralized-queue wait time the paper
//! describes for BFSC more faithfully than a TTAS lock (whose acquisition
//! order is arbitrary).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};

/// FIFO spin lock protecting a `T`.
#[derive(Debug, Default)]
pub struct TicketLock<T: ?Sized> {
    next_ticket: AtomicUsize,
    now_serving: AtomicUsize,
    data: UnsafeCell<T>,
}

// SAFETY: exclusive access is guaranteed by ticket ownership.
unsafe impl<T: ?Sized + Send> Sync for TicketLock<T> {}
// SAFETY: moving the lock moves the owned `T` — same bound.
unsafe impl<T: ?Sized + Send> Send for TicketLock<T> {}

/// RAII guard; releases the lock (advances `now_serving`) on drop.
pub struct TicketGuard<'a, T: ?Sized> {
    lock: &'a TicketLock<T>,
}

impl<T> TicketLock<T> {
    /// An unlocked lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            next_ticket: AtomicUsize::new(0),
            now_serving: AtomicUsize::new(0),
            data: UnsafeCell::new(value),
        }
    }

    /// Unwrap the protected value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> TicketLock<T> {
    /// Take a ticket and spin until it is served.
    pub fn lock(&self) -> TicketGuard<'_, T> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        while self.now_serving.load(Ordering::Acquire) != ticket {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
                spins = 0;
            }
        }
        // Fault injection: no deferred racy stores may leak into the
        // critical section (no-op without `chaos`).
        crate::chaos::quiesce();
        TicketGuard { lock: self }
    }

    /// Acquire only if nobody is waiting or holding; never takes a ticket
    /// it cannot immediately serve.
    pub fn try_lock(&self) -> Option<TicketGuard<'_, T>> {
        let serving = self.now_serving.load(Ordering::Relaxed);
        if self
            .next_ticket
            .compare_exchange(serving, serving + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            crate::chaos::quiesce();
            Some(TicketGuard { lock: self })
        } else {
            None
        }
    }

    /// Number of threads waiting or holding (racy snapshot; diagnostics).
    pub fn queue_depth(&self) -> usize {
        self.next_ticket
            .load(Ordering::Relaxed)
            .wrapping_sub(self.now_serving.load(Ordering::Relaxed))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: ?Sized> Deref for TicketGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard holds the active ticket.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for TicketGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: the guard holds the active ticket.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for TicketGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        // Fault injection: publish critical-section racy stores before
        // release (no-op without `chaos`).
        crate::chaos::quiesce();
        let t = self.lock.now_serving.load(Ordering::Relaxed);
        self.lock.now_serving.store(t.wrapping_add(1), Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_roundtrip() {
        let l = TicketLock::new(vec![1, 2]);
        l.lock().push(3);
        assert_eq!(*l.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn contended_counter_exact() {
        let l = Arc::new(TicketLock::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..5_000 {
                        *l.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.lock(), 40_000);
    }

    #[test]
    fn try_lock_semantics() {
        let l = TicketLock::new(());
        let g = l.lock();
        assert!(l.try_lock().is_none());
        assert_eq!(l.queue_depth(), 1);
        drop(g);
        let g2 = l.try_lock();
        assert!(g2.is_some());
    }

    #[test]
    fn fifo_order_two_waiters() {
        // Thread A holds the lock; B then C queue up. Release order of the
        // critical section must be B before C.
        let l = Arc::new(TicketLock::new(Vec::<u32>::new()));
        let g = l.lock();
        let lb = Arc::clone(&l);
        let b = std::thread::spawn(move || lb.lock().push(1));
        // Give B time to take its ticket before C arrives.
        std::thread::sleep(std::time::Duration::from_millis(50));
        let lc = Arc::clone(&l);
        let c = std::thread::spawn(move || lc.lock().push(2));
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(g);
        b.join().unwrap();
        c.join().unwrap();
        assert_eq!(*l.lock(), vec![1, 2], "ticket lock must serve in arrival order");
    }
}
