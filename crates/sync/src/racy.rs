//! Racy shared cells: plain unsynchronized loads and stores.
//!
//! These types model the paper's unprotected shared queue indices. Neither
//! backend ever emits a lock-prefixed or read-modify-write instruction;
//! there is deliberately **no** `fetch_add`, `compare_exchange`, or any
//! other RMW in this module. A thread that wants "increment" must do
//! `load; store(x + s)` and live with the race — that *is* the algorithm.
//!
//! See the crate docs for the relaxed-atomic vs. volatile backend
//! discussion.
//!
//! With `--features chaos` the relaxed-atomic backend additionally routes
//! every load/store through the thread's [`crate::chaos`] fault plan (a
//! cheap thread-local check when no plan is installed; compiled out
//! entirely without the feature). The volatile backend is never
//! intercepted — it exists for bit-level fidelity, not fault injection.

#[cfg(not(feature = "volatile-racy"))]
mod backend {
    use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};

    /// A shared 64-bit cell accessed with plain (relaxed) loads/stores.
    ///
    /// The storage type behind per-vertex query-membership words in the
    /// batched multi-source BFS: a "visited-by" word is OR-updated with
    /// `load; store(v | bits)` — deliberately no `fetch_or`, so racing
    /// updates can lose bits. Consumers treat the word as an
    /// under-approximation and revalidate against the per-query level
    /// rows, the same optimistic discipline as the queue cursors.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct RacyU64(AtomicU64);

    impl RacyU64 {
        /// A cell holding `v`.
        #[inline]
        pub const fn new(v: u64) -> Self {
            Self(AtomicU64::new(v))
        }
        /// Plain racy load.
        #[inline]
        pub fn load(&self) -> u64 {
            #[cfg(feature = "chaos")]
            if let Some(v) = crate::chaos::hooks::load_u64(&self.0) {
                return v;
            }
            self.0.load(Relaxed)
        }
        /// Plain racy store.
        #[inline]
        pub fn store(&self, v: u64) {
            #[cfg(feature = "chaos")]
            if crate::chaos::hooks::store_u64(&self.0, v) {
                return;
            }
            self.0.store(v, Relaxed)
        }
    }

    /// A shared 32-bit cell accessed with plain (relaxed) loads/stores.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct RacyU32(AtomicU32);

    impl RacyU32 {
        /// A cell holding `v`.
        #[inline]
        pub const fn new(v: u32) -> Self {
            Self(AtomicU32::new(v))
        }
        /// Plain racy load.
        #[inline]
        pub fn load(&self) -> u32 {
            #[cfg(feature = "chaos")]
            if let Some(v) = crate::chaos::hooks::load_u32(&self.0) {
                return v;
            }
            self.0.load(Relaxed)
        }
        /// Plain racy store.
        #[inline]
        pub fn store(&self, v: u32) {
            #[cfg(feature = "chaos")]
            if crate::chaos::hooks::store_u32(&self.0, v) {
                return;
            }
            self.0.store(v, Relaxed)
        }
    }

    /// A shared word-size cell accessed with plain (relaxed) loads/stores.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct RacyUsize(AtomicUsize);

    impl RacyUsize {
        /// A cell holding `v`.
        #[inline]
        pub const fn new(v: usize) -> Self {
            Self(AtomicUsize::new(v))
        }
        /// Plain racy load.
        #[inline]
        pub fn load(&self) -> usize {
            #[cfg(feature = "chaos")]
            if let Some(v) = crate::chaos::hooks::load_usize(&self.0) {
                return v;
            }
            self.0.load(Relaxed)
        }
        /// Plain racy store.
        #[inline]
        pub fn store(&self, v: usize) {
            #[cfg(feature = "chaos")]
            if crate::chaos::hooks::store_usize(&self.0, v) {
                return;
            }
            self.0.store(v, Relaxed)
        }
    }
}

#[cfg(feature = "volatile-racy")]
mod backend {
    use std::cell::UnsafeCell;

    /// A shared 64-bit cell accessed with volatile loads/stores.
    ///
    /// See [`RacyU32`] for the fidelity/safety discussion; the 64-bit cell
    /// backs the batched-BFS query-membership words.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct RacyU64(UnsafeCell<u64>);

    // SAFETY (by construction, not by the abstract machine): all accesses go
    // through volatile single-word loads/stores on naturally aligned u64,
    // which no mainstream 64-bit ISA tears, and every algorithmic consumer
    // treats the value as an under-approximation to be revalidated
    // (optimistic parallelization).
    unsafe impl Sync for RacyU64 {}
    // SAFETY: plain owned data — same argument as above.
    unsafe impl Send for RacyU64 {}

    impl RacyU64 {
        /// A cell holding `v`.
        #[inline]
        pub const fn new(v: u64) -> Self {
            Self(UnsafeCell::new(v))
        }
        /// Plain (volatile) racy load.
        #[inline]
        pub fn load(&self) -> u64 {
            // SAFETY: aligned, live, word-sized — see the Sync impl.
            unsafe { std::ptr::read_volatile(self.0.get()) }
        }
        /// Plain (volatile) racy store.
        #[inline]
        pub fn store(&self, v: u64) {
            // SAFETY: aligned, live, word-sized — see the Sync impl.
            unsafe { std::ptr::write_volatile(self.0.get(), v) }
        }
    }

    /// A shared 32-bit cell accessed with volatile loads/stores.
    ///
    /// Bit-level faithful to the original C++ (plain `int` accesses), but a
    /// formal data race in the Rust abstract machine; enabled only by the
    /// `volatile-racy` feature for fidelity experiments.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct RacyU32(UnsafeCell<u32>);

    // SAFETY (by construction, not by the abstract machine): all accesses go
    // through volatile single-word loads/stores on naturally aligned u32,
    // which no mainstream ISA tears, and every algorithmic consumer
    // tolerates stale values by design (optimistic parallelization).
    unsafe impl Sync for RacyU32 {}
    // SAFETY: plain owned data — same argument as above.
    unsafe impl Send for RacyU32 {}

    impl RacyU32 {
        /// A cell holding `v`.
        #[inline]
        pub const fn new(v: u32) -> Self {
            Self(UnsafeCell::new(v))
        }
        /// Plain (volatile) racy load.
        #[inline]
        pub fn load(&self) -> u32 {
            // SAFETY: aligned, live, word-sized — see the Sync impl.
            unsafe { std::ptr::read_volatile(self.0.get()) }
        }
        /// Plain (volatile) racy store.
        #[inline]
        pub fn store(&self, v: u32) {
            // SAFETY: aligned, live, word-sized — see the Sync impl.
            unsafe { std::ptr::write_volatile(self.0.get(), v) }
        }
    }

    /// A shared word-size cell accessed with volatile loads/stores.
    #[repr(transparent)]
    #[derive(Debug, Default)]
    pub struct RacyUsize(UnsafeCell<usize>);

    // SAFETY: volatile single-word accesses on an aligned usize — the
    // same by-construction argument as RacyU32 above.
    unsafe impl Sync for RacyUsize {}
    // SAFETY: plain owned data — same argument as above.
    unsafe impl Send for RacyUsize {}

    impl RacyUsize {
        /// A cell holding `v`.
        #[inline]
        pub const fn new(v: usize) -> Self {
            Self(UnsafeCell::new(v))
        }
        /// Plain (volatile) racy load.
        #[inline]
        pub fn load(&self) -> usize {
            // SAFETY: aligned, live, word-sized — see the Sync impl.
            unsafe { std::ptr::read_volatile(self.0.get()) }
        }
        /// Plain (volatile) racy store.
        #[inline]
        pub fn store(&self, v: usize) {
            // SAFETY: aligned, live, word-sized — see the Sync impl.
            unsafe { std::ptr::write_volatile(self.0.get(), v) }
        }
    }
}

pub use backend::{RacyU32, RacyU64, RacyUsize};

/// A shared buffer of racy `u32` slots.
///
/// This is the storage type behind every BFS queue (`Qin[i]` / `Qout[i]`)
/// and behind the shared `level[]` array. Indexing is bounds-checked in
/// debug builds via the underlying slice access.
#[derive(Debug, Default)]
pub struct RacyBuf {
    slots: Box<[RacyU32]>,
}

impl RacyBuf {
    /// A zero-filled buffer of `len` slots.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || RacyU32::new(0));
        Self { slots: v.into_boxed_slice() }
    }

    /// A buffer filled with `value`.
    pub fn filled(len: usize, value: u32) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || RacyU32::new(value));
        Self { slots: v.into_boxed_slice() }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Plain racy load of slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.slots[i].load()
    }

    /// Plain racy store to slot `i`.
    #[inline]
    pub fn set(&self, i: usize, v: u32) {
        self.slots[i].store(v)
    }

    /// Borrow `len` consecutive slots starting at `start` (one bounds
    /// check for a whole row — the batched-BFS per-vertex level rows are
    /// scanned on every frontier pop, where per-slot indexing costs).
    #[inline]
    pub fn row(&self, start: usize, len: usize) -> &[RacyU32] {
        &self.slots[start..start + len]
    }

    /// Overwrite every slot with `value` (single-threaded reset path).
    pub fn fill(&self, value: u32) {
        for s in self.slots.iter() {
            s.store(value);
        }
    }

    /// Copy the buffer into a plain vector (test/diagnostic helper).
    pub fn snapshot(&self) -> Vec<u32> {
        self.slots.iter().map(|s| s.load()).collect()
    }
}

/// A shared buffer of racy `u64` slots.
///
/// The storage type behind batched-BFS per-vertex words: `visited_by[v]`
/// (which queries have claimed `v`) and the per-level bottom-up frontier
/// words. Same access discipline as [`RacyBuf`], one word per vertex.
#[derive(Debug, Default)]
pub struct RacyBuf64 {
    slots: Box<[RacyU64]>,
}

impl RacyBuf64 {
    /// A zero-filled buffer of `len` slots.
    pub fn new(len: usize) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || RacyU64::new(0));
        Self { slots: v.into_boxed_slice() }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Plain racy load of slot `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load()
    }

    /// Plain racy store to slot `i`.
    #[inline]
    pub fn set(&self, i: usize, v: u64) {
        self.slots[i].store(v)
    }

    /// Overwrite every slot with `value` (single-threaded reset path).
    pub fn fill(&self, value: u64) {
        for s in self.slots.iter() {
            s.store(value);
        }
    }

    /// Copy the buffer into a plain vector (test/diagnostic helper).
    pub fn snapshot(&self) -> Vec<u64> {
        self.slots.iter().map(|s| s.load()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cell64_roundtrip() {
        let c = RacyU64::new(1 << 63);
        assert_eq!(c.load(), 1 << 63);
        c.store(u64::MAX);
        assert_eq!(c.load(), u64::MAX);
        let b = RacyBuf64::new(3);
        assert!(!b.is_empty());
        assert_eq!(b.len(), 3);
        b.set(1, 0xDEAD_BEEF_DEAD_BEEF);
        assert_eq!(b.get(1), 0xDEAD_BEEF_DEAD_BEEF);
        b.fill(7);
        assert_eq!(b.snapshot(), vec![7; 3]);
    }

    #[test]
    fn cell_roundtrip() {
        let c = RacyU32::new(7);
        assert_eq!(c.load(), 7);
        c.store(42);
        assert_eq!(c.load(), 42);
        let u = RacyUsize::new(1);
        u.store(usize::MAX);
        assert_eq!(u.load(), usize::MAX);
    }

    #[test]
    fn buf_basic_ops() {
        let b = RacyBuf::new(4);
        assert_eq!(b.len(), 4);
        assert_eq!(b.snapshot(), vec![0; 4]);
        b.set(2, 9);
        assert_eq!(b.get(2), 9);
        b.fill(3);
        assert_eq!(b.snapshot(), vec![3; 4]);
        let f = RacyBuf::filled(3, 11);
        assert_eq!(f.snapshot(), vec![11; 3]);
    }

    #[test]
    fn empty_buf() {
        let b = RacyBuf::new(0);
        assert!(b.is_empty());
        assert_eq!(b.snapshot(), Vec::<u32>::new());
    }

    /// Concurrent same-value stores (the benign-race pattern of the BFS
    /// `level[]` array): after all threads store the same value, the cell
    /// must hold it.
    #[test]
    fn concurrent_idempotent_stores() {
        let buf = Arc::new(RacyBuf::new(1024));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let b = Arc::clone(&buf);
            handles.push(std::thread::spawn(move || {
                for i in 0..b.len() {
                    b.set(i, (i as u32).wrapping_mul(2654435761));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for i in 0..buf.len() {
            assert_eq!(buf.get(i), (i as u32).wrapping_mul(2654435761));
        }
    }

    /// A reader racing a writer observes only values that were written
    /// (no tearing, no out-of-thin-air values) — the property the
    /// optimistic dispatcher relies on when validating segments.
    #[test]
    fn no_tearing_under_race() {
        let cell = Arc::new(RacyU32::new(0xAAAA_AAAA));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writer = {
            let c = Arc::clone(&cell);
            let s = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut flip = false;
                while !s.load(std::sync::atomic::Ordering::Relaxed) {
                    c.store(if flip { 0xAAAA_AAAA } else { 0x5555_5555 });
                    flip = !flip;
                }
            })
        };
        for _ in 0..100_000 {
            let v = cell.load();
            assert!(v == 0xAAAA_AAAA || v == 0x5555_5555, "torn read: {v:#x}");
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        writer.join().unwrap();
    }
}
