//! Deterministic fault injection for the racy cells (`--features chaos`).
//!
//! The paper's recovery machinery — invalid-segment retry, the zero-slot
//! abort, stale-steal re-probing — only runs when racy interleavings
//! actually happen, and on a lightly loaded machine they almost never do.
//! This module manufactures them on demand, deterministically, so the
//! recovery paths can be exercised by ordinary tests.
//!
//! # Fault model
//!
//! A thread with an installed [`FaultPlan`] perturbs its own racy
//! operations in three seed-reproducible ways:
//!
//! * **Store-buffer staleness**: a racy store is deferred into a
//!   thread-local simulated store buffer for a bounded number of
//!   subsequent racy operations before being flushed to memory. The
//!   owning thread still observes its own program order (store-to-load
//!   forwarding), but *other* threads keep reading the previous value —
//!   exactly the TSO-visibility race the paper's §IV argument is about.
//!   Buffers are flushed ("quiesced") at every [`SpinBarrier`] arrival
//!   and around every spin-lock critical section, so the injected races
//!   stay bounded within a BFS level, mirroring real hardware where
//!   store buffers drain at fences.
//! * **Delay windows**: short spin/yield pauses injected before racy
//!   operations, widening race windows.
//! * **Index skew**: explicitly tagged read sites (currently the
//!   work-steal descriptor snapshot) receive arbitrarily perturbed index
//!   values. This is only sound where the algorithm validates indices
//!   before use — the `f' < r' <= Qin[q'].rear` sanity check — which is
//!   precisely what the skew is meant to exercise.
//!
//! Deferred stores only ever replay values that were actually written, so
//! the injected behaviour stays inside the paper's fault model (no
//! out-of-thin-air values, no tearing).
//!
//! # Zero cost when off
//!
//! Without the `chaos` cargo feature every function in this module is an
//! `#[inline]` no-op and the racy cell fast paths compile exactly as
//! before. [`ChaosConfig`] itself is always compiled so higher layers
//! (e.g. `BfsOptions`) keep a feature-independent shape.
//!
//! # Pointer-validity contract
//!
//! A deferred store holds a raw pointer to its target cell until the next
//! flush. Callers that install a plan must therefore quiesce (or
//! uninstall) before the racy cells the thread wrote can be freed. The
//! BFS driver satisfies this structurally: every level ends at a barrier
//! (which quiesces) and the plan is uninstalled before the worker closure
//! returns, while the queues outlive the whole traversal.
//!
//! [`SpinBarrier`]: crate::SpinBarrier
//! [`FaultPlan`]: self

/// Tuning knobs for a deterministic fault plan. Plain data, always
/// compiled; only takes effect when the `chaos` feature is enabled and a
/// plan is installed on the thread.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master seed. Each thread derives an independent stream from
    /// `(seed, stream)` so plans are reproducible per worker.
    pub seed: u64,
    /// Probability in `[0, 1]` that a racy store is deferred into the
    /// simulated store buffer.
    pub defer_chance: f64,
    /// Maximum number of subsequent racy operations a deferred store
    /// stays invisible to other threads (its TTL is drawn from
    /// `1..=stale_window`).
    pub stale_window: u32,
    /// Probability in `[0, 1]` of an injected delay before a racy
    /// operation.
    pub delay_chance: f64,
    /// Maximum spin iterations per injected delay (larger draws also
    /// yield to the scheduler).
    pub delay_spins: u32,
    /// Probability in `[0, 1]` that a tagged index-read site returns a
    /// skewed value.
    pub skew_chance: f64,
    /// Maximum absolute additive skew; skew may also return a huge
    /// out-of-range index to probe bounds checks.
    pub skew_max: usize,
    /// Inject one long stall when the thread's racy-operation counter
    /// reaches this value (`None` = never). The stall sits *inside* a
    /// dispatch quantum and spins for [`stall_spins`] iterations — but
    /// polls the thread's cancellation probe
    /// ([`crate::cancel::probe_fired`]) every iteration, so a stalled
    /// worker still quiesces promptly when its run is cancelled or
    /// deadline-expired. This is how cancellation-under-stall is made
    /// testable.
    ///
    /// [`stall_spins`]: ChaosConfig::stall_spins
    pub stall_after: Option<u64>,
    /// Spin budget of an injected stall. Use a huge value to model a
    /// stuck worker that only the cancellation probe can release.
    pub stall_spins: u32,
    /// Panic the thread when its racy-operation counter reaches this
    /// value (`None` = never) — deterministic worker-death injection
    /// for pool-rebuild and engine-retry tests.
    pub panic_after: Option<u64>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            defer_chance: 0.10,
            stale_window: 16,
            delay_chance: 0.02,
            delay_spins: 64,
            skew_chance: 0.0,
            skew_max: 0,
            stall_after: None,
            stall_spins: 0,
            panic_after: None,
        }
    }
}

impl ChaosConfig {
    /// A plan that only defers stores (pure store-buffer staleness).
    pub fn store_buffer(seed: u64) -> Self {
        Self { seed, defer_chance: 0.25, stale_window: 24, delay_chance: 0.0, ..Self::default() }
    }

    /// A plan that only skews tagged index reads (for sanity-check
    /// coverage of the work-steal snapshot path).
    pub fn skew_only(seed: u64) -> Self {
        Self {
            seed,
            defer_chance: 0.0,
            delay_chance: 0.0,
            skew_chance: 0.5,
            skew_max: 1 << 20,
            ..Self::default()
        }
    }

    /// Everything at once, dialed high (stalls and panics stay off:
    /// aggressive plans must still terminate on their own).
    pub fn aggressive(seed: u64) -> Self {
        Self {
            seed,
            defer_chance: 0.30,
            stale_window: 32,
            delay_chance: 0.05,
            delay_spins: 128,
            skew_chance: 0.25,
            skew_max: 1 << 20,
            ..Self::default()
        }
    }

    /// A plan whose only fault is one stall of `spins` iterations at
    /// the `after`-th racy operation (per thread). With a huge `spins`
    /// this models a stuck worker that only the cancellation probe
    /// releases.
    pub fn stall(seed: u64, after: u64, spins: u32) -> Self {
        Self {
            seed,
            defer_chance: 0.0,
            delay_chance: 0.0,
            stall_after: Some(after),
            stall_spins: spins,
            ..Self::default()
        }
    }

    /// A plan whose only fault is a worker panic at the `after`-th racy
    /// operation (per thread).
    pub fn panic_at(seed: u64, after: u64) -> Self {
        Self {
            seed,
            defer_chance: 0.0,
            delay_chance: 0.0,
            panic_after: Some(after),
            ..Self::default()
        }
    }
}

/// A deterministic value-feeding script for the current thread's racy
/// *loads*, used by the model-checker differential harness to replay an
/// exact interleaving against the real dispatchers.
///
/// Where a [`ChaosConfig`] plan perturbs operations *randomly*, a script
/// dictates them *positionally*: the `k`-th racy `usize` load the thread
/// performs observes `usize_loads[k]` (and likewise for `u32` loads,
/// independently numbered). A `Some(v)` entry feeds `v` — the value the
/// corresponding load observed in the model schedule — while a `None`
/// entry (or running off the end of the script) lets the load read real
/// memory. Stores always go straight to real memory, so the dispatcher's
/// own writes stay visible to it and to later unscripted loads.
///
/// Feeding only replays values another thread could have legitimately
/// exposed under the store-buffer model, so a scripted run stays inside
/// the same fault model as a chaos plan; the point is that it pins the
/// *one* interleaving a model counterexample describes instead of
/// sampling. Plain data, always compiled; only takes effect with the
/// `chaos` feature.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosScript {
    /// Positional feeds for racy `usize` loads (queue fronts/rears,
    /// cursors, steal-descriptor words).
    pub usize_loads: Vec<Option<usize>>,
    /// Positional feeds for racy `u32` loads (queue slots, level words).
    pub u32_loads: Vec<Option<u32>>,
}

/// Consumption accounting returned by [`uninstall_script`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScriptReport {
    /// `Some` entries actually fed to `usize` loads.
    pub fed_usize: usize,
    /// `Some` entries actually fed to `u32` loads.
    pub fed_u32: usize,
    /// Script entries (either class) never reached by the run.
    pub leftover: usize,
}

#[cfg(feature = "chaos")]
mod active {
    use super::ChaosConfig;
    use obfs_util::Xoshiro256StarStar;
    use std::cell::RefCell;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering::Relaxed};

    /// Cap on simultaneously deferred stores per thread; past this,
    /// stores go straight to memory.
    const MAX_PENDING: usize = 64;

    enum Target {
        U32(*const AtomicU32, u32),
        U64(*const AtomicU64, u64),
        Usize(*const AtomicUsize, usize),
    }

    impl Target {
        fn addr(&self) -> usize {
            match *self {
                Target::U32(p, _) => p as usize,
                Target::U64(p, _) => p as usize,
                Target::Usize(p, _) => p as usize,
            }
        }

        /// Perform the real store.
        ///
        /// # Safety
        /// Caller upholds the module's pointer-validity contract: the
        /// target cell outlives the thread-local plan holding this entry.
        unsafe fn flush(&self) {
            match *self {
                Target::U32(p, v) => (*p).store(v, Relaxed),
                Target::U64(p, v) => (*p).store(v, Relaxed),
                Target::Usize(p, v) => (*p).store(v, Relaxed),
            }
        }
    }

    struct Pending {
        target: Target,
        ttl: u32,
    }

    pub(super) struct Plan {
        rng: Xoshiro256StarStar,
        cfg: ChaosConfig,
        pending: VecDeque<Pending>,
        injected: u64,
        /// Racy operations seen so far (the `stall_after`/`panic_after`
        /// trigger counter).
        ops: u64,
    }

    pub(super) struct Script {
        usize_loads: VecDeque<Option<usize>>,
        u32_loads: VecDeque<Option<u32>>,
        fed_usize: usize,
        fed_u32: usize,
    }

    thread_local! {
        static PLAN: RefCell<Option<Plan>> = const { RefCell::new(None) };
        static SCRIPT: RefCell<Option<Script>> = const { RefCell::new(None) };
    }

    pub(super) fn install_script(s: &super::ChaosScript) {
        SCRIPT.with(|slot| {
            *slot.borrow_mut() = Some(Script {
                usize_loads: s.usize_loads.iter().copied().collect(),
                u32_loads: s.u32_loads.iter().copied().collect(),
                fed_usize: 0,
                fed_u32: 0,
            });
        });
    }

    pub(super) fn uninstall_script() -> super::ScriptReport {
        SCRIPT.with(|slot| match slot.borrow_mut().take() {
            Some(s) => super::ScriptReport {
                fed_usize: s.fed_usize,
                fed_u32: s.fed_u32,
                leftover: s.usize_loads.len() + s.u32_loads.len(),
            },
            None => super::ScriptReport::default(),
        })
    }

    /// Consume the next scripted `u32`-load entry, if one feeds a value.
    fn script_feed_u32() -> Option<u32> {
        SCRIPT.with(|slot| {
            let mut s = slot.borrow_mut();
            let s = s.as_mut()?;
            match s.u32_loads.pop_front() {
                Some(Some(v)) => {
                    s.fed_u32 += 1;
                    Some(v)
                }
                _ => None,
            }
        })
    }

    /// Consume the next scripted `usize`-load entry, if one feeds a value.
    fn script_feed_usize() -> Option<usize> {
        SCRIPT.with(|slot| {
            let mut s = slot.borrow_mut();
            let s = s.as_mut()?;
            match s.usize_loads.pop_front() {
                Some(Some(v)) => {
                    s.fed_usize += 1;
                    Some(v)
                }
                _ => None,
            }
        })
    }

    pub(super) fn install(cfg: &ChaosConfig, stream: u64) {
        PLAN.with(|p| {
            *p.borrow_mut() = Some(Plan {
                rng: Xoshiro256StarStar::for_stream(cfg.seed, stream),
                cfg: *cfg,
                pending: VecDeque::new(),
                injected: 0,
                ops: 0,
            });
        });
    }

    pub(super) fn uninstall() -> u64 {
        PLAN.with(|p| {
            let mut plan = p.borrow_mut();
            match plan.take() {
                Some(mut plan) => {
                    flush_all(&mut plan);
                    plan.injected
                }
                None => 0,
            }
        })
    }

    pub(super) fn is_active() -> bool {
        PLAN.with(|p| p.borrow().is_some())
    }

    pub(super) fn faults_injected() -> u64 {
        PLAN.with(|p| p.borrow().as_ref().map_or(0, |plan| plan.injected))
    }

    pub(super) fn quiesce() {
        PLAN.with(|p| {
            if let Some(plan) = p.borrow_mut().as_mut() {
                flush_all(plan);
            }
        });
    }

    fn flush_all(plan: &mut Plan) {
        for pend in plan.pending.drain(..) {
            // SAFETY: module contract — cells outlive the window between
            // installs/quiesces.
            unsafe { pend.target.flush() };
        }
    }

    /// Age the buffer by one racy operation, flushing expired entries in
    /// FIFO order, and maybe inject a delay window, a one-shot stall,
    /// or a scripted panic.
    fn step(plan: &mut Plan) {
        plan.ops += 1;
        if plan.cfg.panic_after == Some(plan.ops) {
            plan.injected += 1;
            // Unwinding releases the RefCell borrow; the pool's panic
            // handler then uninstalls (and flushes) this plan.
            panic!("chaos: injected worker panic at racy op {}", plan.ops);
        }
        if plan.cfg.stall_after == Some(plan.ops) {
            plan.injected += 1;
            let spins = plan.cfg.stall_spins.max(1);
            crate::flight::record(
                crate::flight::kind::FAULT,
                0,
                crate::flight::kind::FAULT_STALL,
                u64::from(spins),
            );
            for i in 0..spins {
                // The probe is the stall's only early exit: a stalled
                // worker stays cooperative with cancellation.
                if crate::cancel::probe_fired() {
                    break;
                }
                if i % 64 == 63 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
        for pend in plan.pending.iter_mut() {
            pend.ttl = pend.ttl.saturating_sub(1);
        }
        while plan.pending.front().is_some_and(|p| p.ttl == 0) {
            let pend = plan.pending.pop_front().unwrap();
            // SAFETY: module contract.
            unsafe { pend.target.flush() };
        }
        if plan.cfg.delay_chance > 0.0 && plan.rng.chance(plan.cfg.delay_chance) {
            plan.injected += 1;
            let spins = 1 + plan.rng.next_u32() % plan.cfg.delay_spins.max(1);
            crate::flight::record(
                crate::flight::kind::FAULT,
                0,
                crate::flight::kind::FAULT_DELAY,
                u64::from(spins),
            );
            for i in 0..spins {
                if i % 32 == 31 {
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Drop pending stores to `addr`: they are being overwritten in the
    /// owner's program order, so no other thread may legally require the
    /// intermediate value.
    fn forget_addr(plan: &mut Plan, addr: usize) {
        plan.pending.retain(|p| p.target.addr() != addr);
    }

    fn maybe_defer(plan: &mut Plan, target: Target) -> bool {
        if plan.pending.len() < MAX_PENDING
            && plan.cfg.defer_chance > 0.0
            && plan.rng.chance(plan.cfg.defer_chance)
        {
            let ttl = 1 + plan.rng.next_u32() % plan.cfg.stale_window.max(1);
            plan.injected += 1;
            crate::flight::record(
                crate::flight::kind::FAULT,
                0,
                crate::flight::kind::FAULT_DEFER,
                u64::from(ttl),
            );
            forget_addr(plan, target.addr());
            plan.pending.push_back(Pending { target, ttl });
            true
        } else {
            forget_addr(plan, target.addr());
            false
        }
    }

    /// Hooks called from the racy-cell fast paths (relaxed-atomic backend
    /// only). Each returns quickly when no plan is installed.
    #[cfg_attr(feature = "volatile-racy", allow(dead_code))]
    pub(crate) mod hooks {
        use super::*;

        #[inline]
        pub(crate) fn load_u32(cell: &AtomicU32) -> Option<u32> {
            if let Some(v) = super::script_feed_u32() {
                return Some(v);
            }
            PLAN.with(|p| {
                let mut plan = p.borrow_mut();
                let plan = plan.as_mut()?;
                step(plan);
                let addr = cell as *const AtomicU32 as usize;
                // Store-to-load forwarding: the owner sees its own newest
                // deferred store (at most one per address survives).
                plan.pending
                    .iter()
                    .rev()
                    .find(|pend| pend.target.addr() == addr)
                    .map(|pend| match pend.target {
                        Target::U32(_, v) => v,
                        Target::U64(_, v) => v as u32,
                        Target::Usize(_, v) => v as u32,
                    })
            })
        }

        #[inline]
        pub(crate) fn store_u32(cell: &AtomicU32, v: u32) -> bool {
            PLAN.with(|p| {
                let mut plan = p.borrow_mut();
                let Some(plan) = plan.as_mut() else { return false };
                step(plan);
                maybe_defer(plan, Target::U32(cell, v))
            })
        }

        #[inline]
        pub(crate) fn load_u64(cell: &AtomicU64) -> Option<u64> {
            PLAN.with(|p| {
                let mut plan = p.borrow_mut();
                let plan = plan.as_mut()?;
                step(plan);
                let addr = cell as *const AtomicU64 as usize;
                plan.pending
                    .iter()
                    .rev()
                    .find(|pend| pend.target.addr() == addr)
                    .map(|pend| match pend.target {
                        Target::U32(_, v) => u64::from(v),
                        Target::U64(_, v) => v,
                        Target::Usize(_, v) => v as u64,
                    })
            })
        }

        #[inline]
        pub(crate) fn store_u64(cell: &AtomicU64, v: u64) -> bool {
            PLAN.with(|p| {
                let mut plan = p.borrow_mut();
                let Some(plan) = plan.as_mut() else { return false };
                step(plan);
                maybe_defer(plan, Target::U64(cell, v))
            })
        }

        #[inline]
        pub(crate) fn load_usize(cell: &AtomicUsize) -> Option<usize> {
            if let Some(v) = super::script_feed_usize() {
                return Some(v);
            }
            PLAN.with(|p| {
                let mut plan = p.borrow_mut();
                let plan = plan.as_mut()?;
                step(plan);
                let addr = cell as *const AtomicUsize as usize;
                plan.pending
                    .iter()
                    .rev()
                    .find(|pend| pend.target.addr() == addr)
                    .map(|pend| match pend.target {
                        Target::U32(_, v) => v as usize,
                        Target::U64(_, v) => v as usize,
                        Target::Usize(_, v) => v,
                    })
            })
        }

        #[inline]
        pub(crate) fn store_usize(cell: &AtomicUsize, v: usize) -> bool {
            PLAN.with(|p| {
                let mut plan = p.borrow_mut();
                let Some(plan) = plan.as_mut() else { return false };
                step(plan);
                maybe_defer(plan, Target::Usize(cell, v))
            })
        }
    }

    pub(super) fn skew_index(i: usize) -> usize {
        PLAN.with(|p| {
            let mut plan = p.borrow_mut();
            let Some(plan) = plan.as_mut() else { return i };
            if plan.cfg.skew_chance <= 0.0 || !plan.rng.chance(plan.cfg.skew_chance) {
                return i;
            }
            plan.injected += 1;
            let delta = 1 + plan.rng.below_usize(plan.cfg.skew_max.max(1));
            crate::flight::record(
                crate::flight::kind::FAULT,
                0,
                crate::flight::kind::FAULT_SKEW,
                delta as u64,
            );
            match plan.rng.next_u32() % 3 {
                0 => i.saturating_add(delta),
                1 => i.saturating_sub(delta),
                // Out-of-range probe: far beyond any queue capacity but
                // small enough that index arithmetic cannot wrap.
                _ => (usize::MAX / 4).saturating_add(i),
            }
        })
    }
}

#[cfg(feature = "chaos")]
pub(crate) use active::hooks;

/// Install a fault plan on the current thread. `stream` selects an
/// independent PRNG stream (pass the worker id). No-op without the
/// `chaos` feature.
#[inline]
pub fn install(cfg: &ChaosConfig, stream: u64) {
    #[cfg(feature = "chaos")]
    active::install(cfg, stream);
    #[cfg(not(feature = "chaos"))]
    {
        let _ = (cfg, stream);
    }
}

/// Flush any deferred stores and remove the current thread's plan.
/// Returns the number of faults the plan injected. No-op returning 0
/// without the `chaos` feature.
#[inline]
pub fn uninstall() -> u64 {
    #[cfg(feature = "chaos")]
    {
        active::uninstall()
    }
    #[cfg(not(feature = "chaos"))]
    {
        0
    }
}

/// Whether the current thread has an installed fault plan.
#[inline]
pub fn is_active() -> bool {
    #[cfg(feature = "chaos")]
    {
        active::is_active()
    }
    #[cfg(not(feature = "chaos"))]
    {
        false
    }
}

/// Faults injected so far by the current thread's plan.
#[inline]
pub fn faults_injected() -> u64 {
    #[cfg(feature = "chaos")]
    {
        active::faults_injected()
    }
    #[cfg(not(feature = "chaos"))]
    {
        0
    }
}

/// Flush the simulated store buffer, making every deferred store visible.
/// Called automatically at barrier arrivals and spin-lock boundaries; a
/// no-op without the `chaos` feature or an installed plan.
#[inline]
pub fn quiesce() {
    #[cfg(feature = "chaos")]
    active::quiesce();
}

/// Install a positional value-feeding [`ChaosScript`] on the current
/// thread (see its docs). Independent of any [`ChaosConfig`] plan; a
/// scripted feed takes precedence over plan-driven staleness for the
/// load it covers. No-op without the `chaos` feature.
#[inline]
pub fn install_script(script: &ChaosScript) {
    #[cfg(feature = "chaos")]
    active::install_script(script);
    #[cfg(not(feature = "chaos"))]
    {
        let _ = script;
    }
}

/// Remove the current thread's script, reporting what it fed. No-op
/// returning an empty report without the `chaos` feature.
#[inline]
pub fn uninstall_script() -> ScriptReport {
    #[cfg(feature = "chaos")]
    {
        active::uninstall_script()
    }
    #[cfg(not(feature = "chaos"))]
    {
        ScriptReport::default()
    }
}

/// Possibly perturb an index value read at a tagged adversarial site.
/// Identity without the `chaos` feature or an installed plan. Only call
/// this where the consumer validates the index before trusting it.
#[inline]
pub fn skew_index(i: usize) -> usize {
    #[cfg(feature = "chaos")]
    {
        active::skew_index(i)
    }
    #[cfg(not(feature = "chaos"))]
    {
        i
    }
}

#[cfg(all(test, feature = "chaos"))]
mod tests {
    use super::*;
    use crate::racy::{RacyU32, RacyUsize};

    fn with_plan(cfg: ChaosConfig, f: impl FnOnce()) -> u64 {
        install(&cfg, 0);
        f();
        uninstall()
    }

    #[test]
    fn inactive_thread_is_transparent() {
        assert!(!is_active());
        let c = RacyU32::new(1);
        c.store(2);
        assert_eq!(c.load(), 2);
        assert_eq!(skew_index(17), 17);
        assert_eq!(faults_injected(), 0);
    }

    /// The owner always sees its own stores (store-to-load forwarding),
    /// even while they sit in the simulated buffer.
    #[test]
    fn forwarding_preserves_program_order() {
        let cfg = ChaosConfig { defer_chance: 1.0, stale_window: 1000, ..Default::default() };
        let injected = with_plan(cfg, || {
            let c = RacyU32::new(0);
            let u = RacyUsize::new(0);
            for i in 1..100u32 {
                c.store(i);
                u.store(i as usize * 3);
                assert_eq!(c.load(), i, "owner must read its own newest store");
                assert_eq!(u.load(), i as usize * 3);
            }
        });
        assert!(injected > 0, "defer_chance=1.0 must inject");
    }

    /// The 64-bit membership-word cells get the same forwarding and
    /// quiesce treatment as the 32-bit cells.
    #[test]
    fn u64_cells_forward_and_flush() {
        use crate::racy::RacyU64;
        let c = RacyU64::new(0);
        install(&ChaosConfig { defer_chance: 1.0, stale_window: 1000, ..Default::default() }, 0);
        c.store(1 << 40);
        assert_eq!(c.load(), 1 << 40, "owner must forward its own deferred u64 store");
        // SAFETY: RacyU64 is repr(transparent) over one u64-sized word.
        let raw = unsafe { &*(&c as *const RacyU64 as *const std::sync::atomic::AtomicU64) };
        assert_eq!(raw.load(std::sync::atomic::Ordering::Relaxed), 0, "store must be deferred");
        quiesce();
        assert_eq!(raw.load(std::sync::atomic::Ordering::Relaxed), 1 << 40, "quiesce must flush");
        uninstall();
    }

    /// Deferred stores become visible after quiesce (the barrier hook).
    #[test]
    fn quiesce_flushes_deferred_stores() {
        let c = RacyU32::new(7);
        install(&ChaosConfig { defer_chance: 1.0, stale_window: 1000, ..Default::default() }, 0);
        c.store(99);
        // Bypass the plan: raw view of memory as another thread would
        // see it. The store is still buffered.
        // SAFETY: RacyU32 is repr(transparent) over one u32-sized word.
        let raw = unsafe { &*(&c as *const RacyU32 as *const std::sync::atomic::AtomicU32) };
        assert_eq!(raw.load(std::sync::atomic::Ordering::Relaxed), 7, "store must be deferred");
        quiesce();
        assert_eq!(raw.load(std::sync::atomic::Ordering::Relaxed), 99, "quiesce must flush");
        uninstall();
    }

    /// TTL expiry flushes without an explicit quiesce, in FIFO order.
    #[test]
    fn ttl_expiry_flushes_fifo() {
        let a = RacyU32::new(0);
        install(&ChaosConfig { defer_chance: 1.0, stale_window: 1, ..Default::default() }, 0);
        a.store(5);
        // SAFETY: RacyU32 is repr(transparent) over one u32-sized word.
        let raw = unsafe { &*(&a as *const RacyU32 as *const std::sync::atomic::AtomicU32) };
        // Each subsequent racy op ages the buffer by one; ttl is in
        // {1}, so the next op must flush it.
        let other = RacyU32::new(0);
        let _ = other.load();
        assert_eq!(raw.load(std::sync::atomic::Ordering::Relaxed), 5);
        uninstall();
    }

    /// A later store to the same cell supersedes the deferred one: the
    /// stale value can never overwrite the newer value.
    #[test]
    fn newer_store_supersedes_deferred() {
        let c = RacyU32::new(0);
        let cfg = ChaosConfig { defer_chance: 0.5, stale_window: 4, ..Default::default() };
        install(&cfg, 0);
        for i in 1..1000u32 {
            c.store(i);
        }
        uninstall();
        assert_eq!(c.load(), 999, "final value must be the program-order-last store");
    }

    #[test]
    fn skew_perturbs_and_counts() {
        let cfg = ChaosConfig::skew_only(42);
        install(&cfg, 0);
        let mut changed = 0;
        for _ in 0..200 {
            if skew_index(1000) != 1000 {
                changed += 1;
            }
        }
        let injected = uninstall();
        assert!(changed > 0, "skew_chance=0.5 must perturb some reads");
        assert_eq!(injected, changed, "every perturbation must be counted");
    }

    /// Scripted feeds hit loads positionally per class, stores and
    /// unscripted loads read real memory, and the report accounts for
    /// what was consumed.
    #[test]
    fn script_feeds_loads_positionally() {
        let c = RacyU32::new(10);
        let u = RacyUsize::new(20);
        install_script(&ChaosScript {
            usize_loads: vec![Some(77), None],
            u32_loads: vec![None, Some(55)],
        });
        assert_eq!(u.load(), 77, "1st usize load is fed");
        assert_eq!(c.load(), 10, "1st u32 load passes through");
        assert_eq!(c.load(), 55, "2nd u32 load is fed");
        c.store(11);
        assert_eq!(c.load(), 11, "exhausted script: real memory, stores landed");
        assert_eq!(u.load(), 20, "2nd usize entry is None: real memory");
        let report = uninstall_script();
        assert_eq!(report, ScriptReport { fed_usize: 1, fed_u32: 1, leftover: 0 });
    }

    /// A script takes precedence over an installed plan for the loads it
    /// covers, and uninstalling the script leaves the plan untouched.
    #[test]
    fn script_overrides_plan_for_covered_loads() {
        let cfg = ChaosConfig { defer_chance: 1.0, stale_window: 1000, ..Default::default() };
        install(&cfg, 0);
        let c = RacyU32::new(3);
        c.store(9); // deferred by the plan; forwarding would return 9
        install_script(&ChaosScript { u32_loads: vec![Some(42)], ..Default::default() });
        assert_eq!(c.load(), 42, "scripted feed wins over plan forwarding");
        assert_eq!(c.load(), 9, "after the script: plan forwarding again");
        let report = uninstall_script();
        assert_eq!(report.fed_u32, 1);
        uninstall();
        assert_eq!(c.load(), 9, "uninstall flushed the deferred store");
    }

    /// A bounded stall fires exactly once, at the configured op, and is
    /// counted as an injected fault.
    #[test]
    fn stall_fires_once_at_the_configured_op() {
        let cfg = ChaosConfig::stall(1, 3, 50);
        let injected = with_plan(cfg, || {
            let c = RacyU32::new(0);
            for i in 0..10u32 {
                c.store(i);
            }
        });
        assert_eq!(injected, 1, "exactly one stall");
    }

    /// A huge stall breaks promptly once the thread's cancellation
    /// probe fires — the cancellation-under-stall mechanism.
    #[test]
    fn probe_releases_a_stuck_stall() {
        use crate::cancel::{install_probe, uninstall_probe, CancelToken};
        use crate::clock::Clock;
        let token = CancelToken::new(&Clock::wall());
        token.cancel(); // pre-fired: the stall must exit on entry
        install_probe(token);
        let cfg = ChaosConfig::stall(1, 1, u32::MAX);
        let t0 = std::time::Instant::now();
        let injected = with_plan(cfg, || {
            let c = RacyU32::new(0);
            c.store(1);
        });
        assert_eq!(injected, 1);
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(5),
            "a fired probe must break the stall immediately"
        );
        assert!(uninstall_probe());
    }

    /// An unfired probe leaves a bounded stall to run its spin budget.
    #[test]
    fn unfired_probe_does_not_break_the_stall() {
        use crate::cancel::{install_probe, uninstall_probe, CancelToken};
        use crate::clock::Clock;
        install_probe(CancelToken::new(&Clock::wall()));
        let injected = with_plan(ChaosConfig::stall(1, 1, 100), || {
            RacyU32::new(0).store(1);
        });
        assert_eq!(injected, 1);
        assert!(uninstall_probe());
    }

    /// Panic injection fires deterministically at the configured op and
    /// unwinds cleanly through the hook.
    #[test]
    fn panic_at_fires_deterministically() {
        let result = std::panic::catch_unwind(|| {
            install(&ChaosConfig::panic_at(1, 2), 0);
            let c = RacyU32::new(0);
            c.store(1); // op 1
            c.store(2); // op 2: panics
        });
        let err = result.expect_err("op 2 must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected worker panic"), "{msg}");
        // The plan survives the unwind; clean it up for later tests.
        assert!(is_active());
        let _ = uninstall();
    }

    #[test]
    fn plans_are_seed_reproducible() {
        let cfg = ChaosConfig::aggressive(7);
        let run = || {
            install(&cfg, 3);
            let c = RacyU32::new(0);
            let mut trace = Vec::new();
            for i in 0..500u32 {
                c.store(i);
                trace.push(c.load());
                trace.push(skew_index(i as usize) as u32);
            }
            let injected = uninstall();
            (trace, injected)
        };
        assert_eq!(run(), run(), "same seed + stream must reproduce the same fault plan");
    }
}
