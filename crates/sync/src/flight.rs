//! Flight recorder: per-worker event ring buffers (`--features trace`).
//!
//! The optimistic dispatchers make scheduling decisions (segment fetches,
//! steals, aborts) thousands of times per level; understanding *where* a
//! traversal spends its time requires seeing those decisions on a
//! timeline, not just in aggregate counters. This module records them
//! into a fixed-capacity per-thread ring buffer that costs nothing when
//! the `trace` cargo feature is off and almost nothing when it is on.
//!
//! # Memory model: why plain stores are enough
//!
//! Each recorder is **thread-local and exclusively owned**: a worker
//! writes events only into its own ring, and the ring is read only by
//! [`uninstall`] *on the same thread*. There is no cross-thread access to
//! a live ring at all, so recording needs no atomics, no locks, and no
//! fences on the hot path — a plain store into owned memory. Cross-thread
//! publication happens only after the fact: the worker moves its finished
//! [`RingDump`] into a per-thread slot before the pool joins, and the
//! pool join (a lock/condvar handshake) provides the happens-before edge
//! for whoever aggregates the dumps. This is the same ownership
//! discipline as `ThreadStats` in `obfs-core`, applied to a time series.
//!
//! # Bounded memory
//!
//! The ring has a fixed capacity chosen at [`install`] time; when it is
//! full the oldest events are overwritten and counted in
//! [`RingDump::dropped`]. A traversal can therefore never allocate
//! unboundedly no matter how long it runs — the recorder keeps the most
//! recent window, which is what post-mortem debugging wants anyway.
//!
//! # Zero cost when off
//!
//! Without the `trace` cargo feature every function in this module is an
//! `#[inline]` no-op, mirroring the [`chaos`](crate::chaos) module: the
//! event types stay compiled (so higher layers keep a feature-independent
//! shape) but no thread-local exists and [`record`] compiles to nothing.

use std::time::Instant;

/// Event kind codes (the taxonomy is documented per constant; DESIGN.md
/// has the narrative version).
pub mod kind {
    /// A worker began consuming a BFS level (`a` = its own queue rear).
    pub const LEVEL_START: u16 = 1;
    /// A worker finished consuming a BFS level.
    pub const LEVEL_END: u16 = 2;
    /// A segment was fetched from a dispatcher (`a` = queue or edge
    /// cursor, `b` = segment length).
    pub const SEGMENT_FETCH: u16 = 3;
    /// A dispatcher fetch raced and was retried (`a` = queue/pool index).
    pub const FETCH_RETRY: u16 = 4;
    /// A steal succeeded (`a` = victim, `b` = stolen segment length).
    pub const STEAL_SUCCESS: u16 = 5;
    /// A steal failed (`a` = victim, `b` = outcome code, see
    /// [`steal_outcome`](self)).
    pub const STEAL_FAIL: u16 = 6;
    /// A segment walk aborted at a cleared (stale) slot (`a` = queue,
    /// `b` = slot index).
    pub const STALE_ABORT: u16 = 7;
    /// A worker arrived at the level barrier.
    pub const BARRIER_ENTER: u16 = 8;
    /// A worker was released from the level barrier (`a` = 1 if it was
    /// the leader that ran the serial section).
    pub const BARRIER_EXIT: u16 = 9;
    /// The chaos backend injected a fault (`a` = cause code, see the
    /// `FAULT_*` constants; `b` = cause-specific magnitude).
    pub const FAULT: u16 = 10;
    /// The watchdog degraded this level (leader-recorded).
    pub const DEGRADED: u16 = 11;
    /// A worker's BFS closure started (`a` = tid).
    pub const WORKER_BEGIN: u16 = 12;
    /// A worker's BFS closure finished (`a` = tid).
    pub const WORKER_END: u16 = 13;
    /// The hybrid driver switched traversal direction for the *next*
    /// level (leader-recorded; `level` = the level that will run in the
    /// new direction, `a` = new direction, `b` = old direction, both as
    /// [`DIR_TOP_DOWN`] / [`DIR_BOTTOM_UP`] codes).
    pub const DIR_SWITCH: u16 = 14;
    /// The run was aborted cooperatively (leader-recorded; `level` = the
    /// last level that ran, `a` = cause as [`CANCEL_EXPLICIT`] /
    /// [`CANCEL_DEADLINE`]).
    pub const CANCEL: u16 = 15;
    /// A batched multi-source run was seeded (leader-recorded at level
    /// 0; `a` = batch size k, `b` = distinct seed vertices pushed).
    pub const BATCH: u16 = 16;
    /// The driver will materialize the *next* level's frontier by
    /// parallel prefix-sum compaction instead of queue-segment dispatch
    /// (leader-recorded; `level` = the level that will run compacted,
    /// `a` = that frontier's vertex count, `b` = the scan-kernel backend
    /// code reported in `RunStats::kernel_backend`).
    pub const COMPACT: u16 = 17;
    /// A serve-engine query lifecycle transition (scheduler-recorded;
    /// `a` = query id, `b` = stage code in the low byte with the
    /// stage-specific payload in the high bits — see
    /// `obfs-telemetry::span` for the taxonomy and codec). Mirrored
    /// from the engine's always-on span log so per-query timelines
    /// correlate with worker traces.
    pub const SPAN: u16 = 18;

    /// `FAULT` cause: injected delay window (`b` = spin count).
    pub const FAULT_DELAY: u64 = 1;
    /// `FAULT` cause: store deferred into the simulated buffer (`b` = ttl).
    pub const FAULT_DEFER: u64 = 2;
    /// `FAULT` cause: skewed index read (`b` = delta applied).
    pub const FAULT_SKEW: u64 = 3;
    /// `FAULT` cause: injected worker stall (`b` = spin budget).
    pub const FAULT_STALL: u64 = 4;

    /// `CANCEL` cause: [`CancelToken::cancel`] was called.
    ///
    /// [`CancelToken::cancel`]: crate::cancel::CancelToken::cancel
    pub const CANCEL_EXPLICIT: u64 = 1;
    /// `CANCEL` cause: the token's deadline passed.
    pub const CANCEL_DEADLINE: u64 = 2;

    /// `STEAL_FAIL` outcome: victim's lock was held.
    pub const STEAL_LOCKED: u64 = 1;
    /// `STEAL_FAIL` outcome: victim had no work.
    pub const STEAL_IDLE: u64 = 2;
    /// `STEAL_FAIL` outcome: remaining segment below the steal minimum.
    pub const STEAL_TOO_SMALL: u64 = 3;
    /// `STEAL_FAIL` outcome: segment already consumed (stale snapshot).
    pub const STEAL_STALE: u64 = 4;
    /// `STEAL_FAIL` outcome: snapshot failed the sanity check.
    pub const STEAL_INVALID: u64 = 5;

    /// `DIR_SWITCH` payload: top-down direction.
    pub const DIR_TOP_DOWN: u64 = 0;
    /// `DIR_SWITCH` payload: bottom-up direction.
    pub const DIR_BOTTOM_UP: u64 = 1;

    /// Human-readable name of a kind code (used by the trace exporter).
    pub fn name(k: u16) -> &'static str {
        match k {
            LEVEL_START => "level-start",
            LEVEL_END => "level-end",
            SEGMENT_FETCH => "segment-fetch",
            FETCH_RETRY => "fetch-retry",
            STEAL_SUCCESS => "steal-success",
            STEAL_FAIL => "steal-fail",
            STALE_ABORT => "stale-abort",
            BARRIER_ENTER => "barrier-enter",
            BARRIER_EXIT => "barrier-exit",
            FAULT => "fault",
            DEGRADED => "degraded",
            WORKER_BEGIN => "worker-begin",
            WORKER_END => "worker-end",
            DIR_SWITCH => "direction-switch",
            CANCEL => "cancel",
            BATCH => "batch",
            COMPACT => "compact",
            SPAN => "span",
            _ => "unknown",
        }
    }
}

/// One recorded event. 32 bytes, `Copy`, written with a plain store into
/// the thread-owned ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Microseconds since the run epoch passed to [`install`] (shared by
    /// all workers of a run, so timelines line up across threads).
    pub ts_us: u64,
    /// Event kind ([`kind`]).
    pub kind: u16,
    /// BFS level the event belongs to (0 where not applicable).
    pub level: u32,
    /// Kind-specific payload (see the [`kind`] constants).
    pub a: u64,
    /// Kind-specific payload.
    pub b: u64,
}

/// A drained ring: the surviving events in chronological order plus the
/// count of older events the ring overwrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RingDump {
    /// Events, oldest first.
    pub events: Vec<FlightEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

#[cfg(feature = "trace")]
mod active {
    use super::{FlightEvent, RingDump};
    use std::cell::RefCell;
    use std::time::Instant;

    struct Recorder {
        epoch: Instant,
        buf: Vec<FlightEvent>,
        /// Next write position once the buffer reached capacity.
        head: usize,
        /// Whether the ring has wrapped at least once.
        wrapped: bool,
        dropped: u64,
        capacity: usize,
    }

    thread_local! {
        static REC: RefCell<Option<Recorder>> = const { RefCell::new(None) };
    }

    pub(super) fn install(capacity: usize, epoch: Instant) {
        let capacity = capacity.max(1);
        REC.with(|r| {
            *r.borrow_mut() = Some(Recorder {
                epoch,
                buf: Vec::with_capacity(capacity),
                head: 0,
                wrapped: false,
                dropped: 0,
                capacity,
            });
        });
    }

    pub(super) fn uninstall() -> Option<RingDump> {
        REC.with(|r| r.borrow_mut().take()).map(|rec| {
            let mut events = Vec::with_capacity(rec.buf.len());
            if rec.wrapped {
                events.extend_from_slice(&rec.buf[rec.head..]);
                events.extend_from_slice(&rec.buf[..rec.head]);
            } else {
                events.extend_from_slice(&rec.buf);
            }
            RingDump { events, dropped: rec.dropped }
        })
    }

    pub(super) fn is_active() -> bool {
        REC.with(|r| r.borrow().is_some())
    }

    #[inline]
    pub(super) fn record(kind: u16, level: u32, a: u64, b: u64) {
        REC.with(|r| {
            let mut rec = r.borrow_mut();
            let Some(rec) = rec.as_mut() else { return };
            let ev = FlightEvent {
                ts_us: rec.epoch.elapsed().as_micros() as u64,
                kind,
                level,
                a,
                b,
            };
            if rec.buf.len() < rec.capacity {
                rec.buf.push(ev);
            } else {
                // Plain store into thread-owned memory (see module docs).
                rec.buf[rec.head] = ev;
                rec.head = (rec.head + 1) % rec.capacity;
                rec.wrapped = true;
                rec.dropped += 1;
            }
        });
    }
}

/// Install a flight recorder on the current thread with room for
/// `capacity` events; `epoch` is the shared run start instant timestamps
/// are measured from. Replaces any previous recorder. No-op without the
/// `trace` feature.
#[inline]
pub fn install(capacity: usize, epoch: Instant) {
    #[cfg(feature = "trace")]
    active::install(capacity, epoch);
    #[cfg(not(feature = "trace"))]
    {
        let _ = (capacity, epoch);
    }
}

/// Remove the current thread's recorder and return its drained ring.
/// Returns `None` when no recorder was installed (always, without the
/// `trace` feature).
#[inline]
pub fn uninstall() -> Option<RingDump> {
    #[cfg(feature = "trace")]
    {
        active::uninstall()
    }
    #[cfg(not(feature = "trace"))]
    {
        None
    }
}

/// Whether the current thread has an installed recorder.
#[inline]
pub fn is_active() -> bool {
    #[cfg(feature = "trace")]
    {
        active::is_active()
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Record one event on the current thread's recorder, if any. Compiles
/// to nothing without the `trace` feature.
#[inline]
pub fn record(kind: u16, level: u32, a: u64, b: u64) {
    #[cfg(feature = "trace")]
    active::record(kind, level, a, b);
    #[cfg(not(feature = "trace"))]
    {
        let _ = (kind, level, a, b);
    }
}

#[cfg(all(test, feature = "trace"))]
mod tests {
    use super::*;

    #[test]
    fn inactive_thread_records_nothing() {
        assert!(!is_active());
        record(kind::SEGMENT_FETCH, 0, 1, 2);
        assert!(uninstall().is_none());
    }

    #[test]
    fn events_come_back_in_order() {
        install(64, Instant::now());
        assert!(is_active());
        for i in 0..10u64 {
            record(kind::SEGMENT_FETCH, 3, i, i * 2);
        }
        let dump = uninstall().expect("recorder was installed");
        assert_eq!(dump.events.len(), 10);
        assert_eq!(dump.dropped, 0);
        for (i, e) in dump.events.iter().enumerate() {
            assert_eq!(e.a, i as u64);
            assert_eq!(e.level, 3);
        }
        // Timestamps are monotone (non-decreasing at us resolution).
        assert!(dump.events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(!is_active(), "uninstall must remove the recorder");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        install(4, Instant::now());
        for i in 0..10u64 {
            record(kind::FETCH_RETRY, 0, i, 0);
        }
        let dump = uninstall().unwrap();
        assert_eq!(dump.events.len(), 4, "capacity bounds the ring");
        assert_eq!(dump.dropped, 6);
        let kept: Vec<u64> = dump.events.iter().map(|e| e.a).collect();
        assert_eq!(kept, vec![6, 7, 8, 9], "most recent events survive, in order");
    }

    #[test]
    fn reinstall_replaces_previous_ring() {
        install(8, Instant::now());
        record(kind::LEVEL_START, 0, 0, 0);
        install(8, Instant::now());
        record(kind::LEVEL_END, 1, 0, 0);
        let dump = uninstall().unwrap();
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.events[0].kind, kind::LEVEL_END);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        install(0, Instant::now());
        record(kind::LEVEL_START, 0, 0, 0);
        record(kind::LEVEL_END, 0, 0, 0);
        let dump = uninstall().unwrap();
        assert_eq!(dump.events.len(), 1);
        assert_eq!(dump.dropped, 1);
    }
}
