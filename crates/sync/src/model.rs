//! Bounded interleaving exploration over a virtualized shared memory.
//!
//! The paper's safety argument is that the deliberately racy plain
//! loads/stores in the optimistic BFS protocols are *benign*: invalid
//! segments are rejected by sanity checks, overlap only causes bounded
//! idempotent duplicate work, and every level still terminates at the
//! barrier. The `chaos` backend probes that argument statistically; this
//! module checks it *exhaustively*, loom-style, for small bounded
//! instances of each protocol core.
//!
//! # Memory model
//!
//! [`VirtualMemory`] models the same machine the chaos backend simulates:
//! a flat array of `u32` words plus one FIFO **store buffer per thread**
//! (TSO). A store goes into the owner's buffer; the owner observes its
//! own program order via store-to-load forwarding, while other threads
//! keep reading the old committed value until the buffered store is
//! *flushed*. Flushes are scheduler choices ([`Choice::Flush`]) just like
//! thread steps, so the explorer enumerates every legal commit delay —
//! the nondeterminism `chaos`'s TTL'd deferred stores sample randomly.
//! Buffers drain in FIFO order (no reordering of same-thread stores),
//! matching both x86-TSO and the chaos backend's `VecDeque`. With
//! `tso = false` stores commit immediately and the explorer degenerates
//! to sequential consistency (useful for litmus-test sanity checks).
//!
//! # Model programs
//!
//! A protocol core is expressed as a [`ModelThread`]: a hand-written
//! state machine whose [`step`](ModelThread::step) performs **at most one
//! shared-memory access** and whose [`footprint`](ModelThread::footprint)
//! declares that access *before* it runs. One-access-per-step is what
//! makes the interleaving enumeration sound, and the declared footprints
//! drive the dependence relation used for pruning.
//!
//! # Exploration
//!
//! [`Explorer::explore`] walks the schedule tree depth-first, cloning the
//! [`System`] at each branch. Two choices are *dependent* iff their
//! footprints conflict (same address, at least one write); independent
//! adjacent choices commute, so schedules that differ only by swapping
//! them are equivalent. Note that a thread's step and its own flush
//! commute on the whole system state whenever their addresses differ:
//! store-to-load forwarding makes the owner's loads insensitive to its
//! own flush timing, and a buffer `push_back` commutes with its
//! `pop_front` — so same-thread pairs need no special-casing beyond the
//! address conflict. The classic
//! **sleep-set** construction (Godefroid) prunes re-exploration of such
//! equivalent schedules: after fully exploring a choice `c`, `c` is put
//! to sleep for the remaining siblings and only woken by a dependent
//! move. Sleep sets preserve at least one representative per
//! Mazurkiewicz trace, so every reachable terminal state — and every
//! per-step invariant violation — is still found.
//!
//! Schedules are cut off at [`Explorer::max_steps`] (counted as
//! `truncated`, which a well-bounded model keeps at zero, proving
//! termination within the bound) and the whole search stops at
//! [`Explorer::max_schedules`].
//!
//! A failed run yields a [`Counterexample`]: the exact [`Choice`]
//! schedule, replayable with [`replay`] — deterministically, since the
//! model has no clocks, no RNG, and no hash-order dependence.

use std::collections::VecDeque;
use std::fmt;

/// The shared-memory access a thread's *next* step will perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Footprint {
    /// The step loads from this word address.
    Read(usize),
    /// The step stores to this word address.
    Write(usize),
    /// The step touches no shared memory (local compute / already done).
    Internal,
}

/// Do two footprints conflict (same address, at least one write)?
#[inline]
pub fn conflicts(a: Footprint, b: Footprint) -> bool {
    match (a, b) {
        (Footprint::Write(x), Footprint::Write(y))
        | (Footprint::Write(x), Footprint::Read(y))
        | (Footprint::Read(x), Footprint::Write(y)) => x == y,
        _ => false,
    }
}

/// One shared-memory access, as observed by the access trace (used to
/// lower model schedules onto the real dispatchers via chaos scripts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemOp {
    /// A load and the value it observed.
    Load {
        /// Word address read.
        addr: usize,
        /// Value the load observed (after forwarding).
        value: u32,
    },
    /// A store and the value it wrote (possibly still buffered).
    Store {
        /// Word address written.
        addr: usize,
        /// Value written.
        value: u32,
    },
}

/// Flat word-addressed shared memory with per-thread TSO store buffers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualMemory {
    committed: Vec<u32>,
    buffers: Vec<VecDeque<(usize, u32)>>,
    tso: bool,
    trace_tid: Option<usize>,
    trace: Vec<MemOp>,
}

impl VirtualMemory {
    /// A zeroed memory of `words` words shared by `threads` threads.
    /// With `tso` false, stores commit immediately (sequential
    /// consistency; no flush choices are ever enabled).
    pub fn new(threads: usize, words: usize, tso: bool) -> Self {
        Self {
            committed: vec![0; words],
            buffers: vec![VecDeque::new(); threads],
            tso,
            trace_tid: None,
            trace: Vec::new(),
        }
    }

    /// Number of words.
    pub fn words(&self) -> usize {
        self.committed.len()
    }

    /// Record every access `tid` performs into the trace (for schedule
    /// lowering). Call before exploring/replaying.
    pub fn trace_thread(&mut self, tid: usize) {
        self.trace_tid = Some(tid);
        self.trace.clear();
    }

    /// The accesses recorded for the traced thread, in program order.
    pub fn trace(&self) -> &[MemOp] {
        &self.trace
    }

    /// Load as `tid`, with store-to-load forwarding from its own buffer.
    pub fn load(&mut self, tid: usize, addr: usize) -> u32 {
        let v = self.buffers[tid]
            .iter()
            .rev()
            .find(|(a, _)| *a == addr)
            .map(|&(_, v)| v)
            .unwrap_or(self.committed[addr]);
        if self.trace_tid == Some(tid) {
            self.trace.push(MemOp::Load { addr, value: v });
        }
        v
    }

    /// Store as `tid`: buffered under TSO, immediate otherwise.
    pub fn store(&mut self, tid: usize, addr: usize, value: u32) {
        assert!(addr < self.committed.len(), "model store out of bounds");
        if self.trace_tid == Some(tid) {
            self.trace.push(MemOp::Store { addr, value });
        }
        if self.tso {
            self.buffers[tid].push_back((addr, value));
        } else {
            self.committed[addr] = value;
        }
    }

    /// Commit `tid`'s oldest buffered store. Returns false if empty.
    pub fn flush_one(&mut self, tid: usize) -> bool {
        match self.buffers[tid].pop_front() {
            Some((addr, v)) => {
                self.committed[addr] = v;
                true
            }
            None => false,
        }
    }

    /// Drain every buffer (the level-barrier quiesce).
    pub fn flush_all(&mut self) {
        for tid in 0..self.buffers.len() {
            while self.flush_one(tid) {}
        }
    }

    /// Entries still sitting in `tid`'s store buffer.
    pub fn buffered(&self, tid: usize) -> usize {
        self.buffers[tid].len()
    }

    /// Address of `tid`'s oldest buffered store, if any (the word the
    /// next [`Choice::Flush`] would write).
    pub fn flush_target(&self, tid: usize) -> Option<usize> {
        self.buffers[tid].front().map(|&(a, _)| a)
    }

    /// The committed (globally visible) value of a word, bypassing all
    /// buffers. For invariant checks and test setup.
    pub fn committed(&self, addr: usize) -> u32 {
        self.committed[addr]
    }

    /// Set a word's committed value directly (initial-state setup).
    pub fn init(&mut self, addr: usize, value: u32) {
        self.committed[addr] = value;
    }
}

/// A protocol core expressed as one sequential state machine per thread.
///
/// Contract: `step` performs **at most one** [`VirtualMemory`] access,
/// and `footprint` must describe exactly that access (it is consulted
/// before `step` runs, on the same state). `step` returns `Err` to
/// signal an invariant violation observed mid-execution; the explorer
/// turns it into a [`Counterexample`].
pub trait ModelThread: Clone {
    /// Has this thread run to completion?
    fn done(&self) -> bool;
    /// The access the next `step` will perform.
    fn footprint(&self, mem: &VirtualMemory) -> Footprint;
    /// Execute one step as thread `tid`.
    fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String>;
}

/// A snapshot of the whole modeled machine: memory plus thread states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct System<T> {
    /// Shared memory (committed words + store buffers).
    pub mem: VirtualMemory,
    /// One state machine per thread; index is the thread id.
    pub threads: Vec<T>,
}

impl<T: ModelThread> System<T> {
    /// Build a system; `mem` must have one buffer per thread.
    pub fn new(mem: VirtualMemory, threads: Vec<T>) -> Self {
        assert_eq!(mem.buffers.len(), threads.len());
        Self { mem, threads }
    }

    fn enabled(&self) -> Vec<Choice> {
        let mut out = Vec::with_capacity(self.threads.len() * 2);
        for (tid, t) in self.threads.iter().enumerate() {
            if !t.done() {
                out.push(Choice::Step(tid as u8));
            }
            if self.mem.buffered(tid) > 0 {
                out.push(Choice::Flush(tid as u8));
            }
        }
        out
    }

    fn footprint_of(&self, c: Choice) -> Footprint {
        match c {
            Choice::Step(t) => self.threads[t as usize].footprint(&self.mem),
            Choice::Flush(t) => match self.mem.flush_target(t as usize) {
                Some(addr) => Footprint::Write(addr),
                None => Footprint::Internal,
            },
        }
    }

    fn apply(&mut self, c: Choice) -> Result<(), String> {
        match c {
            Choice::Step(t) => {
                let mut th = self.threads[t as usize].clone();
                let r = th.step(t as usize, &mut self.mem);
                self.threads[t as usize] = th;
                r
            }
            Choice::Flush(t) => {
                self.mem.flush_one(t as usize);
                Ok(())
            }
        }
    }
}

/// One scheduler decision: run a thread for one step, or commit its
/// oldest buffered store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Choice {
    /// Execute one step of thread `.0`.
    Step(u8),
    /// Flush the oldest store-buffer entry of thread `.0`.
    Flush(u8),
}

impl Choice {
    /// The thread this choice belongs to.
    pub fn tid(&self) -> usize {
        match *self {
            Choice::Step(t) | Choice::Flush(t) => t as usize,
        }
    }
}

impl fmt::Display for Choice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Choice::Step(t) => write!(f, "t{t}"),
            Choice::Flush(t) => write!(f, "F{t}"),
        }
    }
}

/// A failing schedule: replaying `schedule` from the same initial
/// [`System`] deterministically reproduces `failure`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The scheduler decisions, in order, up to and including the
    /// violating step (or the full schedule for a final-check failure).
    pub schedule: Vec<Choice>,
    /// Human-readable description of the violated invariant.
    pub failure: String,
}

impl Counterexample {
    /// Render the schedule as a compact space-separated string
    /// (`t0 t1 F0 …`).
    pub fn render_schedule(&self) -> String {
        let parts: Vec<String> = self.schedule.iter().map(|c| c.to_string()).collect();
        parts.join(" ")
    }
}

/// What a bounded exploration found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Complete executions explored (every thread done, buffers empty).
    pub schedules: u64,
    /// Executions cut off by [`Explorer::max_steps`] before completing.
    pub truncated: u64,
    /// Branches skipped by sleep-set pruning.
    pub pruned: u64,
    /// First invariant violation found, if any.
    pub counterexample: Option<Counterexample>,
    /// True iff the bounded space was fully explored (no schedule-budget
    /// stop, no early counterexample stop).
    pub complete: bool,
}

/// Bounded DFS explorer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Explorer {
    /// Maximum schedule length before an execution is truncated.
    pub max_steps: usize,
    /// Stop after this many executions (complete + truncated).
    pub max_schedules: u64,
}

impl Default for Explorer {
    fn default() -> Self {
        Self { max_steps: 200, max_schedules: 200_000 }
    }
}

struct Search<'a, T, F> {
    cfg: Explorer,
    check_final: &'a F,
    out: Outcome,
    path: Vec<Choice>,
    _marker: std::marker::PhantomData<T>,
}

impl<T: ModelThread, F: Fn(&System<T>) -> Result<(), String>> Search<'_, T, F> {
    /// Returns true when the whole search must stop (counterexample found
    /// or schedule budget exhausted).
    fn dfs(&mut self, sys: &System<T>, sleep: &[Choice]) -> bool {
        if self.out.schedules + self.out.truncated >= self.cfg.max_schedules {
            self.out.complete = false;
            return true;
        }
        let enabled = sys.enabled();
        if enabled.is_empty() {
            self.out.schedules += 1;
            if let Err(failure) = (self.check_final)(sys) {
                self.out.counterexample =
                    Some(Counterexample { schedule: self.path.clone(), failure });
                self.out.complete = false;
                return true;
            }
            return false;
        }
        if self.path.len() >= self.cfg.max_steps {
            self.out.truncated += 1;
            return false;
        }
        // Footprints of every enabled choice, evaluated in this state —
        // used both for the dependence filter and for waking sleepers.
        let fps: Vec<Footprint> = enabled.iter().map(|&c| sys.footprint_of(c)).collect();
        let mut sleep_here: Vec<Choice> =
            sleep.iter().copied().filter(|c| enabled.contains(c)).collect();
        for (i, &c) in enabled.iter().enumerate() {
            if sleep_here.contains(&c) {
                self.out.pruned += 1;
                continue;
            }
            let mut next = sys.clone();
            self.path.push(c);
            let stepped = next.apply(c);
            if let Err(failure) = stepped {
                self.out.counterexample =
                    Some(Counterexample { schedule: self.path.clone(), failure });
                self.out.complete = false;
                return true;
            }
            // A sleeping choice stays asleep across `c` unless it is
            // dependent with `c` (conflicting access).
            let child_sleep: Vec<Choice> = sleep_here
                .iter()
                .copied()
                .filter(|&d| {
                    let fd = enabled
                        .iter()
                        .position(|&e| e == d)
                        .map(|j| fps[j])
                        .unwrap_or(Footprint::Internal);
                    !conflicts(fps[i], fd)
                })
                .collect();
            let stop = self.dfs(&next, &child_sleep);
            if stop {
                return true;
            }
            self.path.pop();
            sleep_here.push(c);
        }
        false
    }
}

impl Explorer {
    /// Explore every schedule of `sys` up to the bounds. `check_final`
    /// runs on each completed execution (all threads done, all buffers
    /// drained); per-step violations come from [`ModelThread::step`].
    pub fn explore<T, F>(&self, sys: &System<T>, check_final: F) -> Outcome
    where
        T: ModelThread,
        F: Fn(&System<T>) -> Result<(), String>,
    {
        let mut search = Search {
            cfg: *self,
            check_final: &check_final,
            out: Outcome {
                schedules: 0,
                truncated: 0,
                pruned: 0,
                counterexample: None,
                complete: true,
            },
            path: Vec::new(),
            _marker: std::marker::PhantomData,
        };
        search.dfs(sys, &[]);
        search.out
    }
}

/// Replay a schedule from an initial system. Applies choices in order;
/// stops at the first `Err` from a step. Returns the final system state
/// and the step result. Trailing unflushed buffers are left as-is so
/// callers can inspect the exact post-schedule state.
pub fn replay<T: ModelThread>(
    sys: &System<T>,
    schedule: &[Choice],
) -> (System<T>, Result<(), String>) {
    let mut cur = sys.clone();
    for &c in schedule {
        if let Err(e) = cur.apply(c) {
            return (cur, Err(e));
        }
    }
    (cur, Ok(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic store-buffering litmus: T0 does `x = 1; r = y`,
    /// T1 does `y = 1; r = x`. Both observing 0 is reachable under TSO
    /// and unreachable under SC.
    #[derive(Clone, Debug, PartialEq)]
    struct Sb {
        me: usize,    // address this thread stores
        other: usize, // address this thread loads
        pc: u8,
        reg: u32,
    }

    impl ModelThread for Sb {
        fn done(&self) -> bool {
            self.pc >= 2
        }

        fn footprint(&self, _mem: &VirtualMemory) -> Footprint {
            match self.pc {
                0 => Footprint::Write(self.me),
                1 => Footprint::Read(self.other),
                _ => Footprint::Internal,
            }
        }

        fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String> {
            match self.pc {
                0 => mem.store(tid, self.me, 1),
                1 => self.reg = mem.load(tid, self.other),
                _ => {}
            }
            self.pc += 1;
            Ok(())
        }
    }

    fn sb_system(tso: bool) -> System<Sb> {
        let mem = VirtualMemory::new(2, 2, tso);
        System::new(
            mem,
            vec![Sb { me: 0, other: 1, pc: 0, reg: 0 }, Sb { me: 1, other: 0, pc: 0, reg: 0 }],
        )
    }

    fn both_zero_is_a_bug(sys: &System<Sb>) -> Result<(), String> {
        if sys.threads[0].reg == 0 && sys.threads[1].reg == 0 {
            return Err("both threads read 0 (store-buffer reordering)".into());
        }
        Ok(())
    }

    #[test]
    fn tso_finds_store_buffer_reordering() {
        let out = Explorer::default().explore(&sb_system(true), both_zero_is_a_bug);
        let cx = out.counterexample.expect("TSO must reach the r0==r1==0 outcome");
        assert!(cx.failure.contains("store-buffer"));
        // The counterexample must replay to the same failure.
        let (end, r) = replay(&sb_system(true), &cx.schedule);
        assert!(r.is_ok(), "final-check violations surface after the full schedule");
        let mut end = end;
        end.mem.flush_all();
        assert_eq!(both_zero_is_a_bug(&end), Err(cx.failure.clone()));
    }

    #[test]
    fn sc_proves_reordering_impossible() {
        let out = Explorer::default().explore(&sb_system(false), both_zero_is_a_bug);
        assert!(out.counterexample.is_none(), "SC must not reach r0==r1==0");
        assert!(out.complete, "the SC litmus space must be exhaustible");
        assert_eq!(out.truncated, 0);
        assert!(out.schedules > 0);
    }

    #[test]
    fn exploration_is_deterministic() {
        let a = Explorer::default().explore(&sb_system(true), both_zero_is_a_bug);
        let b = Explorer::default().explore(&sb_system(true), both_zero_is_a_bug);
        assert_eq!(a, b, "same model must explore identically every run");
    }

    #[test]
    fn sleep_sets_prune_independent_interleavings() {
        // Two threads writing disjoint addresses: everything commutes,
        // so pruning must collapse most of the tree.
        #[derive(Clone)]
        struct W(u8, usize);
        impl ModelThread for W {
            fn done(&self) -> bool {
                self.0 >= 2
            }
            fn footprint(&self, _m: &VirtualMemory) -> Footprint {
                Footprint::Write(self.1)
            }
            fn step(&mut self, tid: usize, mem: &mut VirtualMemory) -> Result<(), String> {
                mem.store(tid, self.1, u32::from(self.0) + 1);
                self.0 += 1;
                Ok(())
            }
        }
        let sys = System::new(VirtualMemory::new(2, 2, false), vec![W(0, 0), W(0, 1)]);
        let out = Explorer::default().explore(&sys, |_| Ok(()));
        assert!(out.complete);
        assert!(out.pruned > 0, "disjoint writers must trigger sleep-set pruning");
        assert_eq!(out.schedules, 1, "all interleavings are equivalent; one survives");
    }

    #[test]
    fn forwarding_and_flush_order() {
        let mut mem = VirtualMemory::new(1, 1, true);
        mem.store(0, 0, 7);
        mem.store(0, 0, 9);
        assert_eq!(mem.load(0, 0), 9, "owner forwards its newest store");
        assert_eq!(mem.committed(0), 0, "nothing committed yet");
        assert!(mem.flush_one(0));
        assert_eq!(mem.committed(0), 7, "FIFO: oldest store commits first");
        assert!(mem.flush_one(0));
        assert_eq!(mem.committed(0), 9);
        assert!(!mem.flush_one(0));
    }

    #[test]
    fn trace_records_the_victim_thread_only() {
        let mut sys = sb_system(true);
        sys.mem.trace_thread(1);
        let schedule =
            [Choice::Step(0), Choice::Step(1), Choice::Step(1), Choice::Step(0), Choice::Flush(0)];
        let (end, r) = replay(&sys, &schedule);
        assert!(r.is_ok());
        assert_eq!(
            end.mem.trace(),
            &[MemOp::Store { addr: 1, value: 1 }, MemOp::Load { addr: 0, value: 0 }],
            "trace must hold exactly the victim's accesses in program order"
        );
    }
}
