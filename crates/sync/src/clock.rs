//! Injectable time source for deadlines (watchdog + cancellation).
//!
//! Both the per-level watchdog and the per-query [`CancelToken`]
//! deadline need "has instant D passed?" checks on the polling path.
//! Reading the wall clock there makes deadline behaviour untestable:
//! a test either sleeps (slow, flaky) or cannot reach the deadline
//! branch at all. [`Clock`] abstracts the source: the default
//! [`Clock::wall`] reads monotonic host time, while [`Clock::manual`]
//! hands the test a [`ManualClock`] that advances time explicitly, so
//! deadline tests replay deterministically with zero sleeping.
//!
//! Time is a `u64` nanosecond count from an arbitrary per-clock epoch
//! (the creation instant for wall clocks, 0 for manual ones). Absolute
//! deadlines are plain tick values, comparable with `>=` — no `Instant`
//! arithmetic on the polling path, and the same representation for both
//! variants.
//!
//! The manual variant stores its ticks in an atomic so a test thread
//! can advance time while workers poll; this is control-plane state
//! (like the watchdog abort flag), not part of the racy data plane.
//!
//! [`CancelToken`]: crate::cancel::CancelToken

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
enum Source {
    /// Monotonic host time relative to the creation instant.
    Wall(Instant),
    /// Test-controlled ticks, advanced only by a [`ManualClock`].
    Manual(Arc<AtomicU64>),
}

/// A cloneable time source; clones share the same epoch (and, for
/// manual clocks, the same tick cell).
#[derive(Clone, Debug)]
pub struct Clock(Source);

impl Clock {
    /// A monotonic wall clock; `now_ns` is the time since creation.
    pub fn wall() -> Self {
        Clock(Source::Wall(Instant::now()))
    }

    /// A frozen clock starting at 0, plus the handle that advances it.
    pub fn manual() -> (Self, ManualClock) {
        let ticks = Arc::new(AtomicU64::new(0));
        (Clock(Source::Manual(Arc::clone(&ticks))), ManualClock { ticks })
    }

    /// Nanoseconds since this clock's epoch.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match &self.0 {
            Source::Wall(epoch) => epoch.elapsed().as_nanos() as u64,
            Source::Manual(ticks) => ticks.load(Relaxed),
        }
    }

    /// The absolute tick value `d` from now (saturating).
    #[inline]
    pub fn deadline_after(&self, d: Duration) -> u64 {
        self.now_ns().saturating_add(d.as_nanos().min(u128::from(u64::MAX)) as u64)
    }

    /// Whether this is a test-controlled manual clock.
    pub fn is_manual(&self) -> bool {
        matches!(self.0, Source::Manual(_))
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

/// The advancing end of a [`Clock::manual`] pair. Holding this is the
/// only way time moves on that clock.
#[derive(Clone, Debug)]
pub struct ManualClock {
    ticks: Arc<AtomicU64>,
}

impl ManualClock {
    /// Move time forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.ticks.fetch_add(d.as_nanos().min(u128::from(u64::MAX)) as u64, Relaxed);
    }

    /// Jump to an absolute tick value (must not move backwards in
    /// sensible tests, but nothing enforces it).
    pub fn set_ns(&self, ns: u64) {
        self.ticks.store(ns, Relaxed);
    }

    /// Current tick value, as the paired clock sees it.
    pub fn now_ns(&self) -> u64 {
        self.ticks.load(Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_moves() {
        let c = Clock::wall();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
        assert!(!c.is_manual());
    }

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let (c, m) = Clock::manual();
        assert!(c.is_manual());
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0, "frozen until advanced");
        m.advance(Duration::from_millis(5));
        assert_eq!(c.now_ns(), 5_000_000);
        m.set_ns(42);
        assert_eq!(c.now_ns(), 42);
        assert_eq!(m.now_ns(), 42);
    }

    #[test]
    fn clones_share_the_tick_cell() {
        let (c, m) = Clock::manual();
        let c2 = c.clone();
        m.advance(Duration::from_nanos(7));
        assert_eq!(c.now_ns(), 7);
        assert_eq!(c2.now_ns(), 7);
    }

    #[test]
    fn deadline_after_saturates() {
        let (c, m) = Clock::manual();
        m.set_ns(u64::MAX - 10);
        assert_eq!(c.deadline_after(Duration::from_secs(1)), u64::MAX);
        m.set_ns(100);
        assert_eq!(c.deadline_after(Duration::from_nanos(50)), 150);
    }
}
