//! A reusable sense-reversing spin barrier for level-synchronous BFS.
//!
//! Parallel BFS is level-synchronized: all workers must finish level `d`
//! before any worker starts level `d+1` (paper §II). `std::sync::Barrier`
//! would work but parks threads through a mutex/condvar; BFS levels on
//! large graphs arrive every few hundred microseconds, so a spin barrier
//! with bounded spinning (then yielding, since this environment
//! oversubscribes cores) is the appropriate substrate.
//!
//! The barrier also carries a serial-section hook: exactly one thread (the
//! last to arrive) runs a closure before the others are released — this is
//! where the BFS swaps `Qin`/`Qout` between levels.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Message carried by the panic a poisoned barrier raises in waiters.
pub const POISON_MSG: &str = "SpinBarrier poisoned: a participant panicked";

/// Reusable sense-reversing barrier for a fixed set of `n` participants.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    /// Barrier for `parties >= 1` threads.
    pub fn new(parties: usize) -> Self {
        assert!(parties >= 1, "a barrier needs at least one participant");
        Self {
            parties,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Poison the barrier: every current and future waiter panics with
    /// [`POISON_MSG`] instead of spinning forever on a participant that
    /// will never arrive. Used by the worker pool when a job panics; the
    /// barrier is unusable afterwards.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether [`SpinBarrier::poison`] has been called.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Wait for all parties. Returns `true` on exactly one thread per
    /// round (the last arriver), mirroring
    /// `std::sync::Barrier::wait().is_leader()`.
    pub fn wait(&self) -> bool {
        self.wait_then(|| {})
    }

    /// Wait for all parties; the last arriver runs `serial` before
    /// releasing the rest. Returns `true` on that thread only.
    ///
    /// The release store on `sense` publishes all memory written by every
    /// participant before the barrier (and by `serial`) to every
    /// participant after it — this is the synchronization point that makes
    /// the intra-level benign races safe across levels.
    ///
    /// # Panics
    ///
    /// Panics with [`POISON_MSG`] if the barrier is (or becomes) poisoned,
    /// so that a panicking participant cannot strand its peers here.
    pub fn wait_then(&self, serial: impl FnOnce()) -> bool {
        // Fault injection: a simulated store buffer must drain before the
        // barrier publishes this thread's writes (no-op without the
        // `chaos` feature or an installed plan).
        crate::chaos::quiesce();
        if self.is_poisoned() {
            panic!("{POISON_MSG}");
        }
        crate::flight::record(crate::flight::kind::BARRIER_ENTER, 0, 0, 0);
        // Histogram the whole barrier episode (for the leader this
        // includes the serial section; see `metrics` module docs).
        let wait_timer = crate::metrics::timer();
        let my_sense = !self.sense.load(Ordering::Relaxed);
        // AcqRel so that arrivals form a total order and the leader
        // observes every pre-barrier write.
        let pos = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if pos == self.parties {
            serial();
            // Publish the leader's serial-section racy stores too.
            crate::chaos::quiesce();
            self.arrived.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            crate::flight::record(crate::flight::kind::BARRIER_EXIT, 0, 1, 0);
            crate::metrics::barrier_wait(wait_timer);
            true
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                if self.is_poisoned() {
                    panic!("{POISON_MSG}");
                }
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                    spins = 0;
                }
            }
            crate::flight::record(crate::flight::kind::BARRIER_EXIT, 0, 0, 0);
            crate::metrics::barrier_wait(wait_timer);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_party_is_always_leader() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait());
        }
    }

    #[test]
    fn rounds_are_separated() {
        // Each thread increments a per-round counter; after the barrier the
        // counter must equal the party count — for many consecutive rounds.
        const P: usize = 4;
        const ROUNDS: usize = 200;
        let barrier = Arc::new(SpinBarrier::new(P));
        let counters: Arc<Vec<AtomicU64>> =
            Arc::new((0..ROUNDS).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..P)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counters = Arc::clone(&counters);
                std::thread::spawn(move || {
                    for r in 0..ROUNDS {
                        counters[r].fetch_add(1, Ordering::Relaxed);
                        barrier.wait();
                        assert_eq!(
                            counters[r].load(Ordering::Relaxed),
                            P as u64,
                            "round {r} not fully synchronized"
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn exactly_one_leader_per_round() {
        const P: usize = 4;
        const ROUNDS: usize = 100;
        let barrier = Arc::new(SpinBarrier::new(P));
        let leaders = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..P)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let leaders = Arc::clone(&leaders);
                std::thread::spawn(move || {
                    for _ in 0..ROUNDS {
                        if barrier.wait() {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::Relaxed), ROUNDS as u64);
    }

    #[test]
    fn serial_section_runs_once_between_rounds() {
        const P: usize = 3;
        const ROUNDS: usize = 50;
        let barrier = Arc::new(SpinBarrier::new(P));
        let serial_runs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..P)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let serial_runs = Arc::clone(&serial_runs);
                std::thread::spawn(move || {
                    for r in 0..ROUNDS {
                        barrier.wait_then(|| {
                            serial_runs.fetch_add(1, Ordering::Relaxed);
                        });
                        // Every thread must observe the serial effect of
                        // the round it just completed.
                        assert!(serial_runs.load(Ordering::Relaxed) >= (r + 1) as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(serial_runs.load(Ordering::Relaxed), ROUNDS as u64);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_parties_panics() {
        let _ = SpinBarrier::new(0);
    }

    /// A poisoned barrier releases already-spinning waiters (by panic)
    /// instead of stranding them — the deadlock the worker pool used to
    /// exhibit when a job panicked.
    #[test]
    fn poison_releases_spinning_waiters() {
        let barrier = Arc::new(SpinBarrier::new(2));
        let waiter = {
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || b.wait())
        };
        // Give the waiter time to start spinning, then poison instead of
        // arriving (simulating a peer that panicked before the barrier).
        std::thread::sleep(std::time::Duration::from_millis(20));
        barrier.poison();
        let err = waiter.join().expect_err("waiter must panic out of a poisoned barrier");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("poisoned"), "unexpected panic payload: {msg:?}");
        assert!(barrier.is_poisoned());
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn wait_on_poisoned_barrier_panics_immediately() {
        let b = SpinBarrier::new(1);
        b.poison();
        b.wait();
    }
}
