//! Per-worker latency histograms (`BfsOptions::collect_histograms`).
//!
//! Aggregate counters say *how many* segment fetches raced; they do not
//! say how long a fetch took while it raced, or how the barrier wait is
//! distributed across workers. This module gives each worker a small set
//! of [`LogHistogram`]s recording exactly that: segment-fetch latency,
//! steal-attempt latency, sanity-check retries per fetch, and barrier
//! wait time.
//!
//! # Memory model: the flight-ring argument again
//!
//! Each histogram set is **thread-local and exclusively owned** — the
//! same discipline as [`crate::flight`]: a worker records only into its
//! own histograms with plain stores, and the set is read only by
//! [`uninstall`] on the same thread. Cross-thread publication happens
//! once, after the fact, through the pool-join happens-before edge. No
//! atomics, no locks, no fences on the recording path.
//!
//! # Cost when off
//!
//! Unlike the `trace`/`chaos` shims this module is not feature-gated —
//! histograms are a runtime switch so release binaries can always
//! profile. The off-state cost is a single thread-local flag check per
//! instrumentation point ([`timer`] returns a disarmed token and takes
//! no clock reading), which is the same shape as the installed-check the
//! flight shim performs in `trace` builds. Instrumentation points sit at
//! dispatch granularity (per segment fetch / steal attempt / barrier),
//! never in the per-edge scan loop.

use obfs_util::LogHistogram;
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// One worker's histogram set, recorded with plain stores into
/// thread-owned memory and merged post-run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerHists {
    /// Latency of one dispatcher segment acquisition, in microseconds —
    /// from entering the fetch path to holding a validated segment
    /// (lock-based variants: includes lock acquisition; optimistic
    /// variants: includes sanity-check retries).
    pub segment_fetch_us: LogHistogram,
    /// Latency of one steal attempt (victim selection through
    /// success/failure), in microseconds.
    pub steal_us: LogHistogram,
    /// Sanity-check retries observed per successful segment fetch
    /// (0 = the fetch validated first try).
    pub fetch_retry_burst: LogHistogram,
    /// Time spent in one barrier episode, in microseconds (for the
    /// level leader this includes the serial section it runs before
    /// releasing the others).
    pub barrier_wait_us: LogHistogram,
}

impl WorkerHists {
    /// Fold another worker's histograms into this one.
    pub fn merge(&mut self, other: &WorkerHists) {
        self.segment_fetch_us.merge(&other.segment_fetch_us);
        self.steal_us.merge(&other.steal_us);
        self.fetch_retry_burst.merge(&other.fetch_retry_burst);
        self.barrier_wait_us.merge(&other.barrier_wait_us);
    }

    /// True when nothing has been recorded in any histogram.
    pub fn is_empty(&self) -> bool {
        self.segment_fetch_us.is_empty()
            && self.steal_us.is_empty()
            && self.fetch_retry_burst.is_empty()
            && self.barrier_wait_us.is_empty()
    }
}

thread_local! {
    /// Fast-path flag mirroring `HISTS.is_some()`, so disarmed
    /// instrumentation points pay one TLS bit test and no RefCell
    /// borrow.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static HISTS: RefCell<Option<Box<WorkerHists>>> = const { RefCell::new(None) };
}

/// A latency measurement token: armed with a start instant only while a
/// histogram set is installed, so the off state takes no clock reading.
#[derive(Debug, Clone, Copy)]
pub struct HistTimer(Option<Instant>);

impl HistTimer {
    /// A token that will never record (what [`timer`] hands out when
    /// histograms are off).
    pub const DISARMED: HistTimer = HistTimer(None);

    /// Whether this token carries a start instant.
    pub fn is_armed(&self) -> bool {
        self.0.is_some()
    }
}

/// Install a fresh histogram set on the current thread, replacing any
/// previous one.
pub fn install() {
    ACTIVE.with(|a| a.set(true));
    HISTS.with(|h| *h.borrow_mut() = Some(Box::default()));
}

/// Remove the current thread's histogram set and return it (`None` when
/// none was installed).
pub fn uninstall() -> Option<Box<WorkerHists>> {
    ACTIVE.with(|a| a.set(false));
    HISTS.with(|h| h.borrow_mut().take())
}

/// Whether the current thread has an installed histogram set.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Start a latency measurement: an armed token while histograms are
/// installed, [`HistTimer::DISARMED`] otherwise.
#[inline]
pub fn timer() -> HistTimer {
    if ACTIVE.with(|a| a.get()) {
        HistTimer(Some(Instant::now()))
    } else {
        HistTimer::DISARMED
    }
}

#[inline]
fn record(t: HistTimer, f: impl FnOnce(&mut WorkerHists) -> &mut LogHistogram) {
    let Some(start) = t.0 else { return };
    let us = start.elapsed().as_micros() as u64;
    HISTS.with(|h| {
        if let Some(hists) = h.borrow_mut().as_mut() {
            f(hists).record(us);
        }
    });
}

/// Close a segment-fetch measurement started with [`timer`].
#[inline]
pub fn segment_fetch(t: HistTimer) {
    record(t, |h| &mut h.segment_fetch_us);
}

/// Close a steal-attempt measurement started with [`timer`].
#[inline]
pub fn steal_attempt(t: HistTimer) {
    record(t, |h| &mut h.steal_us);
}

/// Close a barrier-episode measurement started with [`timer`].
#[inline]
pub fn barrier_wait(t: HistTimer) {
    record(t, |h| &mut h.barrier_wait_us);
}

/// Record the sanity-check retry count of one successful segment fetch
/// (0 for a clean first-try fetch).
#[inline]
pub fn fetch_retry_burst(retries: u64) {
    if !ACTIVE.with(|a| a.get()) {
        return;
    }
    HISTS.with(|h| {
        if let Some(hists) = h.borrow_mut().as_mut() {
            hists.fetch_retry_burst.record(retries);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_when_not_installed() {
        assert!(!is_active());
        assert!(!timer().is_armed());
        segment_fetch(timer());
        fetch_retry_burst(3);
        assert!(uninstall().is_none());
    }

    #[test]
    fn records_into_installed_set() {
        install();
        assert!(is_active());
        let t = timer();
        assert!(t.is_armed());
        segment_fetch(t);
        steal_attempt(timer());
        barrier_wait(timer());
        fetch_retry_burst(0);
        fetch_retry_burst(5);
        let h = uninstall().expect("histograms were installed");
        assert!(!is_active());
        assert_eq!(h.segment_fetch_us.count(), 1);
        assert_eq!(h.steal_us.count(), 1);
        assert_eq!(h.barrier_wait_us.count(), 1);
        assert_eq!(h.fetch_retry_burst.count(), 2);
        assert_eq!(h.fetch_retry_burst.max(), 5);
    }

    #[test]
    fn armed_token_from_an_old_install_does_not_record_after_uninstall() {
        install();
        let t = timer();
        let _ = uninstall();
        segment_fetch(t); // set is gone: must be a no-op, not a panic
        assert!(uninstall().is_none());
    }

    #[test]
    fn reinstall_replaces_previous_set() {
        install();
        fetch_retry_burst(1);
        install();
        let h = uninstall().unwrap();
        assert!(h.is_empty());
    }

    #[test]
    fn merge_folds_all_four_histograms() {
        let mut a = WorkerHists::default();
        a.segment_fetch_us.record(10);
        a.fetch_retry_burst.record(2);
        let mut b = WorkerHists::default();
        b.steal_us.record(7);
        b.barrier_wait_us.record(100);
        a.merge(&b);
        assert_eq!(a.segment_fetch_us.count(), 1);
        assert_eq!(a.steal_us.count(), 1);
        assert_eq!(a.fetch_retry_burst.count(), 1);
        assert_eq!(a.barrier_wait_us.count(), 1);
        assert!(!a.is_empty());
    }
}
