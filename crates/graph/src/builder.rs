//! Edge-list accumulation and normalization into [`CsrGraph`].

use crate::{CsrGraph, VertexId};

/// Accumulates edges, applies normalization passes, and finalizes to CSR.
///
/// The generators emit raw edge streams (RMAT in particular produces many
/// duplicates and self-loops); the builder centralizes the clean-up so
/// every generator and loader produces graphs with the same guarantees.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    allow_self_loops: bool,
    dedup: bool,
    symmetrize: bool,
}

impl GraphBuilder {
    /// Builder for a graph on `n` vertices. Defaults: self-loops removed,
    /// duplicates removed, directed (no symmetrization).
    pub fn new(n: usize) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count exceeds u32 id space");
        Self { n, edges: Vec::new(), allow_self_loops: false, dedup: true, symmetrize: false }
    }

    /// Keep self-loops instead of dropping them.
    pub fn allow_self_loops(mut self, yes: bool) -> Self {
        self.allow_self_loops = yes;
        self
    }

    /// Keep duplicate edges instead of deduplicating.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Add the reverse of every edge (makes the graph undirected).
    pub fn symmetrize(mut self, yes: bool) -> Self {
        self.symmetrize = yes;
        self
    }

    /// Pre-allocate for `m` edges.
    pub fn reserve(&mut self, m: usize) {
        self.edges.reserve(m);
    }

    /// Add one directed edge. Panics on out-of-range endpoints.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        debug_assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u},{v}) out of range for n={}",
            self.n
        );
        self.edges.push((u, v));
    }

    /// Add many edges.
    pub fn extend(&mut self, edges: impl IntoIterator<Item = (VertexId, VertexId)>) {
        self.edges.extend(edges);
    }

    /// Number of raw (pre-normalization) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Apply the configured passes and produce the CSR graph with sorted
    /// adjacency lists.
    pub fn build(mut self) -> CsrGraph {
        if self.symmetrize {
            let rev: Vec<_> = self.edges.iter().map(|&(u, v)| (v, u)).collect();
            self.edges.extend(rev);
        }
        if !self.allow_self_loops {
            self.edges.retain(|&(u, v)| u != v);
        }
        // Sort by (source, target) — yields sorted adjacency lists and
        // makes dedup a linear pass.
        self.edges.sort_unstable();
        if self.dedup {
            self.edges.dedup();
        }
        CsrGraph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal_by_default() {
        let mut b = GraphBuilder::new(3);
        b.extend([(0, 1), (0, 1), (1, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[2]);
    }

    #[test]
    fn keep_self_loops_and_duplicates_when_asked() {
        let mut b = GraphBuilder::new(2).allow_self_loops(true).dedup(false);
        b.extend([(0, 0), (0, 1), (0, 1)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.neighbors(0), &[0, 1, 1]);
    }

    #[test]
    fn symmetrize_adds_reverse_edges() {
        let mut b = GraphBuilder::new(3).symmetrize(true);
        b.extend([(0, 1), (1, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[1]);
    }

    #[test]
    fn symmetrize_dedups_bidirectional_input() {
        let mut b = GraphBuilder::new(2).symmetrize(true);
        b.extend([(0, 1), (1, 0)]);
        let g = b.build();
        assert_eq!(g.num_edges(), 2, "0<->1 must appear once per direction");
    }

    #[test]
    fn adjacency_lists_are_sorted() {
        let mut b = GraphBuilder::new(5).dedup(false);
        b.extend([(0, 4), (0, 1), (0, 3), (0, 2)]);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert!(g.is_sorted());
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn raw_edge_count_tracks_additions() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.raw_edge_count(), 0);
        b.add_edge(0, 1);
        b.add_edge(0, 1);
        assert_eq!(b.raw_edge_count(), 2);
    }
}
