//! Random graph models: Erdős–Rényi G(n, m) and Chung-Lu power law.

use crate::{CsrGraph, GraphBuilder, VertexId};
use obfs_util::Xoshiro256StarStar;

/// Directed Erdős–Rényi G(n, m): `m` edges sampled uniformly (duplicates
/// and self-loops removed, so the final count can be slightly below `m`).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n >= 1, "need at least one vertex");
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    for _ in 0..m {
        let u = rng.below_usize(n) as VertexId;
        let v = rng.below_usize(n) as VertexId;
        b.add_edge(u, v);
    }
    b.build()
}

/// Sample a power-law degree sequence with exponent `gamma > 1`, minimum
/// degree `dmin`, maximum degree `dmax`, via inverse-CDF sampling of the
/// discrete Pareto distribution.
pub fn power_law_degrees(
    n: usize,
    gamma: f64,
    dmin: usize,
    dmax: usize,
    seed: u64,
) -> Vec<usize> {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(dmin >= 1 && dmax >= dmin, "need 1 <= dmin <= dmax");
    let mut rng = Xoshiro256StarStar::new(seed);
    let alpha = 1.0 - gamma;
    let lo = (dmin as f64).powf(alpha);
    let hi = ((dmax + 1) as f64).powf(alpha);
    (0..n)
        .map(|_| {
            let u = rng.next_f64();
            // Inverse CDF of the continuous Pareto truncated to
            // [dmin, dmax+1), floored to an integer degree.
            let x = (lo + u * (hi - lo)).powf(1.0 / alpha);
            (x as usize).clamp(dmin, dmax)
        })
        .collect()
}

/// Chung-Lu model: edge (u, v) appears with probability ~ w_u * w_v / W,
/// realized by weighted endpoint sampling of `m ≈ sum(w)/2 * 2` edges.
///
/// Produces a scale-free directed graph whose degree distribution follows
/// the weight sequence — our stand-in for the Wikipedia-style web graphs
/// in the paper (γ between 2 and 3, hotspot hubs).
pub fn chung_lu(n: usize, weights: &[usize], seed: u64) -> CsrGraph {
    assert_eq!(n, weights.len(), "one weight per vertex");
    assert!(n >= 1);
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    assert!(total > 0, "at least one positive weight required");
    let mut rng = Xoshiro256StarStar::new(seed);

    // Alias-free weighted sampling via the cumulative table + binary
    // search: O(log n) per endpoint, fine for generation-time work.
    let mut cumulative = Vec::with_capacity(n);
    let mut acc = 0u64;
    for &w in weights {
        acc += w as u64;
        cumulative.push(acc);
    }
    let sample = |rng: &mut Xoshiro256StarStar| -> VertexId {
        let x = rng.below(total) + 1;
        cumulative.partition_point(|&c| c < x) as VertexId
    };

    let m = (total / 2) as usize; // expected edges ≈ half the weight mass
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    for _ in 0..m {
        b.add_edge(sample(&mut rng), sample(&mut rng));
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_size_and_determinism() {
        let g = erdos_renyi(500, 3000, 1);
        assert_eq!(g.num_vertices(), 500);
        assert!(g.num_edges() > 2500 && g.num_edges() <= 3000);
        assert_eq!(g, erdos_renyi(500, 3000, 1));
        assert_ne!(g, erdos_renyi(500, 3000, 2));
    }

    #[test]
    fn er_degrees_are_concentrated() {
        let g = erdos_renyi(2000, 20_000, 9);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        let (dmax, _) = g.max_degree();
        assert!((dmax as f64) < 5.0 * mean, "ER should have no hubs");
    }

    #[test]
    fn power_law_degrees_in_range_and_skewed() {
        let d = power_law_degrees(10_000, 2.3, 2, 1000, 4);
        assert!(d.iter().all(|&x| (2..=1000).contains(&x)));
        let mean = d.iter().sum::<usize>() as f64 / d.len() as f64;
        let max = *d.iter().max().unwrap();
        assert!(mean < 20.0, "mean {mean} too high for gamma=2.3, dmin=2");
        assert!(max > 100, "max degree {max} too small — distribution not heavy-tailed");
    }

    #[test]
    #[should_panic(expected = "exceed 1")]
    fn power_law_rejects_gamma_leq_1() {
        let _ = power_law_degrees(10, 1.0, 1, 5, 0);
    }

    #[test]
    fn chung_lu_respects_weights() {
        // Vertex 0 has 100x the weight of the others: it must end up with
        // far more incident edges than an average vertex.
        let n = 1000;
        let mut w = vec![4usize; n];
        w[0] = 400;
        let g = chung_lu(n, &w, 7);
        let t = g.transpose();
        let inout0 = g.degree(0) + t.degree(0);
        let mean: f64 = 2.0 * g.num_edges() as f64 / n as f64;
        assert!(
            inout0 as f64 > 10.0 * mean,
            "hub vertex degree {inout0} vs mean {mean:.1}"
        );
    }

    #[test]
    fn chung_lu_deterministic() {
        let w = vec![3usize; 200];
        assert_eq!(chung_lu(200, &w, 5), chung_lu(200, &w, 5));
    }
}
