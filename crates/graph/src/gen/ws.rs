//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice (each vertex tied to its `k` nearest neighbours on each
//! side) whose arcs are rewired to uniformly random targets with
//! probability `beta`. `beta = 0` is the pure lattice (diameter ~ n/2k);
//! small `beta` collapses the diameter to polylogarithmic while keeping
//! degrees narrow — the regime of the paper's circuit-style graphs
//! (sparse, near-regular, long-but-not-lattice shortest paths).

use crate::{CsrGraph, GraphBuilder, VertexId};
use obfs_util::Xoshiro256StarStar;

/// Watts–Strogatz graph on `n` vertices: ring lattice with `k` arcs per
/// side, each arc rewired with probability `beta ∈ [0, 1]` to a uniform
/// random non-self target. Symmetrized and deduplicated.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(n >= 3, "need at least a triangle-sized ring");
    assert!(k >= 1 && 2 * k < n, "need 1 <= k < n/2 lattice arcs per side");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = GraphBuilder::new(n).symmetrize(true);
    b.reserve(2 * n * k);
    for u in 0..n {
        for d in 1..=k {
            let lattice_target = ((u + d) % n) as VertexId;
            let v = if rng.chance(beta) {
                // Rewire to a uniform non-self target (self-loops are
                // dropped by the builder anyway; skip them here to keep
                // the edge count exact).
                loop {
                    let t = rng.below_usize(n) as VertexId;
                    if t != u as VertexId {
                        break t;
                    }
                }
            } else {
                lattice_target
            };
            b.add_edge(u as VertexId, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::pseudo_diameter;

    #[test]
    fn beta_zero_is_the_ring_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        // 2 arcs per side, symmetric: every vertex has degree 4.
        for v in 0..20u32 {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
        assert_eq!(g.num_edges(), 80);
        // Neighbours are ring-adjacent.
        assert_eq!(g.neighbors(0), &[1, 2, 18, 19]);
    }

    #[test]
    fn rewiring_shrinks_the_diameter() {
        let lattice = watts_strogatz(2000, 2, 0.0, 7);
        let small_world = watts_strogatz(2000, 2, 0.05, 7);
        let d0 = pseudo_diameter(&lattice, 0, 3);
        let d1 = pseudo_diameter(&small_world, 0, 3);
        assert!(d0 >= 400, "lattice diameter ~ n/2k, got {d0}");
        assert!(
            d1 < d0 / 4,
            "5% rewiring must collapse the diameter: {d0} -> {d1}"
        );
    }

    #[test]
    fn degrees_stay_narrow_under_rewiring() {
        let g = watts_strogatz(3000, 3, 0.1, 3);
        let (dmax, _) = g.max_degree();
        // Rewiring adds in-degree noise but no scale-free hubs.
        assert!(dmax < 20, "unexpected hub: max degree {dmax}");
    }

    #[test]
    fn deterministic_and_symmetric() {
        let a = watts_strogatz(200, 2, 0.3, 9);
        assert_eq!(a, watts_strogatz(200, 2, 0.3, 9));
        assert_ne!(a, watts_strogatz(200, 2, 0.3, 10));
        assert!(a.is_symmetric());
    }

    #[test]
    fn beta_one_is_random_but_connected_enough() {
        let g = watts_strogatz(500, 3, 1.0, 4);
        // Expected degree stays ~2k even fully rewired.
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        assert!((4.0..=6.0).contains(&mean), "mean degree {mean}");
    }

    #[test]
    #[should_panic(expected = "n/2")]
    fn rejects_oversized_k() {
        let _ = watts_strogatz(10, 5, 0.0, 0);
    }
}
