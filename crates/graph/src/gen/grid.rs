//! Regular lattices: 2-D grids and 3-D tori.
//!
//! These are the high-diameter, constant-degree building blocks behind the
//! cage/circuit stand-ins: DNA-electrophoresis matrices (cage14/15) are
//! near-regular meshes, and circuit matrices (freescale) are extremely
//! sparse with very long shortest paths.

use crate::{CsrGraph, GraphBuilder, VertexId};

/// `rows x cols` 4-neighbour grid, symmetrized. Diameter = rows+cols-2.
pub fn grid2d(rows: usize, cols: usize) -> CsrGraph {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let mut b = GraphBuilder::new(n).symmetrize(true);
    let id = |r: usize, c: usize| (r * cols + c) as VertexId;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// `x*y*z` 6-neighbour torus (wrap-around 3-D lattice), symmetrized.
/// Every vertex has degree exactly 6 when all dims are >= 3.
pub fn torus3d(x: usize, y: usize, z: usize) -> CsrGraph {
    assert!(x >= 1 && y >= 1 && z >= 1);
    let n = x * y * z;
    let mut b = GraphBuilder::new(n).symmetrize(true);
    let id = |i: usize, j: usize, k: usize| ((i * y + j) * z + k) as VertexId;
    for i in 0..x {
        for j in 0..y {
            for k in 0..z {
                b.add_edge(id(i, j, k), id((i + 1) % x, j, k));
                b.add_edge(id(i, j, k), id(i, (j + 1) % y, k));
                b.add_edge(id(i, j, k), id(i, j, (k + 1) % z));
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_degrees() {
        let g = grid2d(3, 4);
        assert_eq!(g.num_vertices(), 12);
        // corners have degree 2, edges 3, interior 4
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3);
        assert_eq!(g.degree(5), 4);
        // total edges: horizontal 3*3 + vertical 2*4 = 17 undirected
        assert_eq!(g.num_edges(), 34);
    }

    #[test]
    fn grid_is_symmetric() {
        let g = grid2d(5, 7);
        assert_eq!(g.transpose(), g);
    }

    #[test]
    fn degenerate_grid_is_a_path() {
        let g = grid2d(1, 5);
        assert_eq!(g.num_edges(), 8); // path with 4 undirected edges
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn torus_is_regular() {
        let g = torus3d(3, 4, 5);
        assert_eq!(g.num_vertices(), 60);
        for v in 0..60u32 {
            assert_eq!(g.degree(v), 6, "torus vertex {v} not 6-regular");
        }
        assert_eq!(g.num_edges(), 6 * 60);
    }

    #[test]
    fn small_torus_dims_collapse_edges() {
        // With a dimension of 2 the +1 and -1 neighbours coincide and the
        // duplicate edge is removed by the builder.
        let g = torus3d(2, 3, 3);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(g.degree(v), 5);
        }
    }

    #[test]
    fn torus_symmetric() {
        let g = torus3d(3, 3, 3);
        assert_eq!(g.transpose(), g);
    }
}
