//! Stand-ins for the paper's evaluation graphs (Table IV).
//!
//! The original evaluation uses five Florida-Sparse-Matrix-Collection
//! graphs plus two Graph500 RMAT graphs. The matrices are not shipped
//! here, so each one is replaced by a deterministic synthetic generator
//! matched on the properties the BFS algorithms are sensitive to:
//! density (m/n), degree distribution (regular vs. heavy-tailed), and
//! BFS-diameter class (units vs. tens vs. hundreds of levels).
//!
//! Every stand-in takes a `divisor` that shrinks the vertex count
//! (`n = paper_n / divisor`) so the whole Table V grid fits a laptop-class
//! budget; densities are preserved under scaling. The original matrices
//! can still be used directly through [`crate::io::matrix_market`].

use crate::{CsrGraph, GraphBuilder, VertexId};
use crate::gen::{chung_lu, erdos_renyi, power_law_degrees, rmat, torus3d, RmatParams};
use obfs_util::Xoshiro256StarStar;

/// The seven evaluation graphs of the paper, in Table IV order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PaperGraph {
    /// cage15: DNA electrophoresis; near-regular mesh, n=5.2M, m=99.2M,
    /// BFS diameter 53.
    Cage15,
    /// cage14: smaller electrophoresis mesh, n=1.5M, m=27.1M, diameter 42.
    /// (Table IV prints 15.1M vertices; the actual cage14 matrix has 1.5M —
    /// we follow the real matrix so density stays mesh-like.)
    Cage14,
    /// freescale: circuit, extremely sparse, n=3.4M, m=18.9M(sym),
    /// diameter 141.
    Freescale,
    /// wikipedia-2007: scale-free web graph, n=3.6M, m=45M, diameter 14.
    Wikipedia,
    /// kkt_power: optimization (KKT) matrix, n=2M, m=8.1M, diameter 11.
    KktPower,
    /// RMAT, 10M vertices / 100M edges, diameter 12.
    Rmat100M,
    /// RMAT, 10M vertices / 1B edges (dense), diameter 5.
    Rmat1B,
}

/// All seven graphs in the order of the paper's tables.
pub const ALL: [PaperGraph; 7] = [
    PaperGraph::Cage15,
    PaperGraph::Cage14,
    PaperGraph::Freescale,
    PaperGraph::Wikipedia,
    PaperGraph::KktPower,
    PaperGraph::Rmat100M,
    PaperGraph::Rmat1B,
];

impl PaperGraph {
    /// Display name used in the regenerated tables.
    pub fn name(&self) -> &'static str {
        match self {
            PaperGraph::Cage15 => "cage15",
            PaperGraph::Cage14 => "cage14",
            PaperGraph::Freescale => "freescale",
            PaperGraph::Wikipedia => "wikipedia",
            PaperGraph::KktPower => "kkt-power",
            PaperGraph::Rmat100M => "rmat-100M",
            PaperGraph::Rmat1B => "rmat-1B",
        }
    }

    /// Parse a display name back into the enum.
    pub fn from_name(s: &str) -> Option<Self> {
        ALL.into_iter().find(|g| g.name() == s)
    }

    /// `(n, m, bfs_diameter)` as reported in the paper's Table IV.
    pub fn paper_properties(&self) -> (u64, u64, u32) {
        match self {
            PaperGraph::Cage15 => (5_200_000, 99_200_000, 53),
            PaperGraph::Cage14 => (1_500_000, 27_100_000, 42),
            PaperGraph::Freescale => (3_400_000, 18_900_000, 141),
            PaperGraph::Wikipedia => (3_600_000, 45_000_000, 14),
            PaperGraph::KktPower => (2_000_000, 8_100_000, 11),
            PaperGraph::Rmat100M => (10_000_000, 100_000_000, 12),
            PaperGraph::Rmat1B => (10_000_000, 1_000_000_000, 5),
        }
    }

    /// Whether the paper treats this graph as scale-free (hub-dominated).
    pub fn is_scale_free(&self) -> bool {
        matches!(
            self,
            PaperGraph::Wikipedia | PaperGraph::Rmat100M | PaperGraph::Rmat1B
        )
    }

    /// Generate the stand-in at `n = paper_n / divisor` (density
    /// preserved). `divisor` must be >= 1.
    pub fn generate(&self, divisor: u64, seed: u64) -> CsrGraph {
        assert!(divisor >= 1);
        let (paper_n, paper_m, _) = self.paper_properties();
        let n = (paper_n / divisor).max(64) as usize;
        let density = paper_m as f64 / paper_n as f64;
        match self {
            PaperGraph::Cage15 | PaperGraph::Cage14 => cage_like(n, density, seed),
            PaperGraph::Freescale => circuit_like(n, density, seed),
            PaperGraph::Wikipedia => scale_free_like(n, density, 2.3, seed),
            PaperGraph::KktPower => kkt_like(n, density, seed),
            PaperGraph::Rmat100M => rmat_like(n, 10, seed),
            PaperGraph::Rmat1B => rmat_like(n, 100, seed),
        }
    }
}

/// Mesh-like stand-in for the cage matrices: a 3-D torus (6-regular,
/// mesh diameter) thickened with short-range random chords until the
/// target density is met. Degrees stay narrow; diameter stays in the
/// "tens of levels" class.
pub fn cage_like(n: usize, density: f64, seed: u64) -> CsrGraph {
    let dim = (n as f64).cbrt().round().max(2.0) as usize;
    let torus = torus3d(dim, dim, dim);
    let actual_n = torus.num_vertices();
    let mut b = GraphBuilder::new(actual_n).symmetrize(true);
    for (u, v) in torus.edges() {
        if u < v {
            b.add_edge(u, v); // symmetrize restores both directions
        }
    }
    // Top up with window chords: local enough to keep the mesh character,
    // long enough to pull the BFS diameter toward the paper's class.
    let window = (actual_n / 50).max(8);
    let have = torus.num_edges() as f64;
    let want = density * actual_n as f64;
    let extra = (((want - have) / 2.0).max(0.0)) as usize;
    let mut rng = Xoshiro256StarStar::new(seed);
    for _ in 0..extra {
        let u = rng.below_usize(actual_n);
        let delta = 1 + rng.below_usize(window);
        let v = (u + delta) % actual_n;
        b.add_edge(u as VertexId, v as VertexId);
    }
    b.build()
}

/// Circuit stand-in: a Watts–Strogatz-style ring lattice with a sparse
/// sprinkling of long "via" shortcuts — very sparse, narrow degrees, BFS
/// diameter in the hundreds of levels.
pub fn circuit_like(n: usize, density: f64, seed: u64) -> CsrGraph {
    let k = ((density / 2.0).round().max(1.0)) as usize; // ring arcs per side
    let lattice = crate::gen::watts_strogatz(n.max(3), k.min((n.max(3) - 1) / 2).max(1), 0.0, seed);
    let n = lattice.num_vertices();
    let mut b = GraphBuilder::new(n).symmetrize(true);
    b.extend(lattice.edges().filter(|&(u, v)| u < v)); // symmetrize restores both
    // One shortcut per ~`spacing` ring vertices bounds the diameter at
    // roughly `spacing` plus the shortcut-graph diameter: the hundreds-of-
    // levels class, independent of n.
    let spacing = 160.min(n.max(2) - 1).max(1);
    let shortcuts = n / spacing;
    let mut rng = Xoshiro256StarStar::new(seed);
    for _ in 0..shortcuts {
        let u = rng.below_usize(n);
        let v = rng.below_usize(n);
        if u != v {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// Scale-free stand-in (wikipedia-like): Chung-Lu with a power-law weight
/// sequence of exponent `gamma`, rescaled so the directed edge count is
/// about `density * n`.
pub fn scale_free_like(n: usize, density: f64, gamma: f64, seed: u64) -> CsrGraph {
    // chung_lu emits total_weight / 2 edges, so aim the weight mean at
    // 2 * density. dmin follows from the truncated-Pareto mean formula.
    let target_mean = 2.0 * density;
    let dmin = ((target_mean * (gamma - 2.0) / (gamma - 1.0)).round().max(1.0)) as usize;
    let dmax = ((n as f64).sqrt() * 8.0) as usize;
    let weights = power_law_degrees(n, gamma, dmin, dmax.max(dmin + 1), seed ^ 0x5eed);
    chung_lu(n, &weights, seed)
}

/// kkt_power stand-in: sparse, mildly irregular, low diameter. An
/// Erdős–Rényi core at the target density with a small heavy-tailed
/// overlay (the KKT matrix has a block structure with a few dense rows).
pub fn kkt_like(n: usize, density: f64, seed: u64) -> CsrGraph {
    let core = erdos_renyi(n, (density * n as f64 * 0.85) as usize, seed);
    let mut b = GraphBuilder::new(n);
    b.extend(core.edges());
    let mut rng = Xoshiro256StarStar::new(seed ^ _kkt_seed_mix());
    // Overlay: ~0.1% of vertices act as mildly dense rows.
    let hubs = (n / 1000).max(1);
    let per_hub = ((density * n as f64 * 0.15) as usize / hubs).max(1);
    for _ in 0..hubs {
        let h = rng.below_usize(n) as VertexId;
        for _ in 0..per_hub {
            let v = rng.below_usize(n) as VertexId;
            if v != h {
                b.add_edge(h, v);
                b.add_edge(v, h);
            }
        }
    }
    b.build()
}

const fn _kkt_seed_mix() -> u64 {
    0x6b6b_7470 // "kktp"
}

/// RMAT stand-in at `n` vertices (rounded down to a power of two) and
/// `edge_factor * n` generated edges.
pub fn rmat_like(n: usize, edge_factor: usize, seed: u64) -> CsrGraph {
    let scale = (usize::BITS - 1 - n.leading_zeros()).max(6);
    rmat(scale, edge_factor, RmatParams::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIV: u64 = 512; // tiny graphs for unit tests

    #[test]
    fn names_roundtrip() {
        for g in ALL {
            assert_eq!(PaperGraph::from_name(g.name()), Some(g));
        }
        assert_eq!(PaperGraph::from_name("nope"), None);
    }

    #[test]
    fn all_standins_generate_and_are_nonempty() {
        for g in ALL {
            let graph = g.generate(DIV, 1);
            assert!(graph.num_vertices() >= 64, "{} too small", g.name());
            assert!(graph.num_edges() > 0, "{} has no edges", g.name());
        }
    }

    #[test]
    fn densities_track_paper() {
        for g in [PaperGraph::Freescale, PaperGraph::Wikipedia, PaperGraph::KktPower] {
            let (pn, pm, _) = g.paper_properties();
            let paper_density = pm as f64 / pn as f64;
            let graph = g.generate(64, 2);
            let density = graph.num_edges() as f64 / graph.num_vertices() as f64;
            assert!(
                density > 0.4 * paper_density && density < 2.5 * paper_density,
                "{}: density {density:.1} vs paper {paper_density:.1}",
                g.name()
            );
        }
    }

    #[test]
    fn wikipedia_standin_has_hubs_and_cage_does_not() {
        let wiki = PaperGraph::Wikipedia.generate(DIV, 3);
        let cage = PaperGraph::Cage14.generate(DIV, 3);
        let hubness = |g: &CsrGraph| {
            let mean = g.num_edges() as f64 / g.num_vertices() as f64;
            g.max_degree().0 as f64 / mean
        };
        assert!(hubness(&wiki) > 8.0, "wikipedia stand-in lacks hubs: {}", hubness(&wiki));
        assert!(hubness(&cage) < 4.0, "cage stand-in has hubs: {}", hubness(&cage));
    }

    #[test]
    fn deterministic_generation() {
        for g in [PaperGraph::Wikipedia, PaperGraph::Rmat100M] {
            assert_eq!(g.generate(DIV, 9), g.generate(DIV, 9));
        }
    }

    #[test]
    fn scale_free_flags() {
        assert!(PaperGraph::Wikipedia.is_scale_free());
        assert!(!PaperGraph::Cage15.is_scale_free());
    }
}
