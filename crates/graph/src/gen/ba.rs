//! Barabási–Albert preferential attachment.

use crate::{CsrGraph, GraphBuilder, VertexId};
use obfs_util::Xoshiro256StarStar;

/// Barabási–Albert graph: vertices arrive one at a time and attach `k`
/// edges to existing vertices with probability proportional to their
/// current degree. Produces a scale-free graph with exponent γ ≈ 3.
///
/// The result is symmetrized (each attachment is kept in both directions),
/// matching how social/collaboration networks are traversed in the paper's
/// motivation. The first `k + 1` vertices form a seed clique.
pub fn barabasi_albert(n: usize, k: usize, seed: u64) -> CsrGraph {
    assert!(k >= 1, "attachment count must be >= 1");
    assert!(n > k, "need more vertices than the attachment count");
    let mut rng = Xoshiro256StarStar::new(seed);

    // `targets_pool` holds one entry per edge endpoint, so uniform sampling
    // from it is exactly degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * k);
    let mut b = GraphBuilder::new(n).symmetrize(true);

    // Seed clique on vertices 0..=k.
    for u in 0..=(k as VertexId) {
        for v in (u + 1)..=(k as VertexId) {
            b.add_edge(u, v);
            pool.push(u);
            pool.push(v);
        }
    }

    for u in (k + 1)..n {
        let u = u as VertexId;
        // Sample k distinct targets from the pool (retry duplicates; with
        // a pool far larger than k the expected retries are O(1)).
        let mut chosen: Vec<VertexId> = Vec::with_capacity(k);
        while chosen.len() < k {
            let t = pool[rng.below_usize(pool.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(u, t);
            pool.push(u);
            pool.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_model() {
        let (n, k) = (500, 3);
        let g = barabasi_albert(n, k, 1);
        // Seed clique has C(k+1, 2) undirected edges; each later vertex
        // adds k. Symmetrized => 2x directed edges.
        let undirected = (k + 1) * k / 2 + (n - k - 1) * k;
        assert_eq!(g.num_edges(), 2 * undirected as u64);
    }

    #[test]
    fn graph_is_symmetric() {
        let g = barabasi_albert(200, 2, 3);
        let t = g.transpose();
        for v in 0..200u32 {
            assert_eq!(g.neighbors(v), t.neighbors(v), "asymmetric at {v}");
        }
    }

    #[test]
    fn heavy_tail_emerges() {
        let g = barabasi_albert(5000, 2, 7);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        let (dmax, hub) = g.max_degree();
        assert!(dmax as f64 > 10.0 * mean, "no hub: dmax={dmax} mean={mean:.1}");
        // Hubs should be early vertices (preferential attachment).
        assert!(hub < 500, "hub {hub} unexpectedly late");
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 9), barabasi_albert(100, 2, 9));
        assert_ne!(barabasi_albert(100, 2, 9), barabasi_albert(100, 2, 10));
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, 0);
    }
}
