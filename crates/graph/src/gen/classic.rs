//! Small deterministic graph families used heavily in unit tests and as
//! adversarial BFS inputs (deep paths stress level synchronization; stars
//! stress hub splitting; complete graphs stress duplicate suppression).

use crate::{CsrGraph, GraphBuilder, VertexId};

/// Path 0 - 1 - ... - (n-1), symmetrized. Worst-case BFS depth.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).symmetrize(true);
    for v in 1..n {
        b.add_edge((v - 1) as VertexId, v as VertexId);
    }
    b.build()
}

/// Cycle on `n >= 3` vertices, symmetrized.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "a cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n).symmetrize(true);
    for v in 0..n {
        b.add_edge(v as VertexId, ((v + 1) % n) as VertexId);
    }
    b.build()
}

/// Star: vertex 0 adjacent to all others, symmetrized. The extreme
/// "hotspot" graph for the scale-free BFS variants.
pub fn star(n: usize) -> CsrGraph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n).symmetrize(true);
    for v in 1..n {
        b.add_edge(0, v as VertexId);
    }
    b.build()
}

/// Complete directed graph (all ordered pairs, no self-loops). Maximal
/// duplicate-discovery pressure: every vertex has n-1 parents.
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in 0..n {
            if u != v {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Complete binary tree with `n` vertices (heap indexing), symmetrized.
/// Frontier size doubles per level — the friendly case for parallel BFS.
pub fn binary_tree(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n).symmetrize(true);
    for v in 1..n {
        b.add_edge(((v - 1) / 2) as VertexId, v as VertexId);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 8);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.neighbors(2), &[1, 3]);
    }

    #[test]
    fn single_vertex_path() {
        let g = path(1);
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_regular() {
        let g = cycle(6);
        for v in 0..6u32 {
            assert_eq!(g.degree(v), 2);
        }
        assert_eq!(g.num_edges(), 12);
    }

    #[test]
    fn star_shape() {
        let g = star(10);
        assert_eq!(g.degree(0), 9);
        for v in 1..10u32 {
            assert_eq!(g.neighbors(v), &[0]);
        }
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.num_edges(), 20);
        for v in 0..5u32 {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 3, 4]);
        assert_eq!(g.neighbors(6), &[2]);
    }
}
