//! Deterministic synthetic graph generators.
//!
//! Every generator takes an explicit `seed` and is fully reproducible.
//! The evaluation graphs of the paper (Table IV) are produced by
//! [`suite`], which combines these primitives into stand-ins matching the
//! original graphs' shapes (degree distribution, density, diameter class).

mod ba;
mod classic;
mod grid;
mod random;
mod rmat;
mod ws;
pub mod suite;

pub use ba::barabasi_albert;
pub use classic::{binary_tree, complete, cycle, path, star};
pub use grid::{grid2d, torus3d};
pub use random::{chung_lu, erdos_renyi, power_law_degrees};
pub use rmat::{rmat, RmatParams};
pub use ws::watts_strogatz;
