//! Recursive-matrix (RMAT / Graph500 Kronecker) generator.

use crate::{GraphBuilder, CsrGraph, VertexId};
use obfs_util::Xoshiro256StarStar;

/// RMAT quadrant probabilities. The paper uses the Graph500 generator with
/// `a = 0.45, b = 0.15, c = 0.15` (so `d = 0.25`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability.
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
    /// Per-level probability perturbation (Graph500 "noise"), keeps the
    /// degree distribution from being perfectly self-similar. 0 disables.
    pub noise: f64,
}

impl Default for RmatParams {
    /// The paper's parameters (footnote 5): a=.45, b=.15, c=.15.
    fn default() -> Self {
        Self { a: 0.45, b: 0.15, c: 0.15, noise: 0.1 }
    }
}

impl RmatParams {
    /// The bottom-right probability `1 - a - b - c`.
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    fn validate(&self) {
        assert!(self.a > 0.0 && self.b >= 0.0 && self.c >= 0.0, "probabilities must be >= 0");
        assert!(
            self.a + self.b + self.c < 1.0 + 1e-12,
            "a + b + c must be < 1 (d = 1-a-b-c must be positive)"
        );
        assert!((0.0..=0.5).contains(&self.noise), "noise must be in [0, 0.5]");
    }
}

/// Generate a directed RMAT graph with `2^scale` vertices and (about)
/// `edge_factor * 2^scale` directed edges before dedup/self-loop removal.
///
/// Duplicates and self-loops — which RMAT produces in bulk for skewed
/// parameters — are removed by the builder, so the final edge count is
/// slightly below `edge_factor << scale` (exactly as with the Graph500
/// reference generator).
pub fn rmat(scale: u32, edge_factor: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    assert!(scale < 31, "scale {scale} would overflow u32 vertex ids");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = Xoshiro256StarStar::new(seed);
    let mut b = GraphBuilder::new(n);
    b.reserve(m);
    for _ in 0..m {
        let (u, v) = rmat_edge(scale, &params, &mut rng);
        b.add_edge(u, v);
    }
    b.build()
}

/// Sample one (source, target) pair by recursive quadrant descent.
fn rmat_edge(scale: u32, p: &RmatParams, rng: &mut Xoshiro256StarStar) -> (VertexId, VertexId) {
    let mut u = 0u32;
    let mut v = 0u32;
    let (mut a, mut b, mut c) = (p.a, p.b, p.c);
    for level in 0..scale {
        let d = 1.0 - a - b - c;
        let r = rng.next_f64();
        let bit = 1u32 << (scale - 1 - level);
        if r < a {
            // top-left: no bits set
        } else if r < a + b {
            v |= bit;
        } else if r < a + b + c {
            u |= bit;
        } else {
            debug_assert!(d >= 0.0);
            u |= bit;
            v |= bit;
        }
        if p.noise > 0.0 {
            // Multiplicative noise per level, renormalized (Graph500 style).
            let na = a * (1.0 - p.noise + 2.0 * p.noise * rng.next_f64());
            let nb = b * (1.0 - p.noise + 2.0 * p.noise * rng.next_f64());
            let nc = c * (1.0 - p.noise + 2.0 * p.noise * rng.next_f64());
            let nd = d * (1.0 - p.noise + 2.0 * p.noise * rng.next_f64());
            let s = na + nb + nc + nd;
            a = na / s;
            b = nb / s;
            c = nc / s;
        }
    }
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_match_paper() {
        let p = RmatParams::default();
        assert_eq!((p.a, p.b, p.c), (0.45, 0.15, 0.15));
        assert!((p.d() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn sizes_are_plausible() {
        let g = rmat(10, 8, RmatParams::default(), 1);
        assert_eq!(g.num_vertices(), 1024);
        // Dedup + self-loop removal trims some edges but most survive.
        assert!(g.num_edges() > 4 * 1024, "too few edges: {}", g.num_edges());
        assert!(g.num_edges() <= 8 * 1024);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rmat(8, 4, RmatParams::default(), 7);
        let b = rmat(8, 4, RmatParams::default(), 7);
        let c = rmat(8, 4, RmatParams::default(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn skewed_params_make_hubs() {
        // With Graph500 skew the max degree should far exceed the mean.
        let g = rmat(12, 16, RmatParams::default(), 3);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        let (dmax, _) = g.max_degree();
        assert!(
            dmax as f64 > 5.0 * mean,
            "expected hub formation: dmax={dmax}, mean={mean:.1}"
        );
    }

    #[test]
    fn uniform_params_do_not_make_hubs() {
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25, noise: 0.0 };
        let g = rmat(12, 16, p, 3);
        let mean = g.num_edges() as f64 / g.num_vertices() as f64;
        let (dmax, _) = g.max_degree();
        assert!(
            (dmax as f64) < 4.0 * mean,
            "uniform RMAT is Erdős–Rényi-like: dmax={dmax}, mean={mean:.1}"
        );
    }

    #[test]
    #[should_panic(expected = "must be < 1")]
    fn rejects_bad_probabilities() {
        let p = RmatParams { a: 0.6, b: 0.3, c: 0.3, noise: 0.0 };
        let _ = rmat(4, 2, p, 0);
    }

    #[test]
    fn no_self_loops_after_build() {
        let g = rmat(9, 8, RmatParams::default(), 5);
        for (u, v) in g.edges() {
            assert_ne!(u, v);
        }
    }
}
