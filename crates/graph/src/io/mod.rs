//! Graph serialization: Matrix Market, text edge lists, binary CSR.
//!
//! Matrix Market is the format of the Florida Sparse Matrix Collection
//! graphs the paper evaluates on (cage15, wikipedia-2007, ...), so the
//! original inputs can be used verbatim when available. The binary CSR
//! format is our own cache format for large generated workloads.

pub mod edgelist;
pub mod matrix_market;

pub use edgelist::{read_edge_list, write_edge_list};
pub use matrix_market::{read_matrix_market, write_matrix_market};

use crate::CsrGraph;
use std::io::{self, Read, Write};

const BINARY_MAGIC: &[u8; 8] = b"OBFSCSR1";

/// Write a graph in the compact binary CSR format:
/// magic, n (u64 LE), m (u64 LE), offsets (n+1 x u64 LE), targets (m x u32 LE).
pub fn write_binary_csr<W: Write>(w: &mut W, g: &CsrGraph) -> io::Result<()> {
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&g.num_edges().to_le_bytes())?;
    for &o in g.offsets_raw() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in g.targets_raw() {
        w.write_all(&t.to_le_bytes())?;
    }
    Ok(())
}

/// Read a graph previously written with [`write_binary_csr`].
pub fn read_binary_csr<R: Read>(r: &mut R) -> io::Result<CsrGraph> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad OBFSCSR1 magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8));
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        targets.push(u32::from_le_bytes(buf4));
    }
    // from_raw re-validates structure, so corrupt files fail loudly.
    Ok(CsrGraph::from_raw(offsets, targets))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn binary_roundtrip() {
        let g = gen::erdos_renyi(200, 1000, 3);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &g).unwrap();
        let back = read_binary_csr(&mut buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &gen::path(4)).unwrap();
        buf[0] = b'X';
        assert!(read_binary_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &gen::cycle(10)).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary_csr(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn binary_empty_graph() {
        let g = CsrGraph::from_edges(5, &[]);
        let mut buf = Vec::new();
        write_binary_csr(&mut buf, &g).unwrap();
        assert_eq!(read_binary_csr(&mut buf.as_slice()).unwrap(), g);
    }
}
