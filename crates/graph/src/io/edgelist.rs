//! Plain text edge lists: one `u v` pair per line, `#` comments.

use crate::{CsrGraph, GraphBuilder, VertexId};
use std::io::{self, BufRead, Write};

/// Read a whitespace-separated edge list. Vertex ids are 0-based; the
/// vertex count is `max id + 1` unless `n` forces a larger graph.
pub fn read_edge_list<R: BufRead>(r: R, n: Option<usize>) -> io::Result<CsrGraph> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut max_id: u64 = 0;
    for line in r.lines() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: u64 = it.next().ok_or_else(|| bad("missing source"))?.parse().map_err(|_| bad("bad source id"))?;
        let v: u64 = it.next().ok_or_else(|| bad("missing target"))?.parse().map_err(|_| bad("bad target id"))?;
        if it.next().is_some() {
            return Err(bad("more than two columns on an edge line"));
        }
        if u > VertexId::MAX as u64 - 1 || v > VertexId::MAX as u64 - 1 {
            return Err(bad("vertex id exceeds u32 range"));
        }
        max_id = max_id.max(u).max(v);
        edges.push((u as VertexId, v as VertexId));
    }
    let implied = if edges.is_empty() { 0 } else { max_id as usize + 1 };
    let n = n.map_or(implied, |forced| forced.max(implied));
    let mut b = GraphBuilder::new(n).dedup(false).allow_self_loops(true);
    b.extend(edges);
    Ok(b.build())
}

/// Write a graph as a text edge list.
pub fn write_edge_list<W: Write>(w: &mut W, g: &CsrGraph) -> io::Result<()> {
    writeln!(w, "# obfs edge list: n={} m={}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use std::io::BufReader;

    #[test]
    fn roundtrip() {
        let g = gen::barabasi_albert(60, 2, 4);
        let mut buf = Vec::new();
        write_edge_list(&mut buf, &g).unwrap();
        let back = read_edge_list(BufReader::new(buf.as_slice()), None).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let g = read_edge_list(
            BufReader::new("# header\n\n0 1\n# mid\n1 2\n".as_bytes()),
            None,
        )
        .unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn forced_n_adds_isolated_vertices() {
        let g = read_edge_list(BufReader::new("0 1\n".as_bytes()), Some(10)).unwrap();
        assert_eq!(g.num_vertices(), 10);
        // forced n smaller than implied is ignored
        let g2 = read_edge_list(BufReader::new("0 5\n".as_bytes()), Some(2)).unwrap();
        assert_eq!(g2.num_vertices(), 6);
    }

    #[test]
    fn empty_input() {
        let g = read_edge_list(BufReader::new("".as_bytes()), None).unwrap();
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    fn rejects_malformed() {
        assert!(read_edge_list(BufReader::new("0\n".as_bytes()), None).is_err());
        assert!(read_edge_list(BufReader::new("0 1 2\n".as_bytes()), None).is_err());
        assert!(read_edge_list(BufReader::new("a b\n".as_bytes()), None).is_err());
    }

    #[test]
    fn preserves_duplicates_and_self_loops() {
        let g = read_edge_list(BufReader::new("0 0\n0 1\n0 1\n".as_bytes()), None).unwrap();
        assert_eq!(g.num_edges(), 3);
    }
}
