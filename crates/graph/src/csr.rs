//! Compressed-sparse-row graph storage.

use crate::VertexId;

/// A directed graph in CSR form.
///
/// `offsets` has `n + 1` entries; the out-neighbours of vertex `v` are
/// `targets[offsets[v] .. offsets[v + 1]]`. Both arrays are immutable after
/// construction, which is what lets every BFS worker traverse the structure
/// concurrently without synchronization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    offsets: Box<[u64]>,
    targets: Box<[VertexId]>,
}

impl CsrGraph {
    /// Build from raw CSR arrays. Panics if the arrays are inconsistent.
    pub fn from_raw(offsets: Vec<u64>, targets: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as u64,
            "last offset must equal the edge count"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let n = offsets.len() - 1;
        assert!(n <= VertexId::MAX as usize, "vertex count exceeds u32 id space");
        assert!(
            targets.iter().all(|&t| (t as usize) < n),
            "edge target out of range"
        );
        Self { offsets: offsets.into_boxed_slice(), targets: targets.into_boxed_slice() }
    }

    /// Build from an edge list by counting sort (O(n + m), stable).
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        assert!(n <= VertexId::MAX as usize, "vertex count exceeds u32 id space");
        let mut offsets = vec![0u64; n + 1];
        for &(u, v) in edges {
            assert!((u as usize) < n && (v as usize) < n, "edge ({u},{v}) out of range for n={n}");
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; edges.len()];
        for &(u, v) in edges {
            let c = &mut cursor[u as usize];
            targets[*c as usize] = v;
            *c += 1;
        }
        Self { offsets: offsets.into_boxed_slice(), targets: targets.into_boxed_slice() }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges.
    #[inline]
    pub fn num_edges(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Out-neighbours of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Start offset of `v`'s adjacency list in [`Self::targets_raw`].
    /// The scale-free BFS variants use this to split a hub's adjacency
    /// list into per-thread chunks.
    #[inline]
    pub fn adjacency_start(&self, v: VertexId) -> u64 {
        self.offsets[v as usize]
    }

    /// The raw target array (shared read-only by all BFS workers).
    #[inline]
    pub fn targets_raw(&self) -> &[VertexId] {
        &self.targets
    }

    /// The raw offset array.
    #[inline]
    pub fn offsets_raw(&self) -> &[u64] {
        &self.offsets
    }

    /// Iterate `(source, target)` over every directed edge.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId)
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// The transpose graph (all edges reversed). O(n + m).
    pub fn transpose(&self) -> CsrGraph {
        let n = self.num_vertices();
        let mut offsets = vec![0u64; n + 1];
        for &t in self.targets.iter() {
            offsets[t as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for u in 0..n as VertexId {
            for &v in self.neighbors(u) {
                let c = &mut cursor[v as usize];
                targets[*c as usize] = u;
                *c += 1;
            }
        }
        CsrGraph { offsets: offsets.into_boxed_slice(), targets: targets.into_boxed_slice() }
    }

    /// Maximum out-degree and one vertex attaining it; `(0, 0)` when empty.
    pub fn max_degree(&self) -> (usize, VertexId) {
        let mut best = 0usize;
        let mut arg = 0 as VertexId;
        for v in 0..self.num_vertices() as VertexId {
            let d = self.degree(v);
            if d > best {
                best = d;
                arg = v;
            }
        }
        (best, arg)
    }

    /// Whether each adjacency list is sorted ascending (builder output is).
    pub fn is_sorted(&self) -> bool {
        (0..self.num_vertices() as VertexId)
            .all(|v| self.neighbors(v).windows(2).all(|w| w[0] <= w[1]))
    }

    /// Whether the graph equals its transpose (every edge has its
    /// reverse, with matching multiplicity). The undirected-graph
    /// analyses in `obfs-apps` require this.
    pub fn is_symmetric(&self) -> bool {
        // Compare sorted adjacency of the graph and its transpose.
        let t = self.transpose();
        (0..self.num_vertices() as VertexId).all(|v| {
            let mut a = self.neighbors(v).to_vec();
            let mut b = t.neighbors(v).to_vec();
            a.sort_unstable();
            b.sort_unstable();
            a == b
        })
    }

    /// A symmetrized copy: every edge plus its reverse, deduplicated,
    /// self-loops removed.
    pub fn symmetrized(&self) -> CsrGraph {
        let mut b = crate::GraphBuilder::new(self.num_vertices()).symmetrize(true);
        b.reserve(self.targets.len());
        b.extend(self.edges());
        b.build()
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        CsrGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn from_edges_basic() {
        let g = diamond();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[3]);
        assert_eq!(g.neighbors(2), &[3]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn counting_sort_is_stable() {
        // Duplicate edges must be preserved in input order per source.
        let g = CsrGraph::from_edges(3, &[(0, 2), (0, 1), (0, 2)]);
        assert_eq!(g.neighbors(0), &[2, 1, 2]);
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(3, &[]);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.neighbors(1), &[] as &[VertexId]);
        let g0 = CsrGraph::from_edges(0, &[]);
        assert_eq!(g0.num_vertices(), 0);
    }

    #[test]
    fn transpose_involution() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn transpose_preserves_edge_count() {
        let edges = [(0, 1), (1, 0), (2, 2), (2, 0), (1, 2)];
        let g = CsrGraph::from_edges(3, &edges);
        assert_eq!(g.transpose().num_edges(), g.num_edges());
    }

    #[test]
    fn edges_iterator_roundtrip() {
        let edges = vec![(0, 1), (0, 2), (1, 3), (2, 3)];
        let g = CsrGraph::from_edges(4, &edges);
        let got: Vec<_> = g.edges().collect();
        assert_eq!(got, edges);
    }

    #[test]
    fn max_degree_finds_hub() {
        let g = CsrGraph::from_edges(5, &[(2, 0), (2, 1), (2, 3), (2, 4), (0, 1)]);
        assert_eq!(g.max_degree(), (4, 2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edge() {
        let _ = CsrGraph::from_edges(2, &[(0, 5)]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_raw_rejects_decreasing_offsets() {
        let _ = CsrGraph::from_raw(vec![0, 2, 1, 3], vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "edge count")]
    fn from_raw_rejects_bad_total() {
        let _ = CsrGraph::from_raw(vec![0, 1], vec![0, 0]);
    }

    #[test]
    fn from_raw_accepts_valid() {
        let g = CsrGraph::from_raw(vec![0, 2, 2, 3], vec![1, 2, 0]);
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.memory_bytes() > 0);
    }

    #[test]
    fn symmetry_check_and_symmetrize() {
        let asym = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(!asym.is_symmetric());
        let sym = asym.symmetrized();
        assert!(sym.is_symmetric());
        assert_eq!(sym.neighbors(1), &[0, 2]);
        // Already-symmetric graphs are fixed points (after dedup).
        assert_eq!(sym.symmetrized(), sym);
        // Empty graph is trivially symmetric.
        assert!(CsrGraph::from_edges(2, &[]).is_symmetric());
    }

    #[test]
    fn self_loops_allowed_in_csr() {
        let g = CsrGraph::from_edges(2, &[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(g.neighbors(0), &[0, 1]);
        assert_eq!(g.neighbors(1), &[1]);
    }
}
