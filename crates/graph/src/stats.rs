//! Graph statistics: the measurements behind the paper's Table IV.
//!
//! Includes a self-contained serial BFS (this crate sits below
//! `obfs-core`, so it cannot use the parallel algorithms) used for
//! reachability and pseudo-diameter sweeps.

use crate::{CsrGraph, VertexId};
use obfs_util::Xoshiro256StarStar;
use std::collections::VecDeque;

/// Level of unvisited vertices in [`bfs_levels`] output.
pub const UNREACHED: u32 = u32::MAX;

/// Plain serial BFS from `src`; returns per-vertex levels (`UNREACHED`
/// for vertices not reachable from `src`).
pub fn bfs_levels(g: &CsrGraph, src: VertexId) -> Vec<u32> {
    let n = g.num_vertices();
    assert!((src as usize) < n, "source out of range");
    let mut level = vec![UNREACHED; n];
    let mut q = VecDeque::new();
    level[src as usize] = 0;
    q.push_back(src);
    while let Some(u) = q.pop_front() {
        let next = level[u as usize] + 1;
        for &v in g.neighbors(u) {
            if level[v as usize] == UNREACHED {
                level[v as usize] = next;
                q.push_back(v);
            }
        }
    }
    level
}

/// The deepest BFS level reached from `src` (0 if nothing else reachable),
/// plus the number of reached vertices.
pub fn eccentricity(g: &CsrGraph, src: VertexId) -> (u32, usize) {
    let levels = bfs_levels(g, src);
    let mut depth = 0;
    let mut reached = 0usize;
    for &l in &levels {
        if l != UNREACHED {
            reached += 1;
            depth = depth.max(l);
        }
    }
    (depth, reached)
}

/// BFS pseudo-diameter: repeated eccentricity sweeps from the deepest
/// vertex found so far (the standard double-sweep heuristic, `rounds`
/// iterations). This mirrors "the maximum diameter explored by the BFS"
/// reported in the paper's Table IV.
pub fn pseudo_diameter(g: &CsrGraph, src: VertexId, rounds: usize) -> u32 {
    let mut best = 0u32;
    let mut from = src;
    for _ in 0..rounds.max(1) {
        let levels = bfs_levels(g, from);
        let mut far = from;
        let mut depth = 0u32;
        for (v, &l) in levels.iter().enumerate() {
            if l != UNREACHED && l > depth {
                depth = l;
                far = v as VertexId;
            }
        }
        if depth <= best {
            break;
        }
        best = depth;
        from = far;
    }
    best
}

/// Degree histogram: `hist[d]` = number of vertices with out-degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let (dmax, _) = g.max_degree();
    let mut hist = vec![0usize; dmax + 1];
    for v in 0..g.num_vertices() as VertexId {
        hist[g.degree(v)] += 1;
    }
    hist
}

/// Maximum-likelihood power-law exponent estimate (Clauset et al.) over
/// vertices with degree >= `dmin`. Returns `None` if fewer than 10 such
/// vertices exist.
pub fn power_law_exponent(g: &CsrGraph, dmin: usize) -> Option<f64> {
    assert!(dmin >= 1);
    let mut count = 0usize;
    let mut log_sum = 0.0f64;
    for v in 0..g.num_vertices() as VertexId {
        let d = g.degree(v);
        if d >= dmin {
            count += 1;
            // Continuous MLE with the standard -1/2 discreteness correction.
            log_sum += (d as f64 / (dmin as f64 - 0.5)).ln();
        }
    }
    if count < 10 {
        return None;
    }
    Some(1.0 + count as f64 / log_sum)
}

/// A random source vertex with non-zero out-degree (the paper samples
/// 1000 such sources per graph). Returns `None` if the graph has no edges.
pub fn random_nonzero_source(g: &CsrGraph, rng: &mut Xoshiro256StarStar) -> Option<VertexId> {
    if g.num_edges() == 0 {
        return None;
    }
    loop {
        let v = rng.below_usize(g.num_vertices()) as VertexId;
        if g.degree(v) > 0 {
            return Some(v);
        }
    }
}

/// Sample `k` sources with non-zero out-degree (with replacement).
pub fn sample_sources(g: &CsrGraph, k: usize, seed: u64) -> Vec<VertexId> {
    let mut rng = Xoshiro256StarStar::new(seed);
    (0..k)
        .map(|_| random_nonzero_source(g, &mut rng).expect("graph has no edges"))
        .collect()
}

/// Summary row for Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSummary {
    /// Vertex count.
    pub n: usize,
    /// Directed edge count.
    pub m: u64,
    /// Mean out-degree.
    pub avg_degree: f64,
    /// Maximum out-degree.
    pub max_degree: usize,
    /// Double-sweep BFS pseudo-diameter.
    pub pseudo_diameter: u32,
    /// Vertices reachable from the first non-isolated vertex.
    pub reached_from_0: usize,
    /// MLE power-law exponent over degrees >= 4, if estimable.
    pub power_law_gamma: Option<f64>,
}

/// Compute the full summary (one serial BFS sweep set; O(m) per sweep).
pub fn summarize(g: &CsrGraph) -> GraphSummary {
    let n = g.num_vertices();
    let m = g.num_edges();
    let (max_degree, _) = g.max_degree();
    let src = (0..n as VertexId).find(|&v| g.degree(v) > 0).unwrap_or(0);
    let (_, reached) = eccentricity(g, src);
    GraphSummary {
        n,
        m,
        avg_degree: if n == 0 { 0.0 } else { m as f64 / n as f64 },
        max_degree,
        pseudo_diameter: pseudo_diameter(g, src, 4),
        reached_from_0: reached,
        power_law_gamma: power_law_exponent(g, 4),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn bfs_levels_on_path() {
        let g = gen::path(5);
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        let l = bfs_levels(&g, 0);
        assert_eq!(l[0], 0);
        assert_eq!(l[1], 1);
        assert_eq!(l[2], UNREACHED);
        assert_eq!(l[3], UNREACHED);
    }

    #[test]
    fn directed_edges_are_one_way() {
        let g = CsrGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(bfs_levels(&g, 1), vec![UNREACHED, 0]);
    }

    #[test]
    fn eccentricity_and_diameter_on_cycle() {
        let g = gen::cycle(10);
        let (ecc, reached) = eccentricity(&g, 0);
        assert_eq!(ecc, 5);
        assert_eq!(reached, 10);
        assert_eq!(pseudo_diameter(&g, 0, 4), 5);
    }

    #[test]
    fn pseudo_diameter_finds_path_ends() {
        let g = gen::path(50);
        // Starting from the middle, the double sweep must find the true
        // diameter 49.
        assert_eq!(pseudo_diameter(&g, 25, 3), 49);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::barabasi_albert(300, 2, 1);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 300);
    }

    #[test]
    fn power_law_estimate_close_for_synthetic() {
        let w = gen::power_law_degrees(30_000, 2.5, 4, 500, 9);
        let n = w.len();
        let g = gen::chung_lu(n, &w, 10);
        let gamma = power_law_exponent(&g, 8).expect("enough tail vertices");
        assert!(
            (1.8..=3.2).contains(&gamma),
            "estimated gamma {gamma:.2} implausible for target 2.5"
        );
    }

    #[test]
    fn power_law_none_for_tiny() {
        let g = gen::path(5);
        assert_eq!(power_law_exponent(&g, 10), None);
    }

    #[test]
    fn sources_have_outgoing_edges() {
        let g = gen::star(50);
        for s in sample_sources(&g, 20, 3) {
            assert!(g.degree(s) > 0);
        }
    }

    #[test]
    fn summarize_consistency() {
        let g = gen::torus3d(5, 5, 5);
        let s = summarize(&g);
        assert_eq!(s.n, 125);
        assert_eq!(s.m, 750);
        assert_eq!(s.max_degree, 6);
        assert!((s.avg_degree - 6.0).abs() < 1e-9);
        assert_eq!(s.reached_from_0, 125);
        // Torus 5x5x5 diameter = 2+2+2 = 6
        assert_eq!(s.pseudo_diameter, 6);
    }
}
