//! Graph substrate for the optimistic-BFS reproduction.
//!
//! * [`CsrGraph`] — compressed-sparse-row adjacency storage with `u32`
//!   vertex ids, the representation every BFS algorithm in the workspace
//!   traverses.
//! * [`GraphBuilder`] — edge-list accumulation with dedup / self-loop /
//!   symmetrization options, finalized into CSR by counting sort.
//! * [`gen`] — deterministic synthetic generators: RMAT (Graph500
//!   parameters), Erdős–Rényi, Chung-Lu power law, Barabási–Albert, grids
//!   and tori, and the paper-graph stand-in suite (`gen::suite`).
//! * [`io`] — Matrix Market, text edge-list and binary CSR formats, so the
//!   original Florida Sparse Matrix Collection files can be dropped in.
//! * [`stats`] — degree distributions, power-law exponent fit, BFS
//!   pseudo-diameter and reachability (regenerates the paper's Table IV).

#![warn(missing_docs)]

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;

/// Vertex identifier. Graphs in the evaluation have < 2^32 vertices; using
/// `u32` halves frontier-queue memory traffic exactly as the original
/// implementation's `int` ids did.
pub type VertexId = u32;

/// Marker for "no vertex" in parent arrays and similar.
pub const INVALID_VERTEX: VertexId = VertexId::MAX;
