//! Socket topology description for NUMA-aware policies (paper §IV-C).
//!
//! The paper's NUMA extension changes *victim selection*: an idle thread
//! prefers stealing from (or migrating to queues of) threads on its own
//! socket, falling back to remote sockets only when the local ones are
//! exhausted. [`Topology`] captures the worker→socket map and produces
//! the preference-ordered victim sequence; the work-stealing BFS variants
//! consume it as a pluggable policy.

use obfs_util::Xoshiro256StarStar;

/// Maps worker ids to sockets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// `socket_of[tid]` = socket index of worker `tid`.
    socket_of: Vec<usize>,
    sockets: usize,
}

impl Topology {
    /// Single-socket topology: every worker is local to every other (the
    /// default; NUMA preference degenerates to uniform random choice).
    pub fn uniform(threads: usize) -> Self {
        assert!(threads >= 1);
        Self { socket_of: vec![0; threads], sockets: 1 }
    }

    /// `sockets` sockets with `threads` workers distributed round-robin
    /// blocks: worker `t` sits on socket `t / ceil(threads/sockets)`.
    pub fn blocked(threads: usize, sockets: usize) -> Self {
        assert!(threads >= 1 && sockets >= 1);
        let per = obfs_util::div_ceil(threads, sockets);
        let socket_of: Vec<usize> = (0..threads).map(|t| t / per).collect();
        let sockets = socket_of.last().map_or(1, |&s| s + 1);
        Self { socket_of, sockets }
    }

    /// Explicit worker→socket assignment.
    pub fn explicit(socket_of: Vec<usize>) -> Self {
        assert!(!socket_of.is_empty());
        let sockets = socket_of.iter().max().unwrap() + 1;
        Self { socket_of, sockets }
    }

    /// Number of workers described.
    pub fn threads(&self) -> usize {
        self.socket_of.len()
    }

    /// Number of sockets described.
    pub fn sockets(&self) -> usize {
        self.sockets
    }

    /// Socket index of worker `tid`.
    pub fn socket_of(&self, tid: usize) -> usize {
        self.socket_of[tid]
    }

    /// Whether two workers share a socket.
    pub fn same_socket(&self, a: usize, b: usize) -> bool {
        self.socket_of[a] == self.socket_of[b]
    }

    /// Victim preference order for a steal attempt by `thief`: all
    /// same-socket peers in random order, then all remote peers in random
    /// order. `thief` itself is excluded.
    pub fn steal_order(&self, thief: usize, rng: &mut Xoshiro256StarStar) -> Vec<usize> {
        let mut local: Vec<usize> = Vec::new();
        let mut remote: Vec<usize> = Vec::new();
        for t in 0..self.threads() {
            if t == thief {
                continue;
            }
            if self.same_socket(thief, t) {
                local.push(t);
            } else {
                remote.push(t);
            }
        }
        rng.shuffle(&mut local);
        rng.shuffle(&mut remote);
        local.extend(remote);
        local
    }

    /// A uniformly random victim != thief (the paper's non-NUMA policy).
    /// Returns `None` for a single-worker topology.
    pub fn random_victim(&self, thief: usize, rng: &mut Xoshiro256StarStar) -> Option<usize> {
        let p = self.threads();
        if p <= 1 {
            return None;
        }
        let mut v = rng.below_usize(p - 1);
        if v >= thief {
            v += 1;
        }
        Some(v)
    }

    /// Socket-preferring random victim: with probability `local_bias`
    /// pick a random same-socket peer (if any), otherwise uniform remote.
    pub fn numa_victim(
        &self,
        thief: usize,
        local_bias: f64,
        rng: &mut Xoshiro256StarStar,
    ) -> Option<usize> {
        let locals: Vec<usize> = (0..self.threads())
            .filter(|&t| t != thief && self.same_socket(thief, t))
            .collect();
        if !locals.is_empty() && rng.chance(local_bias) {
            return Some(locals[rng.below_usize(locals.len())]);
        }
        self.random_victim(thief, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_is_one_socket() {
        let t = Topology::uniform(8);
        assert_eq!(t.sockets(), 1);
        assert!(t.same_socket(0, 7));
    }

    #[test]
    fn blocked_layout() {
        // 12 threads over 2 sockets -> 6 per socket (Lonestar node shape).
        let t = Topology::blocked(12, 2);
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.socket_of(0), 0);
        assert_eq!(t.socket_of(5), 0);
        assert_eq!(t.socket_of(6), 1);
        assert!(!t.same_socket(5, 6));
    }

    #[test]
    fn blocked_uneven() {
        let t = Topology::blocked(5, 2); // per = 3 -> sockets 0,0,0,1,1
        assert_eq!(t.sockets(), 2);
        assert_eq!(t.socket_of(2), 0);
        assert_eq!(t.socket_of(3), 1);
    }

    #[test]
    fn steal_order_prefers_local() {
        let t = Topology::blocked(8, 2);
        let mut rng = Xoshiro256StarStar::new(1);
        let order = t.steal_order(1, &mut rng);
        assert_eq!(order.len(), 7);
        assert!(!order.contains(&1));
        // First 3 victims must be socket-0 peers (0, 2, 3 in some order).
        for &v in &order[..3] {
            assert!(t.same_socket(1, v), "victim {v} not local");
        }
        for &v in &order[3..] {
            assert!(!t.same_socket(1, v), "victim {v} unexpectedly local");
        }
    }

    #[test]
    fn random_victim_never_self_and_covers_all() {
        let t = Topology::uniform(4);
        let mut rng = Xoshiro256StarStar::new(2);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            let v = t.random_victim(2, &mut rng).unwrap();
            assert_ne!(v, 2);
            seen[v] = true;
        }
        assert!(seen[0] && seen[1] && seen[3]);
        assert!(!seen[2]);
    }

    #[test]
    fn random_victim_single_thread_none() {
        let t = Topology::uniform(1);
        let mut rng = Xoshiro256StarStar::new(3);
        assert_eq!(t.random_victim(0, &mut rng), None);
    }

    #[test]
    fn numa_victim_bias() {
        let t = Topology::blocked(8, 2);
        let mut rng = Xoshiro256StarStar::new(4);
        let mut local_hits = 0;
        const N: usize = 2000;
        for _ in 0..N {
            let v = t.numa_victim(0, 0.9, &mut rng).unwrap();
            if t.same_socket(0, v) {
                local_hits += 1;
            }
        }
        // 0.9 bias + (0.1 * 3/7 remote-path-local): expect > 85% local.
        assert!(local_hits as f64 > 0.85 * N as f64, "only {local_hits}/{N} local");
    }

    #[test]
    fn explicit_assignment() {
        let t = Topology::explicit(vec![0, 1, 0, 1]);
        assert_eq!(t.sockets(), 2);
        assert!(t.same_socket(0, 2));
        assert!(!t.same_socket(0, 1));
    }
}
