//! Persistent level-synchronous worker pool.
//!
//! A [`LevelPool`] owns `p` OS threads for its whole lifetime. Each call to
//! [`LevelPool::run`] hands every worker the same closure (called with a
//! [`WorkerCtx`] carrying the worker id and a shared [`SpinBarrier`]) and
//! blocks until all workers return. BFS algorithms implement their level
//! loop *inside* the closure, using `ctx.barrier()` between levels — this
//! matches the paper's structure where worker threads live across all BFS
//! levels and only synchronize at level boundaries.
//!
//! Between `run` calls the workers sleep on a condvar (no idle spinning),
//! so pools can be kept alive across an entire benchmark suite.

use obfs_sync::SpinBarrier;
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

/// Type-erased pointer to the caller's closure. Valid only while the
/// `run` call that published it is still blocked waiting for workers.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn for<'a> Fn(WorkerCtx<'a>) + Sync));

// SAFETY: the pointee is `Sync` (asserted at creation in `run`) and the
// pointer is only dereferenced while the publishing `run` call keeps the
// referent alive.
unsafe impl Send for JobPtr {}

struct State {
    job: Option<JobPtr>,
    /// Bumped once per `run` call; workers use it to detect fresh work.
    generation: u64,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
    barrier: SpinBarrier,
    threads: usize,
}

/// Per-invocation context handed to the worker closure.
pub struct WorkerCtx<'a> {
    tid: usize,
    shared: &'a Shared,
}

impl WorkerCtx<'_> {
    /// This worker's id in `[0, threads)`.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Total number of workers in the pool.
    #[inline]
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// The pool-wide reusable barrier (all workers participate).
    #[inline]
    pub fn barrier(&self) -> &SpinBarrier {
        &self.shared.barrier
    }
}

/// A persistent pool of `p` worker threads for level-synchronous
/// algorithms.
pub struct LevelPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LevelPool {
    /// Spawn a pool with `threads >= 1` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State { job: None, generation: 0, active: 0, shutdown: false }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            barrier: SpinBarrier::new(threads),
            threads,
        });
        let handles = (0..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("obfs-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Run `f` once on every worker (as `f(ctx)` with distinct
    /// `ctx.tid()`), blocking until all invocations return.
    ///
    /// Panics in workers are currently fatal for the process (BFS worker
    /// closures are not expected to panic; a panic indicates a bug, and
    /// poisoning semantics would complicate every algorithm for no
    /// benefit).
    pub fn run<F>(&self, f: F)
    where
        F: Fn(WorkerCtx<'_>) + Sync,
    {
        // Erase the closure's lifetime. SAFETY: we block below until every
        // worker has finished running `f`, so the referent outlives all
        // uses; `F: Sync` makes concurrent invocation sound.
        let local: &(dyn for<'a> Fn(WorkerCtx<'a>) + Sync) = &f;
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                &(dyn for<'a> Fn(WorkerCtx<'a>) + Sync),
                *const (dyn for<'a> Fn(WorkerCtx<'a>) + Sync),
            >(local)
        });
        let mut st = self.shared.state.lock();
        debug_assert!(st.active == 0 && st.job.is_none(), "run() is not reentrant");
        st.job = Some(job);
        st.generation += 1;
        st.active = self.shared.threads;
        self.shared.work_ready.notify_all();
        while st.active != 0 {
            self.shared.work_done.wait(&mut st);
        }
        st.job = None;
    }
}

impl Drop for LevelPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    break st.job.expect("generation bumped without a job");
                }
                shared.work_ready.wait(&mut st);
            }
        };
        // SAFETY: the publishing `run` call blocks until we decrement
        // `active` below, keeping the closure alive.
        let f = unsafe { &*job.0 };
        f(WorkerCtx { tid, shared });
        let mut st = shared.state.lock();
        st.active -= 1;
        if st.active == 0 {
            shared.work_done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_once_with_distinct_tid() {
        let pool = LevelPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.run(|ctx| {
            assert_eq!(ctx.threads(), 4);
            hits[ctx.tid()].fetch_add(1, Ordering::Relaxed);
        });
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = LevelPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn run_borrows_stack_data() {
        let pool = LevelPool::new(2);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.run(|ctx| {
            // Workers read stack-borrowed data from the caller's frame.
            let mine: u64 = data.iter().skip(ctx.tid()).step_by(2).sum();
            sum.fetch_add(mine as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn barrier_synchronizes_levels() {
        // Classic level test: all workers must see every other worker's
        // level-d write after the barrier.
        let pool = LevelPool::new(4);
        let levels = 20;
        let board: Vec<AtomicUsize> = (0..levels).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|ctx| {
            for l in 0..levels {
                board[l].fetch_add(1, Ordering::Relaxed);
                ctx.barrier().wait();
                assert_eq!(board[l].load(Ordering::Relaxed), 4, "level {l} desynchronized");
                ctx.barrier().wait();
            }
        });
    }

    #[test]
    fn single_worker_pool() {
        let pool = LevelPool::new(1);
        pool.run(|ctx| {
            assert_eq!(ctx.tid(), 0);
            ctx.barrier().wait(); // must not deadlock
        });
        pool.run(|_| {});
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = LevelPool::new(0);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = LevelPool::new(8);
        pool.run(|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn many_threads_oversubscribed() {
        // More workers than cores: the pool must still make progress.
        let pool = LevelPool::new(32);
        let counter = AtomicUsize::new(0);
        pool.run(|ctx| {
            counter.fetch_add(ctx.tid() + 1, Ordering::Relaxed);
            ctx.barrier().wait();
        });
        assert_eq!(counter.load(Ordering::Relaxed), 32 * 33 / 2);
    }
}
