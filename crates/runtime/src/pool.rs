//! Persistent level-synchronous worker pool.
//!
//! A [`LevelPool`] owns `p` OS threads for its whole lifetime. Each call to
//! [`LevelPool::run`] hands every worker the same closure (called with a
//! [`WorkerCtx`] carrying the worker id and a shared [`SpinBarrier`]) and
//! blocks until all workers return. BFS algorithms implement their level
//! loop *inside* the closure, using `ctx.barrier()` between levels — this
//! matches the paper's structure where worker threads live across all BFS
//! levels and only synchronize at level boundaries.
//!
//! Between `run` calls the workers sleep on a condvar (no idle spinning),
//! so pools can be kept alive across an entire benchmark suite.
//!
//! # Panic safety
//!
//! A panic in one worker used to strand its peers at the sense-reversing
//! barrier forever. Now every worker invocation runs under
//! `catch_unwind`; the first panic poisons the pool's barrier (releasing
//! any spinning peers, which unwind in turn and are also caught) and
//! [`LevelPool::run`] returns [`PoolError::WorkerPanicked`] instead of
//! deadlocking. The pool itself is poisoned afterwards — subsequent `run`
//! calls fail fast with [`PoolError::Poisoned`] — because a half-executed
//! level loop leaves algorithm state unrecoverable.

use obfs_sync::barrier::POISON_MSG;
use obfs_sync::SpinBarrier;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Why a [`LevelPool::run`] call failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PoolError {
    /// A worker closure panicked during this run; `message` is the
    /// stringified payload of the first panic observed.
    WorkerPanicked {
        /// Worker id whose closure panicked first.
        tid: usize,
        /// Stringified panic payload.
        message: String,
    },
    /// The pool was poisoned by a panic in an earlier run.
    Poisoned,
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::WorkerPanicked { tid, message } => {
                write!(f, "worker {tid} panicked: {message}")
            }
            PoolError::Poisoned => write!(f, "pool poisoned by an earlier worker panic"),
        }
    }
}

impl std::error::Error for PoolError {}

/// Type-erased pointer to the caller's closure. Valid only while the
/// `run` call that published it is still blocked waiting for workers.
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn for<'a> Fn(WorkerCtx<'a>) + Sync));

// SAFETY: the pointee is `Sync` (asserted at creation in `run`) and the
// pointer is only dereferenced while the publishing `run` call keeps the
// referent alive.
unsafe impl Send for JobPtr {}

struct State {
    job: Option<JobPtr>,
    /// Bumped once per `run` call; workers use it to detect fresh work.
    generation: u64,
    /// Workers still executing the current job.
    active: usize,
    shutdown: bool,
    /// First worker panic observed (tid, stringified payload).
    panic: Option<(usize, String)>,
    /// Set once any worker panicked; all later runs fail fast.
    poisoned: bool,
}

struct Shared {
    state: Mutex<State>,
    work_ready: Condvar,
    work_done: Condvar,
    barrier: SpinBarrier,
    threads: usize,
}

impl Shared {
    /// Lock the state, recovering from std mutex poisoning (our own
    /// invariants never depend on it: the lock is only held for short
    /// non-panicking critical sections).
    fn lock_state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Per-invocation context handed to the worker closure.
pub struct WorkerCtx<'a> {
    tid: usize,
    shared: &'a Shared,
}

impl WorkerCtx<'_> {
    /// This worker's id in `[0, threads)`.
    #[inline]
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Total number of workers in the pool.
    #[inline]
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// The pool-wide reusable barrier (all workers participate).
    #[inline]
    pub fn barrier(&self) -> &SpinBarrier {
        &self.shared.barrier
    }
}

/// A persistent pool of `p` worker threads for level-synchronous
/// algorithms.
pub struct LevelPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LevelPool {
    /// Spawn a pool with `threads >= 1` workers.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                job: None,
                generation: 0,
                active: 0,
                shutdown: false,
                panic: None,
                poisoned: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
            barrier: SpinBarrier::new(threads),
            threads,
        });
        let handles = (0..threads)
            .map(|tid| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("obfs-worker-{tid}"))
                    .spawn(move || worker_loop(tid, &shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Number of workers.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Whether an earlier run's worker panic has poisoned this pool.
    pub fn is_poisoned(&self) -> bool {
        self.shared.lock_state().poisoned
    }

    /// Run `f` once on every worker (as `f(ctx)` with distinct
    /// `ctx.tid()`), blocking until all invocations return.
    ///
    /// If any worker closure panics, the pool's barrier is poisoned so
    /// peers cannot be stranded, every worker unwinds and is caught, and
    /// this returns [`PoolError::WorkerPanicked`] carrying the first
    /// panic's payload. The pool is unusable afterwards (subsequent calls
    /// return [`PoolError::Poisoned`]).
    pub fn run<F>(&self, f: F) -> Result<(), PoolError>
    where
        F: Fn(WorkerCtx<'_>) + Sync,
    {
        let local: &(dyn for<'a> Fn(WorkerCtx<'a>) + Sync) = &f;
        // Erase the closure's lifetime. SAFETY: we block below until every
        // worker has finished running `f`, so the referent outlives all
        // uses; `F: Sync` makes concurrent invocation sound.
        let job = JobPtr(unsafe {
            std::mem::transmute::<
                &(dyn for<'a> Fn(WorkerCtx<'a>) + Sync),
                *const (dyn for<'a> Fn(WorkerCtx<'a>) + Sync),
            >(local)
        });
        let mut st = self.shared.lock_state();
        if st.poisoned {
            return Err(PoolError::Poisoned);
        }
        debug_assert!(st.active == 0 && st.job.is_none(), "run() is not reentrant");
        st.job = Some(job);
        st.generation += 1;
        st.active = self.shared.threads;
        self.shared.work_ready.notify_all();
        while st.active != 0 {
            st = self.shared.work_done.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st.job = None;
        match st.panic.take() {
            Some((tid, message)) => Err(PoolError::WorkerPanicked { tid, message }),
            None => Ok(()),
        }
    }
}

impl Drop for LevelPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock_state();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Stringify a caught panic payload.
fn payload_msg(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload.downcast_ref::<String>().cloned().unwrap_or_else(|| "<non-string panic>".into())
    }
}

fn worker_loop(tid: usize, shared: &Shared) {
    let mut seen_generation = 0u64;
    loop {
        let job = {
            let mut st = shared.lock_state();
            loop {
                if st.shutdown {
                    return;
                }
                if st.generation != seen_generation {
                    seen_generation = st.generation;
                    break st.job.expect("generation bumped without a job");
                }
                st = shared.work_ready.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // SAFETY: the publishing `run` call blocks until we decrement
        // `active` below, keeping the closure alive.
        let f = unsafe { &*job.0 };
        let outcome = catch_unwind(AssertUnwindSafe(|| f(WorkerCtx { tid, shared })));
        if let Err(payload) = outcome {
            // A panicking closure never reaches its own instrumentation
            // teardown; drop any thread-local chaos plan or flight ring it
            // installed so the next run on this OS thread starts clean.
            let _ = obfs_sync::chaos::uninstall();
            let _ = obfs_sync::flight::uninstall();
            let _ = obfs_sync::metrics::uninstall();
            let _ = obfs_sync::cancel::uninstall_probe();
            let _ = obfs_telemetry::worker::uninstall();
            let message = payload_msg(payload.as_ref());
            {
                let mut st = shared.lock_state();
                st.poisoned = true;
                // Record only the originating panic, not the cascade of
                // poisoned-barrier panics it induces in peers.
                if st.panic.is_none() && message != POISON_MSG {
                    st.panic = Some((tid, message));
                }
            }
            // Release peers spinning at the barrier; they unwind with
            // POISON_MSG and land in this same handler.
            shared.barrier.poison();
        }
        let mut st = shared.lock_state();
        st.active -= 1;
        if st.active == 0 {
            shared.work_done.notify_one();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_once_with_distinct_tid() {
        let pool = LevelPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        pool.run(|ctx| {
            assert_eq!(ctx.threads(), 4);
            hits[ctx.tid()].fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn sequential_runs_reuse_workers() {
        let pool = LevelPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 150);
    }

    #[test]
    fn run_borrows_stack_data() {
        let pool = LevelPool::new(2);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        pool.run(|ctx| {
            // Workers read stack-borrowed data from the caller's frame.
            let mine: u64 = data.iter().skip(ctx.tid()).step_by(2).sum();
            sum.fetch_add(mine as usize, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn barrier_synchronizes_levels() {
        // Classic level test: all workers must see every other worker's
        // level-d write after the barrier.
        let pool = LevelPool::new(4);
        let levels = 20;
        let board: Vec<AtomicUsize> = (0..levels).map(|_| AtomicUsize::new(0)).collect();
        pool.run(|ctx| {
            for (l, slot) in board.iter().enumerate() {
                slot.fetch_add(1, Ordering::Relaxed);
                ctx.barrier().wait();
                assert_eq!(slot.load(Ordering::Relaxed), 4, "level {l} desynchronized");
                ctx.barrier().wait();
            }
        })
        .unwrap();
    }

    #[test]
    fn single_worker_pool() {
        let pool = LevelPool::new(1);
        pool.run(|ctx| {
            assert_eq!(ctx.tid(), 0);
            ctx.barrier().wait(); // must not deadlock
        })
        .unwrap();
        pool.run(|_| {}).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_rejected() {
        let _ = LevelPool::new(0);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = LevelPool::new(8);
        pool.run(|_| {}).unwrap();
        drop(pool); // must not hang
    }

    #[test]
    fn many_threads_oversubscribed() {
        // More workers than cores: the pool must still make progress.
        let pool = LevelPool::new(32);
        let counter = AtomicUsize::new(0);
        pool.run(|ctx| {
            counter.fetch_add(ctx.tid() + 1, Ordering::Relaxed);
            ctx.barrier().wait();
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 32 * 33 / 2);
    }

    /// Regression test for the former deadlock: a panic in one worker
    /// while the rest spin at the barrier must surface as an error, not
    /// strand the pool (`cargo test` would time out if it hung).
    #[test]
    fn panicking_worker_returns_error_instead_of_hanging() {
        let pool = LevelPool::new(4);
        let err = pool
            .run(|ctx| {
                if ctx.tid() == 2 {
                    panic!("injected worker failure");
                }
                // Peers head to the barrier and would spin forever
                // without poisoning.
                ctx.barrier().wait();
            })
            .expect_err("a worker panic must surface as PoolError");
        match err {
            PoolError::WorkerPanicked { tid, message } => {
                assert_eq!(tid, 2);
                assert!(message.contains("injected worker failure"), "got: {message:?}");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        assert!(pool.is_poisoned());
        // The pool is dead but must fail fast, not hang or panic.
        assert_eq!(pool.run(|_| {}), Err(PoolError::Poisoned));
        drop(pool); // and Drop must still join cleanly
    }

    /// Panics on every worker at once (no barrier involved) must also
    /// drain cleanly and report one originating panic.
    #[test]
    fn all_workers_panicking_reports_first() {
        let pool = LevelPool::new(8);
        let err = pool.run(|_| panic!("boom")).expect_err("must fail");
        match err {
            PoolError::WorkerPanicked { message, .. } => assert!(message.contains("boom")),
            other => panic!("unexpected error: {other:?}"),
        }
    }

    /// A panic *after* barrier rounds completes past waits already done.
    #[test]
    fn panic_after_barrier_rounds_still_reports() {
        let pool = LevelPool::new(4);
        let err = pool
            .run(|ctx| {
                ctx.barrier().wait();
                ctx.barrier().wait();
                if ctx.tid() == 0 {
                    panic!("late failure");
                }
                ctx.barrier().wait();
            })
            .expect_err("must fail");
        match err {
            PoolError::WorkerPanicked { tid, message } => {
                assert_eq!(tid, 0);
                assert!(message.contains("late failure"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
    }

    /// The panic handler must tear down the telemetry TLS hook along with
    /// the chaos/flight/metrics/cancel ones: a later run on the same OS
    /// thread must not flush into a dead run's counters. White-box: the
    /// poisoned flag is cleared directly so the probe job runs on the
    /// very threads that executed the panic handler (the public API
    /// rejects a poisoned pool, which would only ever probe fresh
    /// threads).
    #[test]
    fn panic_path_uninstalls_telemetry_hook() {
        let (clock, _hand) = obfs_sync::Clock::manual();
        let reg = obfs_telemetry::MetricsRegistry::new(clock);
        let run = obfs_telemetry::RunTelemetry::register(&reg);
        let pool = LevelPool::new(4);
        let err = pool
            .run(|_| {
                obfs_telemetry::worker::install(std::sync::Arc::clone(&run));
                obfs_telemetry::worker::flush_edges(7);
                panic!("injected failure with telemetry installed");
            })
            .expect_err("must fail");
        assert!(matches!(err, PoolError::WorkerPanicked { .. }));
        assert_eq!(run.edges.value(), 28, "all 4 workers flushed before panicking");
        pool.shared.lock_state().poisoned = false; // white-box revival
        pool.run(|_| {
            assert!(
                !obfs_telemetry::worker::is_active(),
                "telemetry hook leaked across the panic handler"
            );
            // A leaked handle would add the stale baseline here.
            obfs_telemetry::worker::flush_edges(1_000_000);
        })
        .unwrap();
        assert_eq!(run.edges.value(), 28, "no flushes recorded after teardown");
    }
}
