//! Pool lifecycle management: automatic rebuild after worker panics.
//!
//! A [`crate::LevelPool`] is deliberately single-use after a worker
//! panic — a half-executed level loop leaves algorithm state
//! unrecoverable, so the pool poisons itself and every later
//! [`crate::LevelPool::run`] fails fast. That is the right contract for
//! one traversal, but a long-lived query engine must survive a
//! poisoned pool: [`PoolManager`] wraps a pool and transparently
//! replaces it the next time one is requested, counting each
//! replacement so the engine can surface `pool_rebuilds` in its stats.
//!
//! The manager is deliberately lock-free *by ownership*: it is designed
//! to be owned by a single scheduler thread (`&mut self` everywhere),
//! so it needs no internal synchronization at all.

use crate::pool::LevelPool;

/// Owns a [`LevelPool`] and rebuilds it automatically once poisoned.
pub struct PoolManager {
    threads: usize,
    pool: LevelPool,
    rebuilds: u64,
}

impl PoolManager {
    /// Build a manager owning a fresh pool of `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self { threads, pool: LevelPool::new(threads), rebuilds: 0 }
    }

    /// The worker count every managed pool is built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A usable pool: the current one if healthy, otherwise a fresh
    /// replacement (the poisoned pool is dropped, which joins its
    /// surviving workers). Rebuilding is counted in
    /// [`PoolManager::rebuilds`].
    pub fn pool(&mut self) -> &LevelPool {
        if self.pool.is_poisoned() {
            self.pool = LevelPool::new(self.threads);
            self.rebuilds += 1;
        }
        &self.pool
    }

    /// How many times a poisoned pool has been replaced.
    pub fn rebuilds(&self) -> u64 {
        self.rebuilds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::PoolError;

    #[test]
    fn healthy_pool_is_reused_without_rebuilds() {
        let mut pm = PoolManager::new(3);
        assert_eq!(pm.threads(), 3);
        for _ in 0..5 {
            pm.pool().run(|_| {}).unwrap();
        }
        assert_eq!(pm.rebuilds(), 0);
    }

    #[test]
    fn poisoned_pool_is_rebuilt_on_next_request() {
        let mut pm = PoolManager::new(4);
        let err = pm
            .pool()
            .run(|ctx| {
                if ctx.tid() == 1 {
                    panic!("injected");
                }
                ctx.barrier().wait();
            })
            .expect_err("panic must surface");
        assert!(matches!(err, PoolError::WorkerPanicked { tid: 1, .. }));
        // The next request transparently hands out a working pool.
        pm.pool().run(|ctx| assert_eq!(ctx.threads(), 4)).unwrap();
        assert_eq!(pm.rebuilds(), 1);
        // A healthy pool is never replaced again.
        pm.pool().run(|_| {}).unwrap();
        assert_eq!(pm.rebuilds(), 1);
    }

    #[test]
    fn each_poisoning_counts_once() {
        let mut pm = PoolManager::new(2);
        for round in 1..=3u64 {
            let _ = pm.pool().run(|_| panic!("boom"));
            pm.pool().run(|_| {}).unwrap();
            assert_eq!(pm.rebuilds(), round);
        }
    }
}
