//! Execution substrate replacing the paper's cilk++ runtime.
//!
//! * [`LevelPool`] — a persistent pool of `p` workers that repeatedly run
//!   the same closure (one invocation per worker, identified by thread
//!   id). This is all the paper's own algorithms need: they do their own
//!   load balancing on top of `p` long-lived workers plus a level barrier.
//! * [`forkjoin::ForkJoinPool`] — a work-stealing task pool (per-worker
//!   deques, child stealing) used by the Leiserson–Schardl bag-based
//!   baseline, which *does* rely on a dynamic task scheduler.
//! * [`topology::Topology`] — a socket layout description driving the
//!   NUMA-aware victim-selection policy of paper §IV-C.
//! * [`manager::PoolManager`] — pool lifecycle management for the query
//!   engine: rebuilds a panic-poisoned [`LevelPool`] automatically and
//!   counts the rebuilds.

#![warn(missing_docs)]

pub mod forkjoin;
pub mod manager;
pub mod pool;
pub mod topology;

pub use forkjoin::{ForkJoinPool, TaskCtx};
pub use manager::PoolManager;
pub use pool::{LevelPool, PoolError, WorkerCtx};
pub use topology::Topology;
