//! A work-stealing fork-join task pool (the cilk++ stand-in for the
//! Leiserson–Schardl baseline).
//!
//! Tasks are `FnOnce(&TaskCtx)` closures that may spawn further tasks.
//! Scheduling is child-stealing over per-worker deques: each worker
//! pushes spawned tasks onto its own deque, pops LIFO locally, and steals
//! FIFO from peers when idle — the same policy family as cilk's
//! scheduler. The deques are mutex-guarded `VecDeque`s rather than
//! lock-free Chase–Lev deques: the baseline spawns coarse pennant-walk
//! tasks, so deque operations are nowhere near the contention levels that
//! would justify hand-rolling lock-free deques (and the workspace builds
//! with no external dependencies). A [`ForkJoinPool::scope`] call blocks
//! until *every* transitively spawned task has completed (tracked with a
//! single outstanding-task counter), so borrowed data in task closures is
//! sound; the caller's thread participates in execution while it waits.
//!
//! There is intentionally no join-with-result primitive: the baseline BFS
//! only needs "spawn and forget within a level, sync at the level
//! boundary", which is exactly `scope`.
//!
//! # Panic safety
//!
//! Every task runs under `catch_unwind`. A panicking task cannot wedge
//! the outstanding-task counter (it is decremented on the unwind path
//! too), so `scope` always terminates; the first panic's payload is then
//! re-raised on the calling thread when the scope completes, matching
//! `std::thread::scope` semantics.
//!
//! # Memory ordering
//!
//! The control plane uses the Arc-style split: `pending` increments are
//! `Relaxed` (the counter only gates termination), the decrement in
//! `run_task` is `AcqRel`, and the scope caller's exit load is
//! `Acquire` — observing 0 therefore happens-after every task body.
//! Everything else (`shutdown`, the idle-sleep heuristics) is `Relaxed`
//! because the mutex/condvar and `join()` provide the real
//! synchronization; the lint's ordering audit holds this file to
//! exactly that story.

use obfs_util::Xoshiro256StarStar;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};

type Task = Box<dyn FnOnce(&TaskCtx<'_>) + Send>;

/// A mutex-guarded double-ended task queue: LIFO for the owner, FIFO for
/// thieves (classic child-stealing discipline).
struct Deque(Mutex<VecDeque<Task>>);

impl Deque {
    fn new() -> Self {
        Self(Mutex::new(VecDeque::new()))
    }

    fn push(&self, t: Task) {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).push_back(t);
    }

    /// Owner side: newest first (depth-first descent keeps the working
    /// set warm).
    fn pop(&self) -> Option<Task> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).pop_back()
    }

    /// Thief side: oldest first (steals the biggest remaining subtrees).
    fn steal(&self) -> Option<Task> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
    }
}

struct Shared {
    /// Scope roots land here; any participant may pick them up.
    injector: Deque,
    /// One deque per participant; slot 0 belongs to the scope caller.
    deques: Vec<Deque>,
    /// Tasks spawned but not yet finished (across the whole scope).
    pending: AtomicUsize,
    shutdown: AtomicBool,
    /// First task panic observed in the current scope.
    panic: Mutex<Option<String>>,
    /// Sleep/wake for idle workers between scopes.
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    threads: usize,
}

/// Handed to every task; used to spawn subtasks and query identity.
pub struct TaskCtx<'p> {
    shared: &'p Shared,
    worker_id: usize,
}

impl TaskCtx<'_> {
    /// Worker executing this task, in `[0, threads)`; the scope caller's
    /// own thread executes with id 0. Ids are stable per OS thread for
    /// the lifetime of the pool.
    #[inline]
    pub fn worker_id(&self) -> usize {
        self.worker_id
    }

    /// Total workers participating in scopes (pool threads + caller).
    #[inline]
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Spawn a subtask into this worker's deque.
    ///
    /// The `'static` bound is a lie we keep private: `ForkJoinPool::scope`
    /// erases the caller's scope lifetime after proving the scope outlives
    /// all tasks. Public users go through `scope`, which restores the
    /// correct borrowing rules via the `'scope` closure bound.
    pub fn spawn(&self, task: impl FnOnce(&TaskCtx<'_>) + Send + 'static) {
        // Relaxed: increments only gate termination. A spawner is itself
        // an unfinished task, so its own pending decrement (AcqRel, in
        // `run_task`) is later in the counter's modification order than
        // this increment — a waiter can never observe 0 early.
        self.shared.pending.fetch_add(1, Ordering::Relaxed);
        self.shared.deques[self.worker_id].push(Box::new(task));
        self.shared.idle_cv.notify_one();
    }
}

/// A persistent work-stealing pool.
pub struct ForkJoinPool {
    shared: Arc<Shared>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ForkJoinPool {
    /// Pool where scopes execute on `threads >= 1` OS threads total
    /// (`threads - 1` background workers plus the calling thread).
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            injector: Deque::new(),
            deques: (0..threads).map(|_| Deque::new()).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            panic: Mutex::new(None),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            threads,
        });
        let handles = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("obfs-fj-{id}"))
                    .spawn(move || background_loop(id, &shared))
                    .expect("failed to spawn fork-join worker")
            })
            .collect();
        Self { shared, handles }
    }

    /// Total OS threads that execute scopes (workers + caller).
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Run `root` and every task it transitively spawns; return when all
    /// are done. The calling thread participates in execution.
    ///
    /// # Panics
    ///
    /// If any task panicked, the scope still runs to completion (the
    /// counter drains) and then re-raises the first panic's message on
    /// the calling thread.
    pub fn scope<'env, F>(&'env mut self, root: F)
    where
        F: FnOnce(&TaskCtx<'_>) + Send + 'env,
    {
        // SAFETY: `scope` does not return until `pending` drops to zero,
        // i.e. every spawned closure has run to completion, so extending
        // the closure lifetimes to 'static never lets one outlive its
        // borrows. `&mut self` prevents overlapping scopes on one pool.
        let root: Task = unsafe {
            std::mem::transmute::<
                Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'env>,
                Box<dyn FnOnce(&TaskCtx<'_>) + Send + 'static>,
            >(Box::new(root))
        };
        // Relaxed: same argument as `TaskCtx::spawn` — the caller's own
        // exit load below is program-ordered after this increment.
        self.shared.pending.fetch_add(1, Ordering::Relaxed);
        self.shared.injector.push(root);
        self.shared.idle_cv.notify_all();

        // The caller works too (essential when the pool has 1 thread).
        let ctx = TaskCtx { shared: &self.shared, worker_id: 0 };
        let mut rng = Xoshiro256StarStar::new(0xF0F0);
        // Observing 0 happens-after every task body's effects, so the
        // caller may read anything its tasks wrote once the loop exits.
        // ord: Acquire pairs with the AcqRel decrement in `run_task`
        while self.shared.pending.load(Ordering::Acquire) != 0 {
            if let Some(task) = find_task(&self.shared, 0, &mut rng) {
                run_task(task, &ctx, &self.shared);
            } else {
                std::thread::yield_now();
            }
        }
        let panicked =
            self.shared.panic.lock().unwrap_or_else(PoisonError::into_inner).take();
        if let Some(message) = panicked {
            panic!("fork-join task panicked: {message}");
        }
    }
}

impl Drop for ForkJoinPool {
    fn drop(&mut self) {
        // Relaxed: a pure termination flag — workers re-poll it every
        // loop and `join()` below is the actual synchronization point.
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.idle_cv.notify_all();
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Execute one task under `catch_unwind`, recording the first panic and
/// always decrementing the outstanding counter so scopes terminate.
fn run_task(task: Task, ctx: &TaskCtx<'_>, shared: &Shared) {
    if let Err(payload) = catch_unwind(AssertUnwindSafe(|| task(ctx))) {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else {
            payload.downcast_ref::<String>().cloned().unwrap_or_else(|| "<non-string panic>".into())
        };
        let mut slot = shared.panic.lock().unwrap_or_else(PoisonError::into_inner);
        slot.get_or_insert(message);
    }
    // The release half publishes this task's effects to whoever
    // observes the count hit 0 (the scope caller's Acquire load); the
    // acquire half chains earlier decrements so the final decrementer
    // also happens-after every other task.
    // ord: AcqRel — release publishes the task body, acquire chains prior decrements
    shared.pending.fetch_sub(1, Ordering::AcqRel);
}

/// Pop local, then steal from the injector, then from random peers.
fn find_task(shared: &Shared, id: usize, rng: &mut Xoshiro256StarStar) -> Option<Task> {
    if let Some(t) = shared.deques[id].pop() {
        return Some(t);
    }
    if let Some(t) = shared.injector.steal() {
        return Some(t);
    }
    // Random victim order, one full round.
    let p = shared.deques.len();
    let start = rng.below_usize(p);
    for k in 0..p {
        let victim = (start + k) % p;
        if victim == id {
            continue;
        }
        if let Some(t) = shared.deques[victim].steal() {
            return Some(t);
        }
    }
    None
}

fn background_loop(id: usize, shared: &Shared) {
    let ctx = TaskCtx { shared, worker_id: id };
    let mut rng = Xoshiro256StarStar::for_stream(0xBEE5, id as u64);
    let mut idle_rounds = 0u32;
    loop {
        // Relaxed: termination flag, re-polled each round (see Drop).
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        if let Some(task) = find_task(shared, id, &mut rng) {
            idle_rounds = 0;
            run_task(task, &ctx, shared);
        // Relaxed: a sleep heuristic, not a protocol edge — a stale
        // non-zero just spins once more, and a stale zero at worst naps
        // through one 50ms wait_timeout round before re-polling.
        } else if shared.pending.load(Ordering::Relaxed) == 0 {
            // Nothing anywhere: sleep until a scope starts.
            let guard = shared.idle_lock.lock().unwrap_or_else(PoisonError::into_inner);
            if shared.pending.load(Ordering::Relaxed) == 0
                && !shared.shutdown.load(Ordering::Relaxed)
            {
                let _ = shared
                    .idle_cv
                    .wait_timeout(guard, std::time::Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
            }
        } else {
            // Work exists but is in-flight elsewhere; back off briefly.
            idle_rounds += 1;
            if idle_rounds < 16 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn root_task_runs() {
        let mut pool = ForkJoinPool::new(2);
        let flag = AtomicBool::new(false);
        pool.scope(|_| {
            flag.store(true, Ordering::Relaxed);
        });
        assert!(flag.load(Ordering::Relaxed));
    }

    #[test]
    fn recursive_fanout_counts_exactly() {
        // Binary recursion to depth 10: 2^10 leaves.
        let mut pool = ForkJoinPool::new(4);
        let leaves = Arc::new(AtomicU64::new(0));
        fn fan(ctx: &TaskCtx<'_>, depth: u32, leaves: Arc<AtomicU64>) {
            if depth == 0 {
                leaves.fetch_add(1, Ordering::Relaxed);
            } else {
                let l = Arc::clone(&leaves);
                let r = Arc::clone(&leaves);
                ctx.spawn(move |c| fan(c, depth - 1, l));
                ctx.spawn(move |c| fan(c, depth - 1, r));
            }
        }
        let l = Arc::clone(&leaves);
        pool.scope(move |ctx| fan(ctx, 10, l));
        assert_eq!(leaves.load(Ordering::Relaxed), 1024);
    }

    #[test]
    fn scope_blocks_until_all_tasks_done() {
        let mut pool = ForkJoinPool::new(3);
        // Tasks increment a stack counter through the scope borrow.
        let counter = AtomicUsize::new(0);
        pool.scope(|ctx| {
            // SAFETY: `scope` joins every task before returning, so the
            // 'static view never outlives the stack borrow.
            let c: &'static AtomicUsize = unsafe { std::mem::transmute(&counter) };
            for _ in 0..256 {
                ctx.spawn(move |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn single_thread_pool_is_sequentially_complete() {
        let mut pool = ForkJoinPool::new(1);
        let sum = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&sum);
        pool.scope(move |ctx| {
            for i in 1..=100u64 {
                let s = Arc::clone(&s);
                ctx.spawn(move |_| {
                    s.fetch_add(i, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn sequential_scopes_on_same_pool() {
        let mut pool = ForkJoinPool::new(2);
        let total = Arc::new(AtomicU64::new(0));
        for _ in 0..20 {
            let t = Arc::clone(&total);
            pool.scope(move |ctx| {
                for _ in 0..10 {
                    let t = Arc::clone(&t);
                    ctx.spawn(move |_| {
                        t.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn worker_ids_in_range() {
        let mut pool = ForkJoinPool::new(4);
        let seen = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&seen);
        pool.scope(move |ctx| {
            assert!(ctx.worker_id() < ctx.threads());
            for _ in 0..64 {
                let s = Arc::clone(&s);
                ctx.spawn(move |c| {
                    assert!(c.worker_id() < c.threads());
                    s.fetch_or(1 << c.worker_id(), Ordering::Relaxed);
                });
            }
        });
        assert_ne!(seen.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn drop_terminates_workers() {
        let pool = ForkJoinPool::new(4);
        drop(pool); // must not hang
    }

    /// Irregular task DAG: chains of spawns of varying depth, like a
    /// pennant walk over a skewed tree.
    #[test]
    fn irregular_chains_complete() {
        let mut pool = ForkJoinPool::new(3);
        let done = Arc::new(AtomicU64::new(0));
        fn chain(ctx: &TaskCtx<'_>, depth: u32, done: Arc<AtomicU64>) {
            if depth == 0 {
                done.fetch_add(1, Ordering::Relaxed);
            } else {
                ctx.spawn(move |c| chain(c, depth - 1, done));
            }
        }
        let d = Arc::clone(&done);
        pool.scope(move |ctx| {
            for i in 0..50u32 {
                let d = Arc::clone(&d);
                ctx.spawn(move |c| chain(c, i % 17, d));
            }
        });
        assert_eq!(done.load(Ordering::Relaxed), 50);
    }

    /// Tasks that allocate and drop owned data (checks nothing leaks or
    /// double-frees through the type-erased task path).
    #[test]
    fn owned_payloads_dropped_exactly_once() {
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let drops = Arc::new(AtomicU64::new(0));
        let mut pool = ForkJoinPool::new(2);
        let d = Arc::clone(&drops);
        pool.scope(move |ctx| {
            for _ in 0..100 {
                let probe = Probe(Arc::clone(&d));
                ctx.spawn(move |_| {
                    let _keep = &probe;
                });
            }
        });
        assert_eq!(drops.load(Ordering::Relaxed), 100);
    }

    /// Heavy oversubscription: more pool threads than cores with a deep
    /// recursive fanout.
    #[test]
    fn oversubscribed_deep_fanout() {
        let mut pool = ForkJoinPool::new(12);
        let leaves = Arc::new(AtomicU64::new(0));
        fn fan(ctx: &TaskCtx<'_>, depth: u32, leaves: Arc<AtomicU64>) {
            if depth == 0 {
                leaves.fetch_add(1, Ordering::Relaxed);
            } else {
                for _ in 0..2 {
                    let l = Arc::clone(&leaves);
                    ctx.spawn(move |c| fan(c, depth - 1, l));
                }
            }
        }
        let l = Arc::clone(&leaves);
        pool.scope(move |ctx| fan(ctx, 8, l));
        assert_eq!(leaves.load(Ordering::Relaxed), 256);
    }

    /// A panicking task must not wedge the scope: remaining tasks finish,
    /// the counter drains, and the panic resurfaces on the caller.
    #[test]
    fn panicking_task_resurfaces_without_hanging() {
        let mut pool = ForkJoinPool::new(3);
        let survivors = Arc::new(AtomicU64::new(0));
        let s = Arc::clone(&survivors);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(move |ctx| {
                for i in 0..32u32 {
                    let s = Arc::clone(&s);
                    ctx.spawn(move |_| {
                        if i == 7 {
                            panic!("task blew up");
                        }
                        s.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        let err = result.expect_err("scope must re-raise the task panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("task blew up"), "got: {msg:?}");
        assert_eq!(survivors.load(Ordering::Relaxed), 31, "non-panicking tasks must all run");
        // Pool remains usable for subsequent scopes.
        let again = Arc::new(AtomicU64::new(0));
        let a = Arc::clone(&again);
        pool.scope(move |ctx| {
            for _ in 0..8 {
                let a = Arc::clone(&a);
                ctx.spawn(move |_| {
                    a.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(again.load(Ordering::Relaxed), 8);
    }
}
