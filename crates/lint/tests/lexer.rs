//! Token goldens for `obfs_lint::lex`: the exact token sequences the
//! passes depend on, pinned so a lexer change that would silently shift
//! what "counts" (an `unsafe` inside a raw string, an `Ordering::` in a
//! doc comment) fails loudly here first.

use obfs_lint::lex::{comment_content, lex, TokKind};

/// Compact golden form: `kind@line:text` per token, newline-joined.
fn golden(src: &str) -> String {
    lex(src)
        .iter()
        .map(|t| format!("{:?}@{}:{}", t.kind, t.line, t.text.replace('\n', "\\n")))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn token_sequence_golden() {
    let src = "unsafe fn f<'a>(x: &'a u32) -> u32 {\n    // SAFETY: x is valid.\n    *x + 0xFF\n}\n";
    assert_eq!(
        golden(src),
        "Ident@1:unsafe\n\
         Ident@1:fn\n\
         Ident@1:f\n\
         Punct@1:<\n\
         Lifetime@1:'a\n\
         Punct@1:>\n\
         Punct@1:(\n\
         Ident@1:x\n\
         Punct@1::\n\
         Punct@1:&\n\
         Lifetime@1:'a\n\
         Ident@1:u32\n\
         Punct@1:)\n\
         Punct@1:-\n\
         Punct@1:>\n\
         Ident@1:u32\n\
         Punct@1:{\n\
         LineComment@2:// SAFETY: x is valid.\n\
         Punct@3:*\n\
         Ident@3:x\n\
         Punct@3:+\n\
         Num@3:0xFF\n\
         Punct@4:}"
    );
}

/// The load-bearing property: `unsafe` / `Ordering::SeqCst` inside any
/// string flavour lexes as one `Str` token, never as idents the passes
/// would count.
#[test]
fn strings_swallow_keywords() {
    for src in [
        "let s = \"unsafe { Ordering::SeqCst }\";",
        "let s = r\"unsafe fetch_add(1)\";",
        "let s = r#\"lock() \"quoted\" unsafe\"#;",
        "let s = b\"unsafe\";",
        "let s = br#\"Ordering::AcqRel\"#;",
    ] {
        let toks = lex(src);
        assert!(
            toks.iter().any(|t| t.kind == TokKind::Str),
            "no Str token in {src:?}: {toks:?}"
        );
        assert!(
            !toks.iter().any(|t| t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "unsafe" | "Ordering" | "SeqCst" | "fetch_add" | "lock")),
            "string content leaked as idents in {src:?}: {toks:?}"
        );
    }
}

#[test]
fn comments_swallow_keywords_but_keep_their_text() {
    let src = "/// mentions unsafe and Ordering::SeqCst in prose\nfn f() {}\n/* block with fetch_add(1, Ordering::Relaxed) */\n";
    let toks = lex(src);
    assert!(!toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && matches!(t.text.as_str(), "unsafe" | "Ordering")));
    // The comment text itself is preserved for marker parsing.
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::LineComment && t.text.contains("Ordering::SeqCst")));
    assert!(toks
        .iter()
        .any(|t| t.kind == TokKind::BlockComment && t.text.contains("fetch_add")));
}

#[test]
fn nested_block_comments_and_multiline_spans() {
    let toks = lex("/* outer /* inner */ still comment */ fn f() {}\n");
    assert_eq!(toks[0].kind, TokKind::BlockComment);
    assert!(toks[0].text.ends_with("still comment */"));
    assert_eq!(toks[1].text, "fn");

    // A block comment's line is its *first* line.
    let toks = lex("/* a\n   b\n*/ unsafe\n");
    assert_eq!(toks[0].line, 1);
    assert_eq!((toks[1].text.as_str(), toks[1].line), ("unsafe", 3));
}

#[test]
fn char_literals_and_lifetimes_are_distinguished() {
    let toks = lex("let c = 'x'; let l: &'static str = \"s\";");
    assert!(toks.iter().any(|t| t.kind == TokKind::Char && t.text == "'x'"));
    assert!(toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'static"));
}

#[test]
fn comment_content_strips_exactly_one_opener() {
    assert_eq!(comment_content("// ord: because"), "ord: because");
    assert_eq!(comment_content("//! lint:protocol racy"), "lint:protocol racy");
    assert_eq!(comment_content("/// doc"), "doc");
    assert_eq!(comment_content("/* racy-ok: x */"), "racy-ok: x */");
    // Prose that merely *mentions* a marker mid-line does not start
    // with it — the start-anchored grammar the passes rely on.
    assert!(!comment_content("// see the ord: convention").starts_with("ord:"));
}

/// End-to-end: a file whose only `unsafe` / atomics / marker words live
/// in strings and prose produces zero findings and zero regions.
#[test]
fn strings_and_prose_do_not_trip_any_pass() {
    let root = std::env::temp_dir().join(format!("obfs-lint-lexer-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("crates/app/src")).unwrap();
    std::fs::create_dir_all(root.join("crates/sync/src")).unwrap();
    // The shim/taxonomy passes read these unconditionally.
    std::fs::write(
        root.join("crates/sync/src/flight.rs"),
        "pub mod kind {\n    pub const LEVEL_START: u16 = 1;\n}\n",
    )
    .unwrap();
    std::fs::write(root.join("crates/sync/src/chaos.rs"), "pub fn noop() {}\n").unwrap();
    std::fs::write(root.join("crates/sync/src/metrics.rs"), "pub fn install() {}\n").unwrap();
    std::fs::write(
        root.join("DESIGN.md"),
        "# design\n\n| kind | meaning | a | b |\n|---|---|---|---|\n| `LEVEL_START` | level began | — | — |\n",
    )
    .unwrap();
    std::fs::write(
        root.join("crates/app/src/lib.rs"),
        "//! Docs may say unsafe, Ordering::SeqCst, lock(), fetch_add.\n\
         //! Even `lint:region hot-path:fake` in prose is inert — wait,\n\
         //! that one IS start-anchored; keep it mid-line: see lint:region.\n\
         pub fn f() -> &'static str {\n\
             \"unsafe { x.fetch_add(1, Ordering::SeqCst) } // lint:region hot-path:str\"\n\
         }\n",
    )
    .unwrap();
    let report = obfs_lint::lint_repo(&root).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    assert!(report.passed(), "{:#?}", report.findings);
    assert!(report.regions.is_empty());
}
