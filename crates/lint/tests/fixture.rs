//! End-to-end lint runs against synthetic repo trees: the lint must
//! fail on a fixture with an uncommented `unsafe` block (and the other
//! rule violations), pass on the cleaned-up twin, and render
//! byte-identically across runs.

use std::fs;
use std::path::PathBuf;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("obfs-lint-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
        self
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const FLIGHT: &str = "pub mod kind {\n    pub const LEVEL_START: u16 = 1;\n    pub const FAULT: u16 = 2;\n    pub const FAULT_DELAY: u64 = 1;\n}\n";
const DESIGN: &str = "# design\n\n| kind | meaning | a | b |\n|---|---|---|---|\n| `LEVEL_START` | level began | — | — |\n| `FAULT` | fault injected | `FAULT_DELAY` | — |\n";
const SHIM_OK: &str = "pub fn on_or_off() {\n    #[cfg(feature = \"chaos\")]\n    inner();\n}\n";

/// The minimal skeleton every fixture needs: the shim files and the
/// taxonomy pair, all consistent.
fn skeleton(f: &Fixture) {
    f.write("crates/sync/src/flight.rs", FLIGHT)
        .write("crates/sync/src/chaos.rs", SHIM_OK)
        .write("crates/sync/src/metrics.rs", "pub fn install() {}\n")
        .write("DESIGN.md", DESIGN);
}

#[test]
fn uncommented_unsafe_fails_the_lint() {
    let f = Fixture::new("dirty");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    unsafe { *p = 1 };\n}\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(!report.passed());
    let rules: Vec<&str> = report.findings.iter().map(|x| x.rule).collect();
    assert!(rules.contains(&"safety-comment"), "missing SAFETY comment must be flagged: {rules:?}");
    assert!(rules.contains(&"unsafe-scope"), "unallowlisted unsafe outside sync must be flagged");
}

#[test]
fn commented_and_allowlisted_unsafe_passes() {
    let f = Fixture::new("clean");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { *p = 1 };\n}\n",
    );
    f.write(
        "scripts/lint.allow",
        "unsafe crates/app/src/lib.rs # raw pointer API, caller contract documented\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(report.passed(), "unexpected findings: {:#?}", report.findings);
}

#[test]
fn stale_allowlist_entry_fails_the_lint() {
    let f = Fixture::new("stale");
    skeleton(&f);
    f.write("crates/app/src/lib.rs", "pub fn f() {}\n");
    f.write("scripts/lint.allow", "unsafe crates/app/src/lib.rs # no longer true\n");
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "allowlist-stale");
}

#[test]
fn one_sided_feature_gate_fails_shim_parity() {
    let f = Fixture::new("shim");
    skeleton(&f);
    f.write(
        "crates/sync/src/metrics.rs",
        "#[cfg(feature = \"metrics\")]\npub fn only_with_feature() {}\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "shim-parity");
}

#[test]
fn taxonomy_drift_is_flagged_both_ways() {
    let f = Fixture::new("taxonomy");
    skeleton(&f);
    // One kind the table misses, one table row with no const.
    f.write(
        "crates/sync/src/flight.rs",
        "pub mod kind {\n    pub const LEVEL_START: u16 = 1;\n    pub const FAULT: u16 = 2;\n    pub const NEW_KIND: u16 = 3;\n}\n",
    );
    let mut design = DESIGN.to_string();
    design.push_str("| `GHOST_KIND` | never implemented | — | — |\n");
    f.write("DESIGN.md", &design);
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    let msgs: Vec<&str> = report.findings.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("NEW_KIND")));
    assert!(msgs.iter().any(|m| m.contains("GHOST_KIND")));
}

#[test]
fn report_renders_byte_identically_across_runs() {
    let f = Fixture::new("deterministic");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    unsafe { *p = 1 };\n}\npub fn g(p: *mut u32) {\n    unsafe { *p = 2 };\n}\n",
    );
    let a = obfs_lint::lint_repo(&f.root).unwrap();
    let b = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.render(), b.render());
    assert!(a.render().contains("lint: FAIL"));
}
