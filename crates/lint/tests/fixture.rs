//! End-to-end lint runs against synthetic repo trees: the lint must
//! fail on a fixture with an uncommented `unsafe` block (and the other
//! rule violations), pass on the cleaned-up twin, and render
//! byte-identically across runs.

use std::fs;
use std::path::PathBuf;

struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let root = std::env::temp_dir().join(format!("obfs-lint-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) -> &Self {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
        self
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const FLIGHT: &str = "pub mod kind {\n    pub const LEVEL_START: u16 = 1;\n    pub const FAULT: u16 = 2;\n    pub const FAULT_DELAY: u64 = 1;\n}\n";
const DESIGN: &str = "# design\n\n| kind | meaning | a | b |\n|---|---|---|---|\n| `LEVEL_START` | level began | — | — |\n| `FAULT` | fault injected | `FAULT_DELAY` | — |\n";
const SHIM_OK: &str = "pub fn on_or_off() {\n    #[cfg(feature = \"chaos\")]\n    inner();\n}\n";

/// The minimal skeleton every fixture needs: the shim files and the
/// taxonomy pair, all consistent.
fn skeleton(f: &Fixture) {
    f.write("crates/sync/src/flight.rs", FLIGHT)
        .write("crates/sync/src/chaos.rs", SHIM_OK)
        .write("crates/sync/src/metrics.rs", "pub fn install() {}\n")
        .write("DESIGN.md", DESIGN);
}

#[test]
fn uncommented_unsafe_fails_the_lint() {
    let f = Fixture::new("dirty");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    unsafe { *p = 1 };\n}\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(!report.passed());
    let rules: Vec<&str> = report.findings.iter().map(|x| x.rule).collect();
    assert!(rules.contains(&"safety-comment"), "missing SAFETY comment must be flagged: {rules:?}");
    assert!(rules.contains(&"unsafe-scope"), "unallowlisted unsafe outside sync must be flagged");
}

#[test]
fn commented_and_allowlisted_unsafe_passes() {
    let f = Fixture::new("clean");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { *p = 1 };\n}\n",
    );
    f.write(
        "scripts/lint.allow",
        "unsafe crates/app/src/lib.rs # raw pointer API, caller contract documented\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(report.passed(), "unexpected findings: {:#?}", report.findings);
}

#[test]
fn stale_allowlist_entry_fails_the_lint() {
    let f = Fixture::new("stale");
    skeleton(&f);
    f.write("crates/app/src/lib.rs", "pub fn f() {}\n");
    f.write("scripts/lint.allow", "unsafe crates/app/src/lib.rs # no longer true\n");
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "allowlist-stale");
}

#[test]
fn one_sided_feature_gate_fails_shim_parity() {
    let f = Fixture::new("shim");
    skeleton(&f);
    f.write(
        "crates/sync/src/metrics.rs",
        "#[cfg(feature = \"metrics\")]\npub fn only_with_feature() {}\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert_eq!(report.findings[0].rule, "shim-parity");
}

#[test]
fn taxonomy_drift_is_flagged_both_ways() {
    let f = Fixture::new("taxonomy");
    skeleton(&f);
    // One kind the table misses, one table row with no const.
    f.write(
        "crates/sync/src/flight.rs",
        "pub mod kind {\n    pub const LEVEL_START: u16 = 1;\n    pub const FAULT: u16 = 2;\n    pub const NEW_KIND: u16 = 3;\n}\n",
    );
    let mut design = DESIGN.to_string();
    design.push_str("| `GHOST_KIND` | never implemented | — | — |\n");
    f.write("DESIGN.md", &design);
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    let msgs: Vec<&str> = report.findings.iter().map(|x| x.message.as_str()).collect();
    assert_eq!(report.findings.len(), 2, "{msgs:?}");
    assert!(msgs.iter().any(|m| m.contains("NEW_KIND")));
    assert!(msgs.iter().any(|m| m.contains("GHOST_KIND")));
}

#[test]
fn report_renders_byte_identically_across_runs() {
    let f = Fixture::new("deterministic");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    unsafe { *p = 1 };\n}\npub fn g(p: *mut u32) {\n    unsafe { *p = 2 };\n}\n",
    );
    let a = obfs_lint::lint_repo(&f.root).unwrap();
    let b = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(a, b);
    assert_eq!(a.render(), b.render());
    assert!(a.render().contains("lint: FAIL"));
}

// ---- region budgets ----

/// A hot-path region with an RMW must fail even when the committed
/// budget row matches exactly: zero locks/RMWs is unconditional.
#[test]
fn rmw_in_hot_path_region_fails_unconditionally() {
    let f = Fixture::new("hot-rmw");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "// lint:region hot-path:claim\npub fn claim(c: &C) {\n    c.n.fetch_add(1, ORD);\n}\n// lint:endregion\n",
    );
    f.write(
        "lint/budget.txt",
        "crates/app/src/lib.rs hot-path:claim locks=0 rmws=1 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|x| x.rule).collect();
    assert_eq!(rules, vec!["hot-path-atomics"], "{:#?}", report.findings);
}

#[test]
fn budget_growth_and_shrink_both_fail() {
    let f = Fixture::new("budget-drift");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "// lint:region baseline:locked\npub fn g(l: &L) {\n    let _x = l.lock();\n}\n// lint:endregion\n",
    );
    // Grown: the row says zero locks, the code holds one.
    f.write(
        "lint/budget.txt",
        "crates/app/src/lib.rs baseline:locked locks=0 rmws=0 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\n",
    );
    let grown = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        grown.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["budget-exceeded"],
        "{:#?}",
        grown.findings
    );
    // Shrunk: the row still claims two locks — stale baseline.
    f.write(
        "lint/budget.txt",
        "crates/app/src/lib.rs baseline:locked locks=2 rmws=0 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\n",
    );
    let shrunk = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        shrunk.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["budget-stale"],
        "{:#?}",
        shrunk.findings
    );
    // Exact: passes, and the region shows up in the report.
    f.write(
        "lint/budget.txt",
        "crates/app/src/lib.rs baseline:locked locks=1 rmws=0 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\n",
    );
    let exact = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(exact.passed(), "{:#?}", exact.findings);
    assert_eq!(exact.regions.len(), 1);
}

#[test]
fn orphan_budget_row_and_missing_row_both_fail() {
    let f = Fixture::new("budget-rows");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "// lint:region hot-path:x\npub fn x() {}\n// lint:endregion\n",
    );
    // No budget file at all: the region needs a row.
    let missing = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        missing.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["budget-missing"]
    );
    assert!(
        missing.findings[0].message.contains("locks=0 rmws=0"),
        "budget-missing must suggest the paste-able row: {}",
        missing.findings[0].message
    );
    // A row for a region that no longer exists is stale.
    f.write(
        "lint/budget.txt",
        "crates/app/src/lib.rs hot-path:x locks=0 rmws=0 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\ncrates/app/src/lib.rs hot-path:gone locks=0 rmws=0 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\n",
    );
    let orphan = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        orphan.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["budget-stale"],
        "{:#?}",
        orphan.findings
    );
}

#[test]
fn unclosed_region_fails() {
    let f = Fixture::new("unclosed");
    skeleton(&f);
    f.write("crates/app/src/lib.rs", "// lint:region hot-path:x\npub fn x() {}\n");
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    let rules: Vec<&str> = report.findings.iter().map(|x| x.rule).collect();
    assert!(rules.contains(&"region-marker"), "{rules:?}");
}

// ---- ordering audit ----

#[test]
fn unjustified_seqcst_fails_justified_passes() {
    let f = Fixture::new("seqcst");
    skeleton(&f);
    // Inside crates/sync: exempt from atomics-scope, but SeqCst still
    // demands a written argument.
    f.write(
        "crates/sync/src/extra.rs",
        "pub fn f(a: &A) {\n    a.store(true, Ordering::SeqCst);\n}\n",
    );
    let bad = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        bad.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["ordering-justify"],
        "{:#?}",
        bad.findings
    );
    f.write(
        "crates/sync/src/extra.rs",
        "pub fn f(a: &A) {\n    // ord: the test needs a total order across both flags\n    a.store(true, Ordering::SeqCst);\n}\n",
    );
    let good = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(good.passed(), "{:#?}", good.findings);
}

// ---- racy pairing ----

#[test]
fn unrevalidated_claim_in_racy_region_fails_end_to_end() {
    let f = Fixture::new("racy-pair");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "// lint:protocol racy\n// lint:region hot-path:claim\npub fn claim(s: &S, w: usize) {\n    s.levels.set(w, 1);\n}\n// lint:endregion\n",
    );
    f.write(
        "lint/budget.txt",
        "crates/app/src/lib.rs hot-path:claim locks=0 rmws=0 relaxed=0 acquire=0 release=0 acqrel=0 seqcst=0\n",
    );
    let bad = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        bad.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["racy-pairing"],
        "{:#?}",
        bad.findings
    );
    // Restore the revalidation (the optimistic claim pattern): passes.
    f.write(
        "crates/app/src/lib.rs",
        "// lint:protocol racy\n// lint:region hot-path:claim\npub fn claim(s: &S, w: usize) {\n    if s.levels.get(w) == UNVISITED {\n        s.levels.set(w, 1);\n    }\n}\n// lint:endregion\n",
    );
    let good = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(good.passed(), "{:#?}", good.findings);
}

// ---- allowlist occurrence counts ----

#[test]
fn allowlist_count_mismatch_fails_exact_count_passes() {
    let f = Fixture::new("count");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "pub fn f(p: *mut u32) {\n    // SAFETY: caller contract.\n    unsafe { *p = 1 };\n    // SAFETY: caller contract.\n    unsafe { *p = 2 };\n}\n",
    );
    f.write("scripts/lint.allow", "unsafe crates/app/src/lib.rs [1] # stale count\n");
    let bad = obfs_lint::lint_repo(&f.root).unwrap();
    assert_eq!(
        bad.findings.iter().map(|x| x.rule).collect::<Vec<_>>(),
        vec!["allowlist-count"],
        "{:#?}",
        bad.findings
    );
    f.write("scripts/lint.allow", "unsafe crates/app/src/lib.rs [2] # raw pointer API\n");
    let good = obfs_lint::lint_repo(&f.root).unwrap();
    assert!(good.passed(), "{:#?}", good.findings);
}

// ---- JSON output ----

/// `--json` output must be machine-parseable and carry the schema the
/// CI contract names: version, pass, findings, regions.
#[test]
fn json_report_parses_and_matches_schema() {
    let f = Fixture::new("json");
    skeleton(&f);
    f.write(
        "crates/app/src/lib.rs",
        "// lint:region hot-path:x\npub fn f(p: *mut u32) {\n    unsafe { *p = 1 };\n}\n// lint:endregion\n",
    );
    let report = obfs_lint::lint_repo(&f.root).unwrap();
    let json = obfs_util::Json::parse(&report.render_json()).expect("valid JSON");
    assert_eq!(json.get("schema_version").and_then(obfs_util::Json::as_u64), Some(1));
    assert_eq!(json.get("pass").and_then(obfs_util::Json::as_bool), Some(false));
    assert!(json.get("files_scanned").and_then(obfs_util::Json::as_u64).unwrap() >= 1);
    let findings = json.get("findings").and_then(obfs_util::Json::as_arr).unwrap();
    assert!(!findings.is_empty());
    for x in findings {
        for key in ["path", "line", "rule", "message"] {
            assert!(x.get(key).is_some(), "finding missing `{key}`");
        }
    }
    let regions = json.get("regions").and_then(obfs_util::Json::as_arr).unwrap();
    assert_eq!(regions.len(), 1);
    let r = &regions[0];
    let keys =
        ["path", "id", "line", "locks", "rmws", "relaxed", "acquire", "release", "acqrel", "seqcst"];
    for key in keys {
        assert!(r.get(key).is_some(), "region missing `{key}`");
    }
    assert_eq!(r.get("id").and_then(obfs_util::Json::as_str), Some("hot-path:x"));
}
