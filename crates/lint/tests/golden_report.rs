//! The lint run against *this repository* is itself a test artifact:
//! the tree must pass, every hot-path region must measure zero locks
//! and zero RMWs, and the rendered report must match the committed
//! golden byte-for-byte — so any drift in annotations, budgets, or the
//! analyzer's output format shows up as a reviewable diff in
//! `results/lint_report.txt`.

use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

#[test]
fn repo_passes_and_hot_paths_are_clean() {
    let report = obfs_lint::lint_repo(repo_root()).unwrap();
    assert!(report.passed(), "the tree must lint clean:\n{}", report.render());
    assert!(!report.regions.is_empty(), "region markers must be present");
    for r in &report.regions {
        if r.is_hot() {
            assert_eq!(
                (r.counts.locks, r.counts.rmws),
                (0, 0),
                "hot-path region {}:{} must hold zero locks and zero RMWs",
                r.path,
                r.id
            );
        }
    }
}

#[test]
fn report_matches_committed_golden() {
    let report = obfs_lint::lint_repo(repo_root()).unwrap();
    let golden = std::fs::read_to_string(repo_root().join("results/lint_report.txt"))
        .expect("results/lint_report.txt is committed");
    assert_eq!(
        report.render(),
        golden,
        "regenerate with: cargo run -q -p obfs-lint -- . > results/lint_report.txt"
    );
}
