//! `obfs-lint`: the repo's race-surface auditor (token-aware, no
//! parser crates, std-only, fully deterministic).
//!
//! All passes share one hand-rolled lexer ([`lex`]) so that `unsafe`
//! in a raw string, `Ordering::` in a doc comment, and keywords quoted
//! in messages never count as code — and so that the markers the
//! passes key on (`lint:region`, `lint:protocol`, `ord:`, `racy-ok:`)
//! are read from real comment tokens.
//!
//! The rules, all motivated by the paper's safety argument living in
//! *conventions* the compiler cannot check:
//!
//! * **safety-comment** — every `unsafe` keyword (block, fn, impl,
//!   trait) must carry a `SAFETY`/`# Safety` marker on the same line,
//!   the line directly above, or the contiguous comment/attr block
//!   directly above. An unargued ownership claim is a latent race.
//! * **unsafe-scope / atomics-scope / allowlist-count** — `unsafe`
//!   and atomic-`Ordering` uses outside `crates/sync` must be
//!   allowlisted (with a justification, and optionally an exact
//!   `[n]` occurrence count) in `scripts/lint.allow`. Stale entries
//!   are errors, so the list only shrinks truthfully.
//! * **hot-path budget** ([`regions`]) — marked regions are measured
//!   (locks, RMWs, ordering strengths) and diffed against the
//!   committed `lint/budget.txt`; hot-path regions must hold zero
//!   locks and zero RMWs, unconditionally.
//! * **ordering audit** ([`ordering`]) — `SeqCst` anywhere and
//!   `Acquire`/`Release`/`AcqRel` outside `crates/sync` need a
//!   `// ord:` justification; stale justifications are errors.
//! * **racy pairing** ([`pairing`]) — in `lint:protocol racy` files,
//!   every in-region claim needs a preceding revalidation or an
//!   explicit `// racy-ok:` waiver (DESIGN.md §11's rule).
//! * **shim-parity** — in the feature-shim modules (`chaos`,
//!   `flight`, `metrics`), a cfg-feature-gated top-level `pub fn`
//!   must exist under both polarities of the feature.
//! * **flight-taxonomy** — the event-kind constants in
//!   `obfs_sync::flight::kind` and the taxonomy table in DESIGN.md §8
//!   must list exactly the same kinds, in both directions.
//!
//! Output is byte-stable: files are walked in sorted order, findings
//! and regions are sorted, and nothing reads clocks, RNG, or
//! hash-iteration order.

pub mod lex;
pub mod ordering;
pub mod pairing;
pub mod regions;

use lex::{Tok, TokKind};
use regions::Region;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo-relative path of the allowlist.
pub const ALLOWLIST: &str = "scripts/lint.allow";

/// The feature-shim modules checked by the shim-parity rule.
pub const SHIM_FILES: [&str; 3] = [
    "crates/sync/src/chaos.rs",
    "crates/sync/src/flight.rs",
    "crates/sync/src/metrics.rs",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (`/`-separated on every platform).
    pub path: String,
    /// 1-based line, 0 when the finding is file- or repo-level.
    pub line: usize,
    /// Rule identifier (`safety-comment`, `unsafe-scope`, …).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(path: &str, line: usize, rule: &'static str, message: String) -> Self {
        Self { path: path.to_string(), line, rule, message }
    }
}

/// One lexed source file, handed to every pass.
pub struct SourceFile {
    /// Normalized repo-relative path.
    pub rel: String,
    /// Raw source lines (for comment-block attachment checks).
    pub lines: Vec<String>,
    /// Token stream from [`lex::lex`].
    pub toks: Vec<Tok>,
}

/// Everything one lint run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Sorted findings (empty = clean).
    pub findings: Vec<Finding>,
    /// Rust files scanned.
    pub files_scanned: usize,
    /// Measured region budgets, sorted by (path, id).
    pub regions: Vec<Region>,
}

impl LintReport {
    /// True when the repo is clean.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== obfs-lint: race-surface audit ==");
        for f in &self.findings {
            if f.line == 0 {
                let _ = writeln!(s, "{}: [{}] {}", f.path, f.rule, f.message);
            } else {
                let _ = writeln!(s, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            }
        }
        if !self.regions.is_empty() {
            let _ = writeln!(s, "-- region budgets ({}) --", regions::BUDGET);
            for r in &self.regions {
                let _ = writeln!(s, "{}", r.budget_line());
            }
        }
        let _ = writeln!(
            s,
            "lint: {} ({} files scanned, {} findings, {} regions)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.files_scanned,
            self.findings.len(),
            self.regions.len()
        );
        s
    }

    /// Machine-readable report (`--json`), hand-serialized so the
    /// analyzer stays std-only. Schema (version 1):
    ///
    /// ```json
    /// {"schema_version": 1, "pass": bool, "files_scanned": u64,
    ///  "findings": [{"path", "line", "rule", "message"}, …],
    ///  "regions": [{"path", "id", "line", "locks", "rmws",
    ///               "relaxed", "acquire", "release", "acqrel",
    ///               "seqcst"}, …]}
    /// ```
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"schema_version\":1,\"pass\":{},\"files_scanned\":{},\"findings\":[",
            self.passed(),
            self.files_scanned
        );
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "{}{{\"path\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                if i == 0 { "" } else { "," },
                esc(&f.path),
                f.line,
                esc(f.rule),
                esc(&f.message)
            );
        }
        let _ = write!(s, "],\"regions\":[");
        for (i, r) in self.regions.iter().enumerate() {
            let c = r.counts;
            let _ = write!(
                s,
                "{}{{\"path\":\"{}\",\"id\":\"{}\",\"line\":{},\"locks\":{},\"rmws\":{},\"relaxed\":{},\"acquire\":{},\"release\":{},\"acqrel\":{},\"seqcst\":{}}}",
                if i == 0 { "" } else { "," },
                esc(&r.path),
                esc(&r.id),
                r.line,
                c.locks,
                c.rmws,
                c.relaxed,
                c.acquire,
                c.release,
                c.acqrel,
                c.seqcst
            );
        }
        let _ = write!(s, "]}}");
        s
    }
}

/// Strip any leading `./` segments so paths compare equal no matter
/// how the root was spelled (`.`, `./`, absolute). Allowlist/budget
/// entries and computed rel-paths all pass through here — this is
/// what makes `cargo run -p obfs-lint` from a crate dir agree with a
/// CI run from the repo root.
pub fn normalize_path(p: &str) -> String {
    let mut s = p;
    while let Some(rest) = s.strip_prefix("./") {
        s = rest;
    }
    s.to_string()
}

/// Walk up from `start` to the workspace root: the first ancestor
/// holding both a `crates/` directory and a `Cargo.toml`. Lets the
/// binary run correctly from a crate subdirectory.
pub fn find_repo_root(start: &Path) -> Option<PathBuf> {
    let start = start.canonicalize().ok()?;
    let mut dir: Option<&Path> = Some(start.as_path());
    while let Some(p) = dir {
        if p.join("crates").is_dir() && p.join("Cargo.toml").is_file() {
            return Some(p.to_path_buf());
        }
        dir = p.parent();
    }
    None
}

/// Run every rule against the repo rooted at `root`.
pub fn lint_repo(root: &Path) -> Result<LintReport, String> {
    let mut files = rust_files(&root.join("crates"))?;
    // "Repo-wide" means the whole workspace: top-level integration
    // tests, examples and any root src/ are lexed too (they are held
    // to the same scope rules as any other non-sync code).
    for extra in ["src", "tests", "examples"] {
        let d = root.join(extra);
        if d.is_dir() {
            files.extend(rust_files(&d)?);
        }
    }
    files.sort();

    let mut findings = Vec::new();
    let allow = Allowlist::load(root, &mut findings)?;

    // Per-file occurrence counts, reused by the stale-entry check.
    let mut n_unsafe: BTreeMap<String, usize> = BTreeMap::new();
    let mut n_atomics: BTreeMap<String, usize> = BTreeMap::new();
    let mut all_regions: Vec<Region> = Vec::new();

    for path in &files {
        let rel = normalize_path(&rel_path(root, path));
        let text =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let file = SourceFile {
            rel: rel.clone(),
            lines: text.lines().map(str::to_string).collect(),
            toks: lex::lex(&text),
        };
        let in_sync = rel.starts_with("crates/sync/");

        check_safety_comments(&file, &allow, &mut findings);

        let unsafe_lines: Vec<usize> = file
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .map(|t| t.line)
            .collect();
        if !unsafe_lines.is_empty() {
            n_unsafe.insert(rel.clone(), unsafe_lines.len());
        }

        let occ = ordering::check_ordering(&file, in_sync, &mut findings);
        if !occ.is_empty() {
            n_atomics.insert(rel.clone(), occ.len());
        }

        if !in_sync {
            check_scope(
                &file,
                "unsafe-scope",
                "unsafe",
                "`unsafe`",
                unsafe_lines.first().copied(),
                unsafe_lines.len(),
                &allow,
                &mut findings,
            );
            check_scope(
                &file,
                "atomics-scope",
                "atomics",
                "atomic `Ordering::`",
                occ.first().map(|o| o.line),
                occ.len(),
                &allow,
                &mut findings,
            );
        }

        let file_regions = regions::extract_regions(&file, &mut findings);
        pairing::check_pairing(&file, &file_regions, &mut findings);
        all_regions.extend(file_regions);
    }

    allow.check_stale(&n_unsafe, &n_atomics, &mut findings);
    regions::check_budget(root, &all_regions, &mut findings);

    for shim in SHIM_FILES {
        let path = root.join(shim);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        check_shim_parity(shim, &text, &mut findings);
    }

    check_flight_taxonomy(root, &mut findings)?;

    findings.sort();
    findings.dedup();
    all_regions.sort_by(|a, b| (&a.path, &a.id).cmp(&(&b.path, &b.id)));
    Ok(LintReport { findings, files_scanned: files.len(), regions: all_regions })
}

/// Scope + occurrence-count enforcement for one rule in one file.
#[allow(clippy::too_many_arguments)]
fn check_scope(
    file: &SourceFile,
    finding_rule: &'static str,
    allow_rule: &str,
    what: &str,
    first_line: Option<usize>,
    count: usize,
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    let Some(line) = first_line else { return };
    match allow.permits(allow_rule, &file.rel) {
        None => findings.push(Finding::new(
            &file.rel,
            line,
            finding_rule,
            format!(
                "{what} outside crates/sync needs an `{allow_rule} {}` entry in {ALLOWLIST}",
                file.rel
            ),
        )),
        Some(Some(n)) if n != count => findings.push(Finding::new(
            &file.rel,
            line,
            "allowlist-count",
            format!(
                "file has {count} {what} occurrence(s) but the {ALLOWLIST} entry permits [{n}] — every new occurrence needs an explicit count bump"
            ),
        )),
        _ => {}
    }
}

/// All `.rs` files under `dir`, sorted, skipping `target` directories.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            fs::read_dir(&d).map_err(|e| format!("read_dir {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", d.display()))?;
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn has_safety_marker(line: &str) -> bool {
    line.contains("SAFETY") || line.contains("# Safety")
}

/// Walk upward through the contiguous run of comment/attribute lines
/// directly above line index `i`, looking for a SAFETY marker. Blank
/// lines and code lines end the run: a marker must be *attached*, not
/// merely nearby (a nearby-window rule would let one comment bless
/// several unrelated blocks).
fn marker_in_comment_block_above(lines: &[String], i: usize) -> bool {
    for line in lines[..i].iter().rev() {
        let t = line.trim();
        if !(t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")) {
            return false;
        }
        if has_safety_marker(line) {
            return true;
        }
    }
    false
}

fn check_safety_comments(file: &SourceFile, allow: &Allowlist, findings: &mut Vec<Finding>) {
    if allow.permits("safety", &file.rel).is_some() {
        return;
    }
    // `unsafe` ident tokens only: string/comment mentions never count.
    let unsafe_lines: BTreeSet<usize> = file
        .toks
        .iter()
        .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
        .map(|t| t.line)
        .collect();
    for &l in &unsafe_lines {
        let i = l - 1; // 0-based index into lines
        let covered = file.lines.get(i).is_some_and(|s| has_safety_marker(s))
            || (i > 0 && has_safety_marker(&file.lines[i - 1]))
            || marker_in_comment_block_above(&file.lines, i);
        if !covered {
            findings.push(Finding::new(
                &file.rel,
                l,
                "safety-comment",
                "`unsafe` without an attached SAFETY comment (same line, line above, or the comment block directly above)".to_string(),
            ));
        }
    }
}

/// Parsed `scripts/lint.allow`: `rule path [n] # justification` lines.
struct Allowlist {
    /// (rule, path) -> (allowlist line number, optional exact count).
    entries: BTreeMap<(String, String), (usize, Option<usize>)>,
}

impl Allowlist {
    fn load(root: &Path, findings: &mut Vec<Finding>) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let path = root.join(ALLOWLIST);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Ok(Self { entries }), // absent = empty
        };
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (entry, justification) = match line.split_once('#') {
                Some((e, j)) => (e.trim(), j.trim()),
                None => (line, ""),
            };
            let parts: Vec<&str> = entry.split_whitespace().collect();
            let valid_rule =
                matches!(parts.first(), Some(&"unsafe" | &"atomics" | &"safety"));
            let count = match parts.get(2) {
                None => Ok(None),
                Some(c) => c
                    .strip_prefix('[')
                    .and_then(|c| c.strip_suffix(']'))
                    .and_then(|c| c.parse::<usize>().ok())
                    .map(Some)
                    .ok_or(()),
            };
            let shape_ok = valid_rule
                && parts.len() >= 2
                && parts.len() <= 3
                && count.is_ok()
                // A count constrains occurrences; `safety` only
                // exempts a file from the comment rule, so a count
                // there would be dead syntax.
                && !(parts[0] == "safety" && parts.len() == 3);
            if !shape_ok {
                findings.push(Finding::new(
                    ALLOWLIST,
                    i + 1,
                    "allowlist-syntax",
                    "expected `unsafe|atomics|safety <path> [n] # <justification>` (count only for unsafe/atomics)".to_string(),
                ));
                continue;
            }
            if justification.is_empty() {
                findings.push(Finding::new(
                    ALLOWLIST,
                    i + 1,
                    "allowlist-syntax",
                    "entry needs a `# <justification>`".to_string(),
                ));
                continue;
            }
            let key = (parts[0].to_string(), normalize_path(parts[1]));
            if entries.insert(key, (i + 1, count.unwrap())).is_some() {
                findings.push(Finding::new(
                    ALLOWLIST,
                    i + 1,
                    "allowlist-syntax",
                    "duplicate entry".to_string(),
                ));
            }
        }
        Ok(Self { entries })
    }

    /// `Some(count)` when the (rule, path) pair is allowlisted;
    /// the inner option is the `[n]` cap (None = any count ≥ 1).
    fn permits(&self, rule: &str, path: &str) -> Option<Option<usize>> {
        self.entries
            .get(&(rule.to_string(), path.to_string()))
            .map(|(_, count)| *count)
    }

    /// An entry whose occurrence no longer exists must be removed: the
    /// allowlist documents the *current* escape hatches, nothing more.
    fn check_stale(
        &self,
        n_unsafe: &BTreeMap<String, usize>,
        n_atomics: &BTreeMap<String, usize>,
        findings: &mut Vec<Finding>,
    ) {
        for ((rule, path), (line, _)) in &self.entries {
            let live = match rule.as_str() {
                "atomics" => n_atomics.contains_key(path),
                // `unsafe` and `safety` both key on unsafe tokens.
                _ => n_unsafe.contains_key(path),
            };
            if !live {
                findings.push(Finding::new(
                    ALLOWLIST,
                    *line,
                    "allowlist-stale",
                    format!("stale entry: {path} has no `{rule}` occurrence any more"),
                ));
            }
        }
    }
}

/// Extract `feature = "<name>"` from a `#[cfg(...)]` line, plus its
/// polarity (`true` = feature on). Returns `None` for non-cfg lines.
fn cfg_feature(line: &str) -> Option<(String, bool)> {
    let t = line.trim();
    if !t.starts_with("#[cfg(") {
        return None;
    }
    let feat = t.split("feature = \"").nth(1)?;
    let name = feat.split('"').next()?.to_string();
    Some((name, !t.contains("not(feature")))
}

/// Name of a top-level `pub fn` declared on this line, if any.
fn pub_fn_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t
        .strip_prefix("pub fn ")
        .or_else(|| t.strip_prefix("pub(crate) fn "))
        .or_else(|| t.strip_prefix("pub(super) fn "))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Shim-parity: a cfg-feature-gated `pub fn` must exist under both
/// polarities of that feature.
fn check_shim_parity(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    // (fn name, feature) -> (has-on, has-off, first line)
    let mut gated: BTreeMap<(String, String), (bool, bool, usize)> = BTreeMap::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let Some((feature, on)) = cfg_feature(line) else { continue };
        // Scan past further attributes and doc lines to the gated item.
        for follow in &lines[i + 1..] {
            let t = follow.trim_start();
            if t.starts_with("#[") || t.starts_with("///") || t.starts_with("//") {
                continue;
            }
            if let Some(name) = pub_fn_name(follow) {
                let e = gated.entry((name, feature)).or_insert((false, false, i + 1));
                if on {
                    e.0 = true;
                } else {
                    e.1 = true;
                }
            }
            break;
        }
    }
    for ((name, feature), (has_on, has_off, line)) in gated {
        if has_on != has_off {
            let missing = if has_on { "not(feature)" } else { "feature" };
            findings.push(Finding::new(
                rel,
                line,
                "shim-parity",
                format!(
                    "`pub fn {name}` is gated on feature \"{feature}\" with no `#[cfg({missing} = ...)]` twin — the API must exist with the feature on AND off"
                ),
            ));
        }
    }
}

/// The flight-event kinds: `pub const NAME: u16` inside flight.rs.
fn flight_kinds(text: &str) -> BTreeSet<String> {
    let mut kinds = BTreeSet::new();
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((name, tail)) = rest.split_once(':') {
                if tail.trim_start().starts_with("u16") {
                    kinds.insert(name.trim().to_string());
                }
            }
        }
    }
    kinds
}

/// Backticked ALL_CAPS tokens in the first column of the DESIGN.md
/// taxonomy table (the table whose header row starts `| kind |`).
fn design_kinds(text: &str) -> Option<(BTreeSet<String>, usize)> {
    let mut kinds = BTreeSet::new();
    let mut in_table = false;
    let mut table_line = 0;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if !in_table {
            if t.starts_with("| kind |") {
                in_table = true;
                table_line = i + 1;
            }
            continue;
        }
        if !t.starts_with('|') {
            break; // table ended
        }
        let Some(first_cell) = t.trim_matches('|').split('|').next() else { continue };
        let mut rest = first_cell;
        while let Some(start) = rest.find('`') {
            let after = &rest[start + 1..];
            let Some(end) = after.find('`') else { break };
            let token = &after[..end];
            if !token.is_empty()
                && token
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                kinds.insert(token.to_string());
            }
            rest = &after[end + 1..];
        }
    }
    in_table.then_some((kinds, table_line))
}

fn check_flight_taxonomy(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let flight_path = root.join("crates/sync/src/flight.rs");
    let flight = fs::read_to_string(&flight_path)
        .map_err(|e| format!("read {}: {e}", flight_path.display()))?;
    let design_path = root.join("DESIGN.md");
    let design = fs::read_to_string(&design_path)
        .map_err(|e| format!("read {}: {e}", design_path.display()))?;

    let consts = flight_kinds(&flight);
    let Some((documented, table_line)) = design_kinds(&design) else {
        findings.push(Finding::new(
            "DESIGN.md",
            0,
            "flight-taxonomy",
            "event taxonomy table (header `| kind |`) not found".to_string(),
        ));
        return Ok(());
    };
    for missing in consts.difference(&documented) {
        findings.push(Finding::new(
            "DESIGN.md",
            table_line,
            "flight-taxonomy",
            format!("flight kind `{missing}` is not documented in the taxonomy table"),
        ));
    }
    for ghost in documented.difference(&consts) {
        findings.push(Finding::new(
            "DESIGN.md",
            table_line,
            "flight-taxonomy",
            format!("taxonomy table documents `{ghost}` but obfs-sync::flight has no such kind"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/x/src/a.rs".to_string(),
            lines: src.lines().map(str::to_string).collect(),
            toks: lex::lex(src),
        }
    }

    #[test]
    fn tokens_not_text_decide_what_counts() {
        // Raw string + doc comment mentions of `unsafe`: no findings,
        // no occurrence count.
        let f = file("/// unsafe in docs\npub fn f() { let s = r#\"unsafe\"#; }\n");
        let n = f
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident && t.text == "unsafe")
            .count();
        assert_eq!(n, 0);
    }

    #[test]
    fn cfg_feature_parsing() {
        assert_eq!(
            cfg_feature("  #[cfg(feature = \"chaos\")]"),
            Some(("chaos".to_string(), true))
        );
        assert_eq!(
            cfg_feature("#[cfg(not(feature = \"trace\"))]"),
            Some(("trace".to_string(), false))
        );
        assert_eq!(cfg_feature("#[inline]"), None);
        assert_eq!(cfg_feature("#[cfg(test)]"), None);
    }

    #[test]
    fn shim_parity_flags_one_sided_gates() {
        let mut f = Vec::new();
        check_shim_parity(
            "x.rs",
            "#[cfg(feature = \"t\")]\npub fn lonely() {}\n",
            &mut f,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "shim-parity");

        f.clear();
        check_shim_parity(
            "x.rs",
            "#[cfg(feature = \"t\")]\npub fn both() {}\n#[cfg(not(feature = \"t\"))]\npub fn both() {}\n",
            &mut f,
        );
        assert!(f.is_empty());

        // Statement-level cfg inside an ungated pub fn: fine.
        f.clear();
        check_shim_parity(
            "x.rs",
            "pub fn shim() {\n    #[cfg(feature = \"t\")]\n    inner();\n}\n",
            &mut f,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn taxonomy_sets_diff_both_directions() {
        let flight = "pub mod kind {\n    pub const A: u16 = 1;\n    pub const B: u16 = 2;\n    pub const SUB: u64 = 9;\n}\n";
        let design = "| kind | meaning | a | b |\n|---|---|---|---|\n| `A` | x | — | `SUB` |\n| `C` | y | — | — |\n";
        let consts = flight_kinds(flight);
        assert_eq!(consts.len(), 2, "u64 payload codes are not kinds");
        let (documented, _) = design_kinds(design).unwrap();
        assert!(documented.contains("A") && documented.contains("C"));
        assert!(!documented.contains("SUB"), "only the kind column counts");
    }

    #[test]
    fn safety_marker_must_be_attached() {
        let src = "\
// SAFETY: exclusive owner.
#[allow(clippy::x)]
unsafe { go() }

unsafe { go_again() }
";
        let allow = Allowlist { entries: BTreeMap::new() };
        let mut f = Vec::new();
        check_safety_comments(&file(src), &allow, &mut f);
        assert_eq!(f.len(), 1, "only the uncommented block is flagged: {f:?}");
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn path_normalization() {
        assert_eq!(normalize_path("./crates/x/src/a.rs"), "crates/x/src/a.rs");
        assert_eq!(normalize_path("././a.rs"), "a.rs");
        assert_eq!(normalize_path("crates/x.rs"), "crates/x.rs");
    }
}
