//! `obfs-lint`: the repo's race-surface auditor (text/line-based, no
//! parser crates, std-only, fully deterministic).
//!
//! Four rules, all motivated by the paper's safety argument living in
//! *conventions* the compiler cannot check:
//!
//! * **safety-comment** — every `unsafe` keyword (block, fn, impl,
//!   trait) must carry a `SAFETY`/`# Safety` marker on the same line,
//!   the line directly above, or the contiguous comment/attribute block
//!   directly above (a blank or code line breaks the attachment). The
//!   optimistic protocols lean on `unsafe` ownership claims (barrier
//!   serial sections, own-slot access); an unargued claim is a latent
//!   race.
//! * **unsafe-scope / atomics-scope** — `unsafe` and `Ordering::` uses
//!   outside `crates/sync` must be explicitly allowlisted (with a
//!   justification) in `scripts/lint.allow`. The design rule is that
//!   the racy memory model lives in `obfs-sync`; every escape hatch
//!   elsewhere is a deliberate, documented exception. Stale allowlist
//!   entries (file gone, or occurrence gone) are errors too, so the
//!   list can only shrink truthfully.
//! * **shim-parity** — in the feature-shim modules (`chaos`, `flight`,
//!   `metrics`), a top-level `pub fn` gated on `#[cfg(feature = "X")]`
//!   must have a `#[cfg(not(feature = "X"))]` twin of the same name
//!   (and vice versa), so the public API never disappears when a
//!   feature is off.
//! * **flight-taxonomy** — the event-kind constants in
//!   `obfs_sync::flight::kind` and the taxonomy table in DESIGN.md §8
//!   must list exactly the same kinds, in both directions.
//!
//! Output is byte-stable: files are walked in sorted order, findings
//! are sorted, and nothing reads clocks, RNG, or hash-iteration order.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// Repo-relative path of the allowlist.
pub const ALLOWLIST: &str = "scripts/lint.allow";

/// The feature-shim modules checked by the shim-parity rule.
pub const SHIM_FILES: [&str; 3] = [
    "crates/sync/src/chaos.rs",
    "crates/sync/src/flight.rs",
    "crates/sync/src/metrics.rs",
];

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (`/`-separated on every platform).
    pub path: String,
    /// 1-based line, 0 when the finding is file- or repo-level.
    pub line: usize,
    /// Rule identifier (`safety-comment`, `unsafe-scope`, …).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl Finding {
    fn new(path: &str, line: usize, rule: &'static str, message: String) -> Self {
        Self { path: path.to_string(), line, rule, message }
    }
}

/// Everything one lint run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintReport {
    /// Sorted findings (empty = clean).
    pub findings: Vec<Finding>,
    /// Rust files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// True when the repo is clean.
    pub fn passed(&self) -> bool {
        self.findings.is_empty()
    }

    /// Deterministic human-readable report.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "== obfs-lint: unsafe/ordering audit ==");
        for f in &self.findings {
            if f.line == 0 {
                let _ = writeln!(s, "{}: [{}] {}", f.path, f.rule, f.message);
            } else {
                let _ = writeln!(s, "{}:{}: [{}] {}", f.path, f.line, f.rule, f.message);
            }
        }
        let _ = writeln!(
            s,
            "lint: {} ({} files scanned, {} findings)",
            if self.passed() { "PASS" } else { "FAIL" },
            self.files_scanned,
            self.findings.len()
        );
        s
    }
}

/// Run every rule against the repo rooted at `root`.
pub fn lint_repo(root: &Path) -> Result<LintReport, String> {
    let files = rust_files(&root.join("crates"))?;
    let mut findings = Vec::new();
    let allow = Allowlist::load(root, &mut findings)?;

    // Per-file occurrence sets, reused by the stale-entry check.
    let mut has_unsafe: BTreeSet<String> = BTreeSet::new();
    let mut has_atomics: BTreeSet<String> = BTreeSet::new();

    for path in &files {
        let rel = rel_path(root, path);
        let text = fs::read_to_string(path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        let lines: Vec<&str> = text.lines().collect();
        let code: Vec<String> = lines.iter().map(|l| strip_comment(l)).collect();

        check_safety_comments(&rel, &lines, &code, &allow, &mut findings);

        let outside_sync = !rel.starts_with("crates/sync/");
        for (i, c) in code.iter().enumerate() {
            if contains_word(c, "unsafe") {
                has_unsafe.insert(rel.clone());
                if outside_sync && !allow.permits("unsafe", &rel) {
                    findings.push(Finding::new(
                        &rel,
                        i + 1,
                        "unsafe-scope",
                        format!("`unsafe` outside crates/sync needs an `unsafe {rel}` entry in {ALLOWLIST}"),
                    ));
                    break; // one finding per file is enough
                }
            }
        }
        for (i, c) in code.iter().enumerate() {
            if c.contains("Ordering::") {
                has_atomics.insert(rel.clone());
                if outside_sync && !allow.permits("atomics", &rel) {
                    findings.push(Finding::new(
                        &rel,
                        i + 1,
                        "atomics-scope",
                        format!("`Ordering::` outside crates/sync needs an `atomics {rel}` entry in {ALLOWLIST}"),
                    ));
                    break;
                }
            }
        }
    }

    allow.check_stale(&has_unsafe, &has_atomics, &mut findings);

    for shim in SHIM_FILES {
        let path = root.join(shim);
        let text = fs::read_to_string(&path)
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        check_shim_parity(shim, &text, &mut findings);
    }

    check_flight_taxonomy(root, &mut findings)?;

    findings.sort();
    findings.dedup();
    Ok(LintReport { findings, files_scanned: files.len() })
}

/// All `.rs` files under `dir`, sorted, skipping `target` directories.
fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries =
            fs::read_dir(&d).map_err(|e| format!("read_dir {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read_dir {}: {e}", d.display()))?;
            let p = entry.path();
            if p.is_dir() {
                if p.file_name().is_some_and(|n| n == "target") {
                    continue;
                }
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// The code portion of a line: line comments removed, string-literal
/// contents blanked (so `"unsafe"` in a message is not a keyword).
/// Line-based by design — multi-line raw strings would fool it, and the
/// repo style avoids them.
fn strip_comment(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    chars.next(); // skip the escaped char
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => {}
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '\'' => {
                // Char literal (or lifetime — harmless either way):
                // consume up to 3 chars looking for the closing quote.
                out.push('\'');
                for _ in 0..3 {
                    match chars.peek() {
                        Some('\'') => {
                            chars.next();
                            break;
                        }
                        Some('\\') => {
                            chars.next();
                            chars.next();
                        }
                        Some(_) => {
                            chars.next();
                        }
                        None => break,
                    }
                }
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    out
}

/// Word-boundary containment (identifier chars delimit words).
fn contains_word(haystack: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0
            || !haystack[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + word.len();
        let after_ok = !haystack[after..]
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

fn has_safety_marker(line: &str) -> bool {
    line.contains("SAFETY") || line.contains("# Safety")
}

/// Walk upward through the contiguous run of comment/attribute lines
/// directly above line `i`, looking for a SAFETY marker. Blank lines
/// and code lines end the run: a marker must be *attached*, not merely
/// nearby (a nearby-window rule would let one comment bless several
/// unrelated blocks).
fn marker_in_comment_block_above(lines: &[&str], i: usize) -> bool {
    for line in lines[..i].iter().rev() {
        let t = line.trim();
        if !(t.starts_with("//") || t.starts_with("#[") || t.starts_with("#!")) {
            return false;
        }
        if has_safety_marker(line) {
            return true;
        }
    }
    false
}

fn check_safety_comments(
    rel: &str,
    lines: &[&str],
    code: &[String],
    allow: &Allowlist,
    findings: &mut Vec<Finding>,
) {
    if allow.permits("safety", rel) {
        return;
    }
    for (i, c) in code.iter().enumerate() {
        if !contains_word(c, "unsafe") {
            continue;
        }
        let covered = has_safety_marker(lines[i])
            || (i > 0 && has_safety_marker(lines[i - 1]))
            || marker_in_comment_block_above(lines, i);
        if !covered {
            findings.push(Finding::new(
                rel,
                i + 1,
                "safety-comment",
                "`unsafe` without an attached SAFETY comment (same line, line above, or the comment block directly above)".to_string(),
            ));
        }
    }
}

/// Parsed `scripts/lint.allow`: `rule path # justification` lines.
struct Allowlist {
    /// (rule, path) -> allowlist line number.
    entries: BTreeMap<(String, String), usize>,
}

impl Allowlist {
    fn load(root: &Path, findings: &mut Vec<Finding>) -> Result<Self, String> {
        let mut entries = BTreeMap::new();
        let path = root.join(ALLOWLIST);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => return Ok(Self { entries }), // absent = empty
        };
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (entry, justification) = match line.split_once('#') {
                Some((e, j)) => (e.trim(), j.trim()),
                None => (line, ""),
            };
            let mut parts = entry.split_whitespace();
            let (rule, p) = (parts.next(), parts.next());
            let valid_rule = matches!(rule, Some("unsafe" | "atomics" | "safety"));
            if !valid_rule || p.is_none() || parts.next().is_some() {
                findings.push(Finding::new(
                    ALLOWLIST,
                    i + 1,
                    "allowlist-syntax",
                    "expected `unsafe|atomics|safety <path> # <justification>`".to_string(),
                ));
                continue;
            }
            if justification.is_empty() {
                findings.push(Finding::new(
                    ALLOWLIST,
                    i + 1,
                    "allowlist-syntax",
                    "entry needs a `# <justification>`".to_string(),
                ));
                continue;
            }
            let key = (rule.unwrap().to_string(), p.unwrap().to_string());
            if entries.insert(key, i + 1).is_some() {
                findings.push(Finding::new(
                    ALLOWLIST,
                    i + 1,
                    "allowlist-syntax",
                    "duplicate entry".to_string(),
                ));
            }
        }
        Ok(Self { entries })
    }

    fn permits(&self, rule: &str, path: &str) -> bool {
        self.entries.contains_key(&(rule.to_string(), path.to_string()))
    }

    /// An entry whose occurrence no longer exists must be removed: the
    /// allowlist documents the *current* escape hatches, nothing more.
    fn check_stale(
        &self,
        has_unsafe: &BTreeSet<String>,
        has_atomics: &BTreeSet<String>,
        findings: &mut Vec<Finding>,
    ) {
        for ((rule, path), line) in &self.entries {
            let live = match rule.as_str() {
                "unsafe" => has_unsafe.contains(path),
                "atomics" => has_atomics.contains(path),
                // `safety` exempts a file from the comment rule; stale
                // once the file has no unsafe at all.
                _ => has_unsafe.contains(path),
            };
            if !live {
                findings.push(Finding::new(
                    ALLOWLIST,
                    *line,
                    "allowlist-stale",
                    format!("stale entry: {path} has no `{rule}` occurrence any more"),
                ));
            }
        }
    }
}

/// Extract `feature = "<name>"` from a `#[cfg(...)]` line, plus its
/// polarity (`true` = feature on). Returns `None` for non-cfg lines.
fn cfg_feature(line: &str) -> Option<(String, bool)> {
    let t = line.trim();
    if !t.starts_with("#[cfg(") {
        return None;
    }
    let feat = t.split("feature = \"").nth(1)?;
    let name = feat.split('"').next()?.to_string();
    Some((name, !t.contains("not(feature")))
}

/// Name of a top-level `pub fn` declared on this line, if any.
fn pub_fn_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t
        .strip_prefix("pub fn ")
        .or_else(|| t.strip_prefix("pub(crate) fn "))
        .or_else(|| t.strip_prefix("pub(super) fn "))?;
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Shim-parity: a cfg-feature-gated `pub fn` must exist under both
/// polarities of that feature.
fn check_shim_parity(rel: &str, text: &str, findings: &mut Vec<Finding>) {
    // (fn name, feature) -> (has-on, has-off, first line)
    let mut gated: BTreeMap<(String, String), (bool, bool, usize)> = BTreeMap::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let Some((feature, on)) = cfg_feature(line) else { continue };
        // Scan past further attributes and doc lines to the gated item.
        for follow in &lines[i + 1..] {
            let t = follow.trim_start();
            if t.starts_with("#[") || t.starts_with("///") || t.starts_with("//") {
                continue;
            }
            if let Some(name) = pub_fn_name(follow) {
                let e = gated.entry((name, feature)).or_insert((false, false, i + 1));
                if on {
                    e.0 = true;
                } else {
                    e.1 = true;
                }
            }
            break;
        }
    }
    for ((name, feature), (has_on, has_off, line)) in gated {
        if has_on != has_off {
            let missing = if has_on { "not(feature)" } else { "feature" };
            findings.push(Finding::new(
                rel,
                line,
                "shim-parity",
                format!(
                    "`pub fn {name}` is gated on feature \"{feature}\" with no `#[cfg({missing} = ...)]` twin — the API must exist with the feature on AND off"
                ),
            ));
        }
    }
}

/// The flight-event kinds: `pub const NAME: u16` inside flight.rs.
fn flight_kinds(text: &str) -> BTreeSet<String> {
    let mut kinds = BTreeSet::new();
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("pub const ") {
            if let Some((name, tail)) = rest.split_once(':') {
                if tail.trim_start().starts_with("u16") {
                    kinds.insert(name.trim().to_string());
                }
            }
        }
    }
    kinds
}

/// Backticked ALL_CAPS tokens in the first column of the DESIGN.md
/// taxonomy table (the table whose header row starts `| kind |`).
fn design_kinds(text: &str) -> Option<(BTreeSet<String>, usize)> {
    let mut kinds = BTreeSet::new();
    let mut in_table = false;
    let mut table_line = 0;
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if !in_table {
            if t.starts_with("| kind |") {
                in_table = true;
                table_line = i + 1;
            }
            continue;
        }
        if !t.starts_with('|') {
            break; // table ended
        }
        let Some(first_cell) = t.trim_matches('|').split('|').next() else { continue };
        let mut rest = first_cell;
        while let Some(start) = rest.find('`') {
            let after = &rest[start + 1..];
            let Some(end) = after.find('`') else { break };
            let token = &after[..end];
            if !token.is_empty()
                && token
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
            {
                kinds.insert(token.to_string());
            }
            rest = &after[end + 1..];
        }
    }
    in_table.then_some((kinds, table_line))
}

fn check_flight_taxonomy(root: &Path, findings: &mut Vec<Finding>) -> Result<(), String> {
    let flight_path = root.join("crates/sync/src/flight.rs");
    let flight = fs::read_to_string(&flight_path)
        .map_err(|e| format!("read {}: {e}", flight_path.display()))?;
    let design_path = root.join("DESIGN.md");
    let design = fs::read_to_string(&design_path)
        .map_err(|e| format!("read {}: {e}", design_path.display()))?;

    let consts = flight_kinds(&flight);
    let Some((documented, table_line)) = design_kinds(&design) else {
        findings.push(Finding::new(
            "DESIGN.md",
            0,
            "flight-taxonomy",
            "event taxonomy table (header `| kind |`) not found".to_string(),
        ));
        return Ok(());
    };
    for missing in consts.difference(&documented) {
        findings.push(Finding::new(
            "DESIGN.md",
            table_line,
            "flight-taxonomy",
            format!("flight kind `{missing}` is not documented in the taxonomy table"),
        ));
    }
    for ghost in documented.difference(&consts) {
        findings.push(Finding::new(
            "DESIGN.md",
            table_line,
            "flight-taxonomy",
            format!("taxonomy table documents `{ghost}` but obfs-sync::flight has no such kind"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comment_and_string_stripping() {
        assert_eq!(strip_comment("let x = 1; // unsafe"), "let x = 1; ");
        assert!(!contains_word(&strip_comment("log(\"unsafe here\")"), "unsafe"));
        assert!(contains_word(&strip_comment("unsafe { x() } // ok"), "unsafe"));
        assert!(!contains_word("forbid(unsafe_code)", "unsafe"));
        assert!(contains_word("let c = 'u'; unsafe {", "unsafe"));
    }

    #[test]
    fn cfg_feature_parsing() {
        assert_eq!(
            cfg_feature("  #[cfg(feature = \"chaos\")]"),
            Some(("chaos".to_string(), true))
        );
        assert_eq!(
            cfg_feature("#[cfg(not(feature = \"trace\"))]"),
            Some(("trace".to_string(), false))
        );
        assert_eq!(cfg_feature("#[inline]"), None);
        assert_eq!(cfg_feature("#[cfg(test)]"), None);
    }

    #[test]
    fn shim_parity_flags_one_sided_gates() {
        let mut f = Vec::new();
        check_shim_parity(
            "x.rs",
            "#[cfg(feature = \"t\")]\npub fn lonely() {}\n",
            &mut f,
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "shim-parity");

        f.clear();
        check_shim_parity(
            "x.rs",
            "#[cfg(feature = \"t\")]\npub fn both() {}\n#[cfg(not(feature = \"t\"))]\npub fn both() {}\n",
            &mut f,
        );
        assert!(f.is_empty());

        // Statement-level cfg inside an ungated pub fn: fine.
        f.clear();
        check_shim_parity(
            "x.rs",
            "pub fn shim() {\n    #[cfg(feature = \"t\")]\n    inner();\n}\n",
            &mut f,
        );
        assert!(f.is_empty());
    }

    #[test]
    fn taxonomy_sets_diff_both_directions() {
        let flight = "pub mod kind {\n    pub const A: u16 = 1;\n    pub const B: u16 = 2;\n    pub const SUB: u64 = 9;\n}\n";
        let design = "| kind | meaning | a | b |\n|---|---|---|---|\n| `A` | x | — | `SUB` |\n| `C` | y | — | — |\n";
        let consts = flight_kinds(flight);
        assert_eq!(consts.len(), 2, "u64 payload codes are not kinds");
        let (documented, _) = design_kinds(design).unwrap();
        assert!(documented.contains("A") && documented.contains("C"));
        assert!(!documented.contains("SUB"), "only the kind column counts");
    }

    #[test]
    fn safety_marker_must_be_attached() {
        let lines = vec![
            "// SAFETY: exclusive owner.",
            "#[allow(clippy::x)]",
            "unsafe { go() }",
            "",
            "unsafe { go_again() }",
        ];
        let code: Vec<String> = lines.iter().map(|l| strip_comment(l)).collect();
        let allow = Allowlist { entries: BTreeMap::new() };
        let mut f = Vec::new();
        check_safety_comments("x.rs", &lines, &code, &allow, &mut f);
        assert_eq!(f.len(), 1, "only the uncommented block is flagged");
        assert_eq!(f[0].line, 5);
    }
}
