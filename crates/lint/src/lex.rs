//! A small hand-rolled Rust lexer (std-only, no parser crates) shared
//! by every token-aware lint pass.
//!
//! Design goals, in order:
//!
//! 1. **Never miscount.** `unsafe` inside a raw string, `Ordering::`
//!    inside a doc comment or a `cfg` string, and keywords quoted in
//!    error messages must not look like code. That requires real
//!    tokenization: line/block/doc comments (nested), plain and raw
//!    strings (`r#"…"#`, byte variants), char literals vs lifetimes.
//! 2. **Keep comments as tokens.** The region markers
//!    (`lint:region`, `lint:endregion`, `lint:protocol`), `ord:`
//!    justifications and `racy-ok:` waivers all live in comments, so
//!    comments are first-class tokens, not discarded trivia.
//! 3. **Just enough for paths.** Passes match token *sequences* such
//!    as `Ordering` `:` `:` `SeqCst`; the lexer does not build trees,
//!    and single-char punctuation is sufficient (nested generics
//!    simply contribute `<`/`>` puncts that the sequence matchers
//!    skip past).
//!
//! The lexer is total: any byte sequence produces a token stream (an
//! unterminated literal just runs to end of file). Lint never wants to
//! hard-error on a source file the compiler would reject — the build
//! itself gates that.

/// Token classes. `Str` covers plain/raw/byte strings; `Char` covers
/// char and byte-char literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (includes raw identifiers, `r#match`).
    Ident,
    /// Numeric literal (`0xFF`, `1_000u64`; `1.5` lexes as two
    /// numbers around a `.` punct, which no pass cares about).
    Num,
    /// String literal of any flavour, quotes included in `text`.
    Str,
    /// Char / byte-char literal.
    Char,
    /// Lifetime (`'a`, `'static`) — kept distinct so a lifetime is
    /// never mistaken for an unterminated char literal.
    Lifetime,
    /// `// …` comment (plain, `///` doc, `//!` inner doc).
    LineComment,
    /// `/* … */` comment, nesting handled; may span lines.
    BlockComment,
    /// Any other single character.
    Punct,
}

/// One spanned token. `line` is 1-based and refers to the token's
/// *first* line (block comments and multi-line strings span more).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub line: usize,
    pub text: String,
}

impl Tok {
    /// True for the two comment kinds (marker carriers).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenize `src`. Deterministic, total, O(len).
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1;

    // Collect chars `b[from..to]` into a string.
    let text = |from: usize, to: usize| b[from..to.min(b.len())].iter().collect::<String>();

    while i < b.len() {
        let c = b[i];
        let start = i;
        let start_line = line;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                out.push(Tok { kind: TokKind::LineComment, line: start_line, text: text(start, i) });
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                i += 2;
                let mut depth = 1usize;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.push(Tok {
                    kind: TokKind::BlockComment,
                    line: start_line,
                    text: text(start, i),
                });
            }
            '"' => {
                i = consume_string(&b, i, &mut line);
                out.push(Tok { kind: TokKind::Str, line: start_line, text: text(start, i) });
            }
            '\'' => {
                // Char literal vs lifetime. `'\…'` and `'x'` are
                // chars; anything else (`'a`, `'static`, `'_`) is a
                // lifetime label with no closing quote.
                if b.get(i + 1) == Some(&'\\') {
                    i += 2; // opening quote + backslash
                    if i < b.len() {
                        i += 1; // the escaped char (covers \' and \\)
                    }
                    while i < b.len() && b[i] != '\'' {
                        // longer escapes: \u{1F600}, \x41
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.push(Tok { kind: TokKind::Char, line: start_line, text: text(start, i) });
                } else if b.get(i + 2) == Some(&'\'') && b.get(i + 1) != Some(&'\'') {
                    i += 3;
                    out.push(Tok { kind: TokKind::Char, line: start_line, text: text(start, i) });
                } else {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                    out.push(Tok {
                        kind: TokKind::Lifetime,
                        line: start_line,
                        text: text(start, i),
                    });
                }
            }
            'r' | 'b' if raw_or_byte_literal(&b, i).is_some() => {
                let (kind, body_start) = raw_or_byte_literal(&b, i).unwrap();
                match kind {
                    LitStart::RawStr { hashes } => {
                        i = consume_raw_string(&b, body_start, hashes, &mut line);
                        out.push(Tok { kind: TokKind::Str, line: start_line, text: text(start, i) });
                    }
                    LitStart::PlainStr => {
                        i = consume_string(&b, body_start - 1, &mut line);
                        out.push(Tok { kind: TokKind::Str, line: start_line, text: text(start, i) });
                    }
                    LitStart::ByteChar => {
                        // Delegate to the char arm's logic by lexing
                        // from the quote; simplest is to consume here.
                        i = body_start; // at the opening quote
                        i += 1;
                        if b.get(i) == Some(&'\\') {
                            i += 2;
                        }
                        while i < b.len() && b[i] != '\'' {
                            i += 1;
                        }
                        i += 1;
                        out.push(Tok {
                            kind: TokKind::Char,
                            line: start_line,
                            text: text(start, i),
                        });
                    }
                    LitStart::RawIdent => {
                        i = body_start;
                        while i < b.len() && is_ident_continue(b[i]) {
                            i += 1;
                        }
                        out.push(Tok {
                            kind: TokKind::Ident,
                            line: start_line,
                            text: text(start, i),
                        });
                    }
                }
            }
            c if is_ident_start(c) => {
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.push(Tok { kind: TokKind::Ident, line: start_line, text: text(start, i) });
            }
            c if c.is_ascii_digit() => {
                while i < b.len() && (is_ident_continue(b[i])) {
                    i += 1;
                }
                out.push(Tok { kind: TokKind::Num, line: start_line, text: text(start, i) });
            }
            _ => {
                i += 1;
                out.push(Tok { kind: TokKind::Punct, line: start_line, text: c.to_string() });
            }
        }
    }
    out
}

enum LitStart {
    /// `r"…"`, `r#"…"#`, `br"…"`: body starts at the opening quote's
    /// successor; `hashes` is the `#` count to match at the close.
    RawStr { hashes: usize },
    /// `b"…"`: lex like a plain string (index = char after quote).
    PlainStr,
    /// `b'…'`: byte char literal (index = the opening quote).
    ByteChar,
    /// `r#ident`: raw identifier (index = first ident char).
    RawIdent,
}

/// Decide whether the `r`/`b` at `i` opens a literal rather than a
/// plain identifier, and where its body starts.
fn raw_or_byte_literal(b: &[char], i: usize) -> Option<(LitStart, usize)> {
    match b[i] {
        'r' => {
            let mut j = i + 1;
            let mut hashes = 0;
            while b.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            match b.get(j) {
                Some(&'"') => Some((LitStart::RawStr { hashes }, j + 1)),
                Some(&c) if hashes == 1 && is_ident_start(c) => Some((LitStart::RawIdent, j)),
                _ => None,
            }
        }
        'b' => match b.get(i + 1) {
            Some(&'"') => Some((LitStart::PlainStr, i + 2)),
            Some(&'\'') => Some((LitStart::ByteChar, i + 1)),
            Some(&'r') => {
                let mut j = i + 2;
                let mut hashes = 0;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                (b.get(j) == Some(&'"')).then_some((LitStart::RawStr { hashes }, j + 1))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Consume a plain (escaped) string starting at the opening quote
/// `b[i] == '"'`; returns the index just past the closing quote.
fn consume_string(b: &[char], i: usize, line: &mut usize) -> usize {
    let mut i = i + 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consume a raw string whose body starts at `i` (just past the
/// opening quote), closed by `"` followed by `hashes` `#`s.
fn consume_raw_string(b: &[char], i: usize, hashes: usize, line: &mut usize) -> usize {
    let mut i = i;
    while i < b.len() {
        if b[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if b[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0;
            while seen < hashes && b.get(j) == Some(&'#') {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// The content of a comment token with its opener (`//`, `///`,
/// `//!`, `/*`, `/**`, `/*!`) and leading whitespace stripped.
///
/// Marker comments (`lint:region …`, `ord: …`, `racy-ok: …`) are
/// recognized only when the marker *starts* the comment content —
/// that anchoring is what lets documentation talk about the markers
/// (as this sentence just did) without carrying them. A doc line that
/// quotes a full marker comment verbatim (`//! // lint:region …`)
/// strips to content starting with `//`, which no marker matches.
pub fn comment_content(text: &str) -> &str {
    let rest = ["//!", "///", "/*!", "/**", "//", "/*"]
        .iter()
        .find_map(|p| text.strip_prefix(p))
        .unwrap_or(text);
    rest.trim_start()
}

/// Idents-and-puncts view: all non-comment tokens, preserving order.
/// Sequence matchers (paths, method calls) operate on this so an
/// interleaved comment can't break a match.
pub fn code_tokens(toks: &[Tok]) -> Vec<&Tok> {
    toks.iter().filter(|t| !t.is_comment()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn raw_string_contents_are_not_code() {
        let toks = lex(r##"let x = r#"unsafe { Ordering::SeqCst }"#;"##);
        assert!(toks.iter().all(|t| t.text != "unsafe"));
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn doc_comments_are_comment_tokens() {
        let toks = lex("/// uses Ordering::SeqCst internally\nfn f() {}");
        assert_eq!(toks[0].kind, TokKind::LineComment);
        assert!(toks[0].text.contains("SeqCst"));
        assert!(code_tokens(&toks).iter().all(|t| t.text != "Ordering"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {} let s = 'static_err;");
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        let lifes: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).collect();
        assert_eq!(chars.len(), 1);
        assert_eq!(chars[0].1, "'a'");
        // <'a>, &'a, and the (invalid-Rust but total-lexer) 'static_err
        assert_eq!(lifes.len(), 3);
    }

    #[test]
    fn escaped_char_literals() {
        let toks = kinds(r"let q = '\''; let n = '\n'; let u = '\u{1F600}';");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
        // Nothing after the escapes leaked into a string/lifetime.
        assert!(toks.iter().all(|(k, _)| *k != TokKind::Str && *k != TokKind::Lifetime));
    }

    #[test]
    fn nested_block_comments_and_lines() {
        let toks = lex("/* outer /* inner */ still comment */ fn f() {}\nfn g() {}");
        assert_eq!(toks[0].kind, TokKind::BlockComment);
        assert!(toks[0].text.ends_with("still comment */"));
        let g = toks.iter().find(|t| t.text == "g").unwrap();
        assert_eq!(g.line, 2, "newline inside the first line counted once");
    }

    #[test]
    fn raw_idents_are_idents_not_strings() {
        let toks = kinds("let r#match = 1; let s = r\"raw\";");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#match"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Str && t == "r\"raw\""));
    }

    #[test]
    fn byte_literals() {
        let toks = kinds(r##"let a = b"bytes with unsafe"; let c = b'x'; let r = br#"more unsafe"#;"##);
        assert!(toks.iter().all(|(_, t)| t != "unsafe"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 2);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 1);
    }

    #[test]
    fn multiline_string_advances_lines() {
        let toks = lex("let s = \"a\nb\";\nfn after() {}");
        let after = toks.iter().find(|t| t.text == "after").unwrap();
        assert_eq!(after.line, 3);
    }

    #[test]
    fn line_numbers_are_one_based_and_stable() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<_> = toks.iter().map(|t| (t.text.clone(), t.line)).collect();
        assert_eq!(
            lines,
            vec![("a".into(), 1), ("b".into(), 2), ("c".into(), 4)]
        );
    }
}
