//! `obfs-lint [--json] [REPO_ROOT]` — run the repo auditor and print
//! the deterministic report (human-readable by default, the schema-v1
//! JSON document with `--json`). The given root (default `.`) may be
//! any directory inside the workspace: the binary walks up to the
//! first ancestor holding `crates/` + `Cargo.toml`, so `cargo run -p
//! obfs-lint` agrees byte-for-byte whether launched from the repo root
//! or a crate subdirectory. Exit 0 when clean, 1 on findings, 2 on
//! I/O or usage errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut roots = Vec::new();
    for a in std::env::args().skip(1) {
        if a == "--json" {
            json = true;
        } else {
            roots.push(a);
        }
    }
    let start = match roots.as_slice() {
        [] => ".".to_string(),
        [r] => r.clone(),
        _ => {
            eprintln!("usage: obfs-lint [--json] [REPO_ROOT]");
            return ExitCode::from(2);
        }
    };
    let Some(root) = obfs_lint::find_repo_root(Path::new(&start)) else {
        eprintln!(
            "obfs-lint: no workspace root (crates/ + Cargo.toml) at or above {start}"
        );
        return ExitCode::from(2);
    };
    match obfs_lint::lint_repo(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render());
            }
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("obfs-lint: {e}");
            ExitCode::from(2)
        }
    }
}
