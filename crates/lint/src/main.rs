//! `obfs-lint [REPO_ROOT]` — run the repo auditor and print the
//! deterministic report. Exit 0 when clean, 1 on findings, 2 on I/O or
//! usage errors.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = match args.as_slice() {
        [] => ".".to_string(),
        [r] => r.clone(),
        _ => {
            eprintln!("usage: obfs-lint [REPO_ROOT]");
            return ExitCode::from(2);
        }
    };
    match obfs_lint::lint_repo(Path::new(&root)) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("obfs-lint: {e}");
            ExitCode::from(2)
        }
    }
}
