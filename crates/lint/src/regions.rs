//! Hot-path atomics/locks budget pass.
//!
//! Region markers delimit the code whose race surface the paper's
//! claim is *about* — the per-edge/per-vertex loops and dispatcher
//! fetch paths:
//!
//! ```text
//! // lint:region <class>:<name>
//! …code…
//! // lint:endregion
//! ```
//!
//! Classes in use: `hot-path` (the optimistic protocol cores — must
//! contain **zero** lock acquisitions and **zero** atomic RMWs,
//! unconditionally) and `baseline`/`control` (lock-based contenders
//! and control-plane code — budgeted, but allowed what their budget
//! says). Within each region the pass counts, lexically:
//!
//! * lock acquisitions — `lock(` / `try_lock(` calls;
//! * atomic RMWs — `fetch_*(`, `compare_exchange*(`, `swap(`;
//! * atomic loads/stores by `Ordering` strength — one count per
//!   `Ordering::<Strength>` path token.
//!
//! Counts are diffed against the committed baseline `lint/budget.txt`.
//! Both directions are errors: a count above the baseline is a
//! regression (`budget-exceeded`); a count below it is a stale
//! baseline (`budget-stale`) — the budget file, like the allowlist,
//! can only shrink truthfully via an explicit edit.
//!
//! Counting is lexical and per-file: a region does not follow calls.
//! That is deliberate — callees with their own atomics (e.g. the
//! watchdog poll) get their own region and budget row, and the racy
//! `RacyBuf` cells called from hot regions live in `crates/sync`
//! where the atomics-scope rule already fences them.

use crate::lex::{Tok, TokKind};
use crate::{Finding, SourceFile};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

/// Repo-relative path of the budget baseline.
pub const BUDGET: &str = "lint/budget.txt";

/// Region class whose lock/RMW counts must be zero unconditionally.
pub const HOT_CLASS: &str = "hot-path";

/// Atomic RMW method names (called with `(`) counted by the budget.
pub const RMW_METHODS: [&str; 13] = [
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
    "compare_and_swap",
    "swap",
];

/// Per-region lexical counts, in the canonical budget-file order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counts {
    pub locks: usize,
    pub rmws: usize,
    pub relaxed: usize,
    pub acquire: usize,
    pub release: usize,
    pub acqrel: usize,
    pub seqcst: usize,
}

impl Counts {
    /// The `locks=0 rmws=0 …` tail of a budget line.
    pub fn render(&self) -> String {
        format!(
            "locks={} rmws={} relaxed={} acquire={} release={} acqrel={} seqcst={}",
            self.locks, self.rmws, self.relaxed, self.acquire, self.release, self.acqrel,
            self.seqcst
        )
    }

    fn fields(&self) -> [(&'static str, usize); 7] {
        [
            ("locks", self.locks),
            ("rmws", self.rmws),
            ("relaxed", self.relaxed),
            ("acquire", self.acquire),
            ("release", self.release),
            ("acqrel", self.acqrel),
            ("seqcst", self.seqcst),
        ]
    }
}

/// One marked region with its measured counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Repo-relative path of the file holding the markers.
    pub path: String,
    /// `<class>:<name>` as written in the opening marker.
    pub id: String,
    /// 1-based line of the opening marker.
    pub line: usize,
    /// Measured counts between the markers.
    pub counts: Counts,
    /// Token range (open marker exclusive, close marker exclusive),
    /// consumed by the racy-pairing pass.
    pub(crate) tok_range: (usize, usize),
}

impl Region {
    /// The full budget-file line this region corresponds to.
    pub fn budget_line(&self) -> String {
        format!("{} {} {}", self.path, self.id, self.counts.render())
    }

    /// True when the zero-locks/zero-RMW rule applies.
    pub fn is_hot(&self) -> bool {
        self.id.starts_with(HOT_CLASS) && self.id[HOT_CLASS.len()..].starts_with(':')
    }
}

/// Marker text parsing: the word following `lint:region` in a comment
/// whose content *starts* with that marker (see
/// [`crate::lex::comment_content`] for why anchoring matters).
fn region_open_id(comment: &str) -> Option<&str> {
    let rest = crate::lex::comment_content(comment).strip_prefix("lint:region")?;
    rest.split_whitespace().next()
}

fn is_region_close(comment: &str) -> bool {
    crate::lex::comment_content(comment).starts_with("lint:endregion")
}

/// Valid region ids: `<class>:<name>`, lowercase kebab class, and a
/// name of identifier-ish chars.
fn valid_region_id(id: &str) -> bool {
    let Some((class, name)) = id.split_once(':') else { return false };
    !class.is_empty()
        && !name.is_empty()
        && class.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Next non-comment token index in `[i, end)`.
fn next_code(toks: &[Tok], mut i: usize, end: usize) -> Option<usize> {
    while i < end {
        if !toks[i].is_comment() {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Map an `Ordering::<X>` strength ident to its counter, if atomic.
/// (`cmp::Ordering::Less` etc. fall through: not an atomics use.)
pub(crate) fn strength_field(name: &str) -> Option<&'static str> {
    match name {
        "Relaxed" => Some("relaxed"),
        "Acquire" => Some("acquire"),
        "Release" => Some("release"),
        "AcqRel" => Some("acqrel"),
        "SeqCst" => Some("seqcst"),
        _ => None,
    }
}

/// If `toks[i]` starts an `Ordering :: <Strength>` path, return the
/// strength ident's token index.
pub(crate) fn ordering_path(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    if toks[i].kind != TokKind::Ident || toks[i].text != "Ordering" {
        return None;
    }
    let c1 = next_code(toks, i + 1, end)?;
    let c2 = next_code(toks, c1 + 1, end)?;
    let s = next_code(toks, c2 + 1, end)?;
    (toks[c1].text == ":" && toks[c2].text == ":" && toks[s].kind == TokKind::Ident)
        .then_some(s)
}

/// Count locks/RMWs/ordering strengths over token range `[start, end)`.
fn count_range(toks: &[Tok], start: usize, end: usize) -> Counts {
    let mut c = Counts::default();
    let mut k = start;
    while let Some(i) = next_code(toks, k, end) {
        k = i + 1;
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            continue;
        }
        let called = next_code(toks, i + 1, end)
            .is_some_and(|j| toks[j].kind == TokKind::Punct && toks[j].text == "(");
        match t.text.as_str() {
            "lock" | "try_lock" if called => c.locks += 1,
            m if called && RMW_METHODS.contains(&m) => c.rmws += 1,
            "Ordering" => {
                if let Some(s) = ordering_path(toks, i, end) {
                    match strength_field(&toks[s].text) {
                        Some("relaxed") => c.relaxed += 1,
                        Some("acquire") => c.acquire += 1,
                        Some("release") => c.release += 1,
                        Some("acqrel") => c.acqrel += 1,
                        Some("seqcst") => c.seqcst += 1,
                        _ => {}
                    }
                    k = s + 1; // don't re-scan the strength ident
                }
            }
            _ => {}
        }
    }
    c
}

/// Extract and measure every marked region in `file`, reporting
/// malformed/unbalanced markers as findings.
pub fn extract_regions(file: &SourceFile, findings: &mut Vec<Finding>) -> Vec<Region> {
    let toks = &file.toks;
    let mut open: Option<(String, usize, usize)> = None; // (id, line, tok idx)
    let mut out: Vec<Region> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_comment() {
            continue;
        }
        if is_region_close(&t.text) {
            match open.take() {
                Some((id, line, start)) => {
                    if out.iter().any(|r| r.id == id) {
                        findings.push(Finding::new(
                            &file.rel,
                            line,
                            "region-marker",
                            format!("duplicate region id `{id}` in this file"),
                        ));
                    }
                    out.push(Region {
                        path: file.rel.clone(),
                        id,
                        line,
                        counts: count_range(toks, start, i),
                        tok_range: (start, i),
                    });
                }
                None => findings.push(Finding::new(
                    &file.rel,
                    t.line,
                    "region-marker",
                    "`lint:endregion` with no open region".to_string(),
                )),
            }
            continue;
        }
        if let Some(id) = region_open_id(&t.text) {
            if !valid_region_id(id) {
                findings.push(Finding::new(
                    &file.rel,
                    t.line,
                    "region-marker",
                    format!("malformed region id `{id}` (expected `<class>:<name>`)"),
                ));
                continue;
            }
            if let Some((ref other, line, _)) = open {
                findings.push(Finding::new(
                    &file.rel,
                    t.line,
                    "region-marker",
                    format!("region `{id}` opened inside `{other}` (opened line {line}); regions do not nest"),
                ));
                continue;
            }
            open = Some((id.to_string(), t.line, i + 1));
        }
    }
    if let Some((id, line, _)) = open {
        findings.push(Finding::new(
            &file.rel,
            line,
            "region-marker",
            format!("region `{id}` is never closed (missing `lint:endregion`)"),
        ));
    }
    out
}

/// Parsed budget baseline row.
struct BudgetRow {
    line: usize,
    counts: Counts,
}

fn parse_budget(
    text: &str,
    findings: &mut Vec<Finding>,
) -> BTreeMap<(String, String), BudgetRow> {
    let mut rows = BTreeMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let mut ok = parts.len() == 9 && valid_region_id(parts[1]);
        let mut counts = Counts::default();
        if ok {
            let keys = ["locks", "rmws", "relaxed", "acquire", "release", "acqrel", "seqcst"];
            let slots: [&mut usize; 7] = [
                &mut counts.locks,
                &mut counts.rmws,
                &mut counts.relaxed,
                &mut counts.acquire,
                &mut counts.release,
                &mut counts.acqrel,
                &mut counts.seqcst,
            ];
            for ((part, key), slot) in parts[2..].iter().zip(keys).zip(slots) {
                match part.strip_prefix(key).and_then(|r| r.strip_prefix('=')) {
                    Some(v) => match v.parse::<usize>() {
                        Ok(n) => *slot = n,
                        Err(_) => ok = false,
                    },
                    None => ok = false,
                }
            }
        }
        if !ok {
            findings.push(Finding::new(
                BUDGET,
                i + 1,
                "budget-syntax",
                "expected `<path> <class>:<name> locks=N rmws=N relaxed=N acquire=N release=N acqrel=N seqcst=N`"
                    .to_string(),
            ));
            continue;
        }
        let key = (crate::normalize_path(parts[0]), parts[1].to_string());
        if rows
            .insert(key, BudgetRow { line: i + 1, counts })
            .is_some()
        {
            findings.push(Finding::new(BUDGET, i + 1, "budget-syntax", "duplicate row".to_string()));
        }
    }
    rows
}

/// Diff measured regions against `lint/budget.txt` and enforce the
/// hot-path zero rule.
pub fn check_budget(root: &Path, regions: &[Region], findings: &mut Vec<Finding>) {
    let mut baseline = match fs::read_to_string(root.join(BUDGET)) {
        Ok(t) => parse_budget(&t, findings),
        Err(_) => BTreeMap::new(), // absent = empty baseline
    };

    for r in regions {
        if r.is_hot() && (r.counts.locks > 0 || r.counts.rmws > 0) {
            findings.push(Finding::new(
                &r.path,
                r.line,
                "hot-path-atomics",
                format!(
                    "hot-path region `{}` contains {} lock acquisition(s) and {} atomic RMW(s); the paper's claim requires zero of both",
                    r.id, r.counts.locks, r.counts.rmws
                ),
            ));
        }
        match baseline.remove(&(r.path.clone(), r.id.clone())) {
            None => findings.push(Finding::new(
                &r.path,
                r.line,
                "budget-missing",
                format!("region `{}` has no baseline row; add to {BUDGET}: `{}`", r.id, r.budget_line()),
            )),
            Some(row) => {
                let mut msg = String::new();
                for ((field, actual), (_, budget)) in
                    r.counts.fields().iter().zip(row.counts.fields())
                {
                    if actual > &budget {
                        let _ = write!(
                            msg,
                            "{}{field} grew {budget} -> {actual}",
                            if msg.is_empty() { "" } else { ", " }
                        );
                    }
                }
                if !msg.is_empty() {
                    findings.push(Finding::new(
                        &r.path,
                        r.line,
                        "budget-exceeded",
                        format!(
                            "region `{}` exceeds its {BUDGET} baseline ({msg}); shrinking the race surface back or an explicit baseline edit is required",
                            r.id
                        ),
                    ));
                }
                let mut stale = String::new();
                for ((field, actual), (_, budget)) in
                    r.counts.fields().iter().zip(row.counts.fields())
                {
                    if actual < &budget {
                        let _ = write!(
                            stale,
                            "{}{field} is now {actual} (budget {budget})",
                            if stale.is_empty() { "" } else { ", " }
                        );
                    }
                }
                if !stale.is_empty() {
                    findings.push(Finding::new(
                        BUDGET,
                        row.line,
                        "budget-stale",
                        format!(
                            "region `{}` beat its budget ({stale}); tighten the baseline to match — like the allowlist, it only shrinks truthfully",
                            r.id
                        ),
                    ));
                }
            }
        }
    }
    for ((path, id), row) in baseline {
        findings.push(Finding::new(
            BUDGET,
            row.line,
            "budget-stale",
            format!("row for `{id}` in {path} matches no region marker"),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/x/src/a.rs".to_string(),
            lines: src.lines().map(str::to_string).collect(),
            toks: lex(src),
        }
    }

    #[test]
    fn counts_locks_rmws_and_strengths() {
        let src = "\
// lint:region hot-path:demo
fn f(m: &std::sync::Mutex<u32>, a: &AtomicUsize) {
    let _g = m.lock();
    let _ = m.try_lock();
    a.fetch_add(1, Ordering::Relaxed);
    a.load(Ordering::Acquire);
    a.store(0, Ordering::SeqCst);
}
// lint:endregion
";
        let mut f = Vec::new();
        let rs = extract_regions(&file(src), &mut f);
        assert!(f.is_empty(), "{f:?}");
        assert_eq!(rs.len(), 1);
        let c = rs[0].counts;
        assert_eq!((c.locks, c.rmws), (2, 1));
        assert_eq!((c.relaxed, c.acquire, c.seqcst), (1, 1, 1));
        assert!(rs[0].is_hot());
    }

    #[test]
    fn strings_and_comments_do_not_count() {
        let src = "\
// lint:region hot-path:quiet
// a fetch_add(1) in a comment, Ordering::SeqCst too
fn f() { let s = \"lock() fetch_or(2) Ordering::Relaxed\"; }
// lint:endregion
";
        let mut f = Vec::new();
        let rs = extract_regions(&file(src), &mut f);
        assert_eq!(rs[0].counts, Counts::default());
    }

    #[test]
    fn cmp_ordering_is_not_atomics() {
        let src = "// lint:region control:c\nfn f() { let _ = Ordering::Less; }\n// lint:endregion\n";
        let mut f = Vec::new();
        let rs = extract_regions(&file(src), &mut f);
        assert_eq!(rs[0].counts, Counts::default());
    }

    #[test]
    fn unbalanced_markers_are_findings() {
        let mut f = Vec::new();
        extract_regions(&file("// lint:region hot-path:open\nfn f() {}\n"), &mut f);
        assert!(f.iter().any(|x| x.rule == "region-marker" && x.message.contains("never closed")));

        f.clear();
        extract_regions(&file("fn f() {}\n// lint:endregion\n"), &mut f);
        assert!(f.iter().any(|x| x.message.contains("no open region")));

        f.clear();
        extract_regions(
            &file("// lint:region hot-path:a\n// lint:region hot-path:b\n// lint:endregion\n"),
            &mut f,
        );
        assert!(f.iter().any(|x| x.message.contains("do not nest")));

        f.clear();
        extract_regions(&file("// lint:region nonsense\n// lint:endregion\n"), &mut f);
        assert!(f.iter().any(|x| x.message.contains("malformed region id")));
    }

    #[test]
    fn budget_rows_round_trip() {
        let mut f = Vec::new();
        let rows = parse_budget(
            "# comment\ncrates/x/src/a.rs hot-path:demo locks=0 rmws=0 relaxed=2 acquire=0 release=0 acqrel=0 seqcst=0\n",
            &mut f,
        );
        assert!(f.is_empty());
        let row = &rows[&("crates/x/src/a.rs".to_string(), "hot-path:demo".to_string())];
        assert_eq!(row.counts.relaxed, 2);

        f.clear();
        parse_budget("bad row\n", &mut f);
        assert_eq!(f[0].rule, "budget-syntax");
    }
}
