//! Ordering audit: memory-order choice as a checkable artifact.
//!
//! Every `Ordering::<Strength>` path token is classified (comments and
//! string literals never count — the lexer sees through them). Two
//! strengths demand a written argument:
//!
//! * `SeqCst` — anywhere. The repo's design never needs a total
//!   order; a `SeqCst` is either a leftover default or a claim strong
//!   enough to deserve a sentence.
//! * `Acquire` / `Release` / `AcqRel` — outside `crates/sync`. The
//!   sync crate *is* the memory model; release/acquire edges leaking
//!   into other crates are exactly the protocol surface the paper
//!   argues about.
//!
//! The argument is a `// ord:` comment on the same line or the line
//! directly above (a trailing `// ord:` on a multi-line call's first
//! line also covers the next line, matching how `compare_exchange`
//! success/failure orders wrap). Mirroring the allowlist semantics,
//! a justification with nothing left to justify is itself an error
//! (`ord-stale`): `Relaxed` needs no argument, and a deleted atomic
//! must take its comment with it.

use crate::regions::{ordering_path, strength_field};
use crate::{Finding, SourceFile};
use std::collections::BTreeSet;

/// One `Ordering::<atomic strength>` use.
pub(crate) struct Occurrence {
    pub line: usize,
    /// Canonical field name: `relaxed`/`acquire`/`release`/`acqrel`/`seqcst`.
    pub strength: &'static str,
    /// The ident as written (for messages).
    pub name: String,
}

/// All atomic-`Ordering` path occurrences in the file, in order.
pub(crate) fn occurrences(file: &SourceFile) -> Vec<Occurrence> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if let Some(s) = ordering_path(toks, i, toks.len()) {
            if let Some(strength) = strength_field(&toks[s].text) {
                out.push(Occurrence {
                    line: toks[s].line,
                    strength,
                    name: toks[s].text.clone(),
                });
                i = s + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Does this comment *carry* the marker (as opposed to mentioning
/// it)? Anchored at the start of the comment content, so prose about
/// `ord:` markers — like this sentence — never counts.
fn has_marker(text: &str, marker: &str) -> bool {
    crate::lex::comment_content(text).starts_with(marker)
}

/// Lines whose comments carry the given marker.
pub(crate) fn marker_lines(file: &SourceFile, marker: &str) -> BTreeSet<usize> {
    file.toks
        .iter()
        .filter(|t| t.is_comment() && has_marker(&t.text, marker))
        .map(|t| t.line)
        .collect()
}

/// Run the audit; returns the occurrences (all strengths), which the
/// allowlist `[n]` accounting reuses.
pub(crate) fn check_ordering(
    file: &SourceFile,
    in_sync: bool,
    findings: &mut Vec<Finding>,
) -> Vec<Occurrence> {
    let occ = occurrences(file);
    let ord_lines = marker_lines(file, "ord:");

    let needs_justification = |o: &Occurrence| {
        o.strength == "seqcst" || (!in_sync && matches!(o.strength, "acquire" | "release" | "acqrel"))
    };

    for o in &occ {
        if needs_justification(o) && !ord_lines.contains(&o.line) && !ord_lines.contains(&(o.line - 1))
        {
            let scope = if o.strength == "seqcst" { "" } else { " outside crates/sync" };
            findings.push(Finding::new(
                &file.rel,
                o.line,
                "ordering-justify",
                format!(
                    "`Ordering::{}`{scope} requires a `// ord:` justification on the same line or the line above",
                    o.name
                ),
            ));
        }
    }

    // Stale markers: an `ord:` comment must sit next to *some*
    // non-Relaxed ordering (same line or the line below). Relaxed
    // needs no argument, so a marker kept alive only by a Relaxed —
    // or by nothing — is noise that would mask a future violation.
    let justified: BTreeSet<usize> =
        occ.iter().filter(|o| o.strength != "relaxed").map(|o| o.line).collect();
    for &l in &ord_lines {
        if !justified.contains(&l) && !justified.contains(&(l + 1)) {
            findings.push(Finding::new(
                &file.rel,
                l,
                "ord-stale",
                "`// ord:` marker with no adjacent non-Relaxed `Ordering::` use — remove it"
                    .to_string(),
            ));
        }
    }

    occ
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn file(src: &str) -> SourceFile {
        SourceFile {
            rel: "crates/x/src/a.rs".to_string(),
            lines: src.lines().map(str::to_string).collect(),
            toks: lex(src),
        }
    }

    fn run(src: &str, in_sync: bool) -> Vec<Finding> {
        let mut f = Vec::new();
        check_ordering(&file(src), in_sync, &mut f);
        f
    }

    #[test]
    fn seqcst_needs_ord_everywhere() {
        let f = run("fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); }", true);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ordering-justify");

        let ok = run(
            "fn f(a: &AtomicBool) { a.store(true, Ordering::SeqCst); // ord: total order needed\n}",
            true,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn acquire_outside_sync_needs_ord_inside_does_not() {
        let src = "fn f(a: &AtomicBool) -> bool { a.load(Ordering::Acquire) }";
        assert_eq!(run(src, false).len(), 1);
        assert!(run(src, true).is_empty());
    }

    #[test]
    fn comment_above_covers_and_trailing_covers_next_line() {
        let above = "// ord: pairs with the release store\nlet x = a.load(Ordering::Acquire);";
        assert!(run(above, false).is_empty());
        let wrapped =
            "a.compare_exchange(0, 1, // ord: success publishes the slot\n    Ordering::AcqRel, Ordering::Acquire);";
        assert!(run(wrapped, false).is_empty());
    }

    #[test]
    fn stale_and_relaxed_markers_flagged() {
        let f = run("// ord: nothing here any more\nfn f() {}", false);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "ord-stale");

        let f = run("// ord: relaxed needs no argument\nlet x = a.load(Ordering::Relaxed);", false);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "ord-stale");
    }

    #[test]
    fn doc_comment_mentions_do_not_count() {
        let f = run("/// this API once used Ordering::SeqCst\nfn f() {}", false);
        assert!(f.is_empty());
    }

    #[test]
    fn marker_is_start_anchored() {
        assert!(has_marker("// ord: why", "ord:"));
        assert!(has_marker("/* ord: why */", "ord:"));
        assert!(!has_marker("// coord: meeting", "ord:"));
        assert!(!has_marker("// word: play", "ord:"));
        // Prose *about* the marker, and doc lines quoting a marker
        // comment verbatim, never carry it.
        assert!(!has_marker("/// justify with a `// ord:` comment", "ord:"));
        assert!(!has_marker("//! // ord: quoted example", "ord:"));
    }
}
