//! Racy-pairing check: DESIGN.md §11's "revalidate before every
//! claim" rule, machine-checked.
//!
//! A file opts in with a `// lint:protocol racy` comment — that marks
//! it as holding one of the deliberately-racy protocol cores whose
//! plain (`Relaxed`) loads can observe stale values. Within every
//! marked region of such a file, a *claim* — a `.store(…)` or
//! `.set(…)` call that publishes protocol state others will read —
//! must be either:
//!
//! * lexically preceded, inside the same region, by a revalidation:
//!   an `== UNVISITED` re-check against the authoritative per-vertex
//!   slot (the optimistic claim pattern), or a call to an identifier
//!   containing `revalidate`/`sanity` (the work-stealing snapshot
//!   checks); or
//! * waived with a `// racy-ok: <why>` comment on its own line or the
//!   line above — the single-writer kernels (bottom-up's static
//!   owner partition, compaction's disjoint slots) claim without
//!   revalidating because no other thread can race them, and the
//!   waiver records that argument next to the store.
//!
//! Why a *lexical* rule is sound here: each racy protocol core lives
//! in one file (state.rs discovery, worksteal.rs descriptors,
//! centralized.rs/ext.rs cursors), regions delimit single functions,
//! and the revalidation the paper's argument needs is always in the
//! same loop body as the claim it guards. The check can therefore
//! demand "revalidation textually before the claim, same region"
//! without inter-procedural analysis — deleting the revalidation (the
//! seeded-bug case the model checker also covers) breaks the pairing
//! and fails the lint.

use crate::lex::{Tok, TokKind};
use crate::ordering::marker_lines;
use crate::regions::Region;
use crate::{Finding, SourceFile};

/// Does this file declare the racy protocol? (Start-anchored like all
/// markers: the comment must *begin* with `lint:protocol`.)
pub fn is_racy_protocol(file: &SourceFile) -> bool {
    file.toks.iter().any(|t| {
        t.is_comment()
            && crate::lex::comment_content(&t.text)
                .strip_prefix("lint:protocol")
                .is_some_and(|rest| rest.split_whitespace().next() == Some("racy"))
    })
}

/// Claim method names: plain stores that publish protocol state.
const CLAIMS: [&str; 2] = ["store", "set"];

/// Token indices (into `toks`) of `.store(` / `.set(` claims in
/// `[start, end)`, comment-insensitive.
fn claims_in(toks: &[Tok], start: usize, end: usize) -> Vec<usize> {
    let code: Vec<usize> =
        (start..end).filter(|&i| !toks[i].is_comment()).collect();
    let mut out = Vec::new();
    for w in code.windows(3) {
        let (a, b, c) = (&toks[w[0]], &toks[w[1]], &toks[w[2]]);
        if a.kind == TokKind::Punct
            && a.text == "."
            && b.kind == TokKind::Ident
            && CLAIMS.contains(&b.text.as_str())
            && c.kind == TokKind::Punct
            && c.text == "("
        {
            out.push(w[1]);
        }
    }
    out
}

/// Is there a revalidation in `[start, upto)`? Either `== UNVISITED`
/// (in both orders) or an identifier containing `revalidate`/`sanity`.
fn revalidated_before(toks: &[Tok], start: usize, upto: usize) -> bool {
    let code: Vec<usize> = (start..upto).filter(|&i| !toks[i].is_comment()).collect();
    for (k, &i) in code.iter().enumerate() {
        let t = &toks[i];
        if t.kind == TokKind::Ident
            && (t.text.contains("revalidate") || t.text.contains("sanity"))
        {
            return true;
        }
        if t.kind == TokKind::Punct && t.text == "=" {
            let eq2 = code.get(k + 1).is_some_and(|&j| toks[j].text == "=");
            if eq2 {
                let next_unvisited =
                    code.get(k + 2).is_some_and(|&j| toks[j].text == "UNVISITED");
                let prev_unvisited =
                    k > 0 && toks[code[k - 1]].text == "UNVISITED";
                if next_unvisited || prev_unvisited {
                    return true;
                }
            }
        }
    }
    false
}

/// Run the pairing check over every region of a racy-protocol file.
pub fn check_pairing(file: &SourceFile, regions: &[Region], findings: &mut Vec<Finding>) {
    if !is_racy_protocol(file) {
        return;
    }
    let waived = marker_lines(file, "racy-ok:");
    for r in regions {
        let (start, end) = r.tok_range;
        for claim in claims_in(&file.toks, start, end) {
            let line = file.toks[claim].line;
            if waived.contains(&line) || waived.contains(&(line - 1)) {
                continue;
            }
            if revalidated_before(&file.toks, start, claim) {
                continue;
            }
            findings.push(Finding::new(
                &file.rel,
                line,
                "racy-pairing",
                format!(
                    "claim `.{}(` in racy region `{}` has no preceding in-region revalidation (`== UNVISITED` / `revalidate`/`sanity`) and no `// racy-ok:` waiver",
                    file.toks[claim].text, r.id
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::regions::extract_regions;

    fn run(src: &str) -> Vec<Finding> {
        let file = SourceFile {
            rel: "crates/x/src/a.rs".to_string(),
            lines: src.lines().map(str::to_string).collect(),
            toks: lex(src),
        };
        let mut f = Vec::new();
        let regions = extract_regions(&file, &mut f);
        check_pairing(&file, &regions, &mut f);
        f
    }

    const CLAIM_OK: &str = "\
// lint:protocol racy
// lint:region hot-path:discover
fn try_discover(&self, w: u32) -> bool {
    if self.levels.get(w as usize) == UNVISITED {
        self.levels.set(w as usize, self.next_level);
        return true;
    }
    false
}
// lint:endregion
";

    #[test]
    fn revalidated_claim_passes() {
        assert!(run(CLAIM_OK).is_empty());
    }

    #[test]
    fn deleting_the_revalidation_fails() {
        let broken = CLAIM_OK.replace("if self.levels.get(w as usize) == UNVISITED {", "{");
        let f = run(&broken);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "racy-pairing");
    }

    #[test]
    fn racy_ok_waiver_passes_line_above_or_trailing() {
        let above = "\
// lint:protocol racy
// lint:region hot-path:owner
fn publish(&self) {
    // racy-ok: single-writer — own descriptor slot
    self.desc.f.store(self.seg.f);
}
// lint:endregion
";
        assert!(run(above).is_empty());
        let trailing = above.replace(
            "    // racy-ok: single-writer — own descriptor slot\n    self.desc.f.store(self.seg.f);",
            "    self.desc.f.store(self.seg.f); // racy-ok: single-writer",
        );
        assert!(run(&trailing).is_empty());
    }

    #[test]
    fn sanity_check_identifiers_count_as_revalidation() {
        let src = "\
// lint:protocol racy
// lint:region hot-path:steal
fn steal(&self) {
    if !self.snapshot_sanity_check(q, r) { return; }
    self.descs.set(q, mid, r);
}
// lint:endregion
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn unmarked_files_and_unregioned_claims_are_exempt() {
        // No protocol marker: same code, no findings.
        let unmarked = CLAIM_OK.replace("// lint:protocol racy\n", "");
        let broken = unmarked.replace("if self.levels.get(w as usize) == UNVISITED {", "{");
        assert!(run(&broken).is_empty());
        // Marked file, but the claim sits outside any region.
        let outside = "// lint:protocol racy\nfn init(&self) { self.levels.set(0, 0); }\n";
        assert!(run(outside).is_empty());
    }

    #[test]
    fn unvisited_on_either_side_of_eq() {
        let src = "\
// lint:protocol racy
// lint:region hot-path:x
fn f(&self) {
    if UNVISITED == self.levels.get(0) {
        self.levels.set(0, 1);
    }
}
// lint:endregion
";
        assert!(run(src).is_empty());
    }

    #[test]
    fn string_unvisited_does_not_revalidate() {
        let src = "\
// lint:protocol racy
// lint:region hot-path:x
fn f(&self) {
    let msg = \"== UNVISITED\";
    self.levels.set(0, 1);
}
// lint:endregion
";
        let f = run(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }
}
