//! Criterion end-to-end BFS benchmarks: every algorithm and baseline on
//! a mid-size scale-free graph and a mesh graph — the per-table-cell
//! measurement of Table V in criterion form (with statistical rigor on a
//! fixed source).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obfs_bench::{Contender, ContenderPool};
use obfs_core::BfsOptions;
use obfs_graph::gen::suite::PaperGraph;
use std::hint::black_box;

const DIVISOR: u64 = 512; // small enough for criterion's many iterations
const THREADS: usize = 4;

fn bfs_all_algorithms(c: &mut Criterion) {
    let graphs = [
        ("wikipedia", PaperGraph::Wikipedia.generate(DIVISOR, 1)),
        ("cage14", PaperGraph::Cage14.generate(DIVISOR, 1)),
    ];
    let opts = BfsOptions { threads: THREADS, ..Default::default() };
    let mut pool = ContenderPool::new(THREADS);
    for (name, graph) in &graphs {
        let src = (0..graph.num_vertices() as u32)
            .find(|&v| graph.degree(v) > 0)
            .expect("graph has edges");
        let mut g = c.benchmark_group(format!("bfs/{name}"));
        for contender in Contender::roster() {
            g.bench_with_input(
                BenchmarkId::from_parameter(contender.name()),
                &contender,
                |b, &contender| {
                    b.iter(|| {
                        let r = pool.run(contender, graph, src, &opts);
                        black_box(r.reached())
                    });
                },
            );
        }
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    targets = bfs_all_algorithms
}
criterion_main!(benches);
