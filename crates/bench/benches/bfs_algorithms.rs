//! End-to-end BFS benchmarks: every algorithm and baseline on a
//! mid-size scale-free graph and a mesh graph — the per-table-cell
//! measurement of Table V as a micro-bench (fixed source, repeated
//! samples).

use obfs_bench::micro::{bench_case, bench_header, DEFAULT_SAMPLES};
use obfs_bench::{Contender, ContenderPool};
use obfs_core::BfsOptions;
use obfs_graph::gen::suite::PaperGraph;
use std::hint::black_box;

const DIVISOR: u64 = 512; // small enough for many repetitions
const THREADS: usize = 4;

fn main() {
    bench_header("bfs: all contenders");
    let graphs = [
        ("wikipedia", PaperGraph::Wikipedia.generate(DIVISOR, 1)),
        ("cage14", PaperGraph::Cage14.generate(DIVISOR, 1)),
    ];
    let opts = BfsOptions { threads: THREADS, ..Default::default() };
    let mut pool = ContenderPool::new(THREADS);
    for (name, graph) in &graphs {
        let src = (0..graph.num_vertices() as u32)
            .find(|&v| graph.degree(v) > 0)
            .expect("graph has edges");
        for contender in Contender::roster() {
            bench_case(&format!("bfs/{name}/{}", contender.name()), DEFAULT_SAMPLES, || {
                let r = pool.run(contender, graph, src, &opts);
                black_box(r.reached())
            });
        }
    }
}
