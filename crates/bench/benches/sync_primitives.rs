//! Micro-benchmarks of the synchronization substrate: racy cell
//! traffic, spin-lock round trips, barrier rounds, and the zero-on-read
//! queue walk.

use obfs_bench::micro::{bench_case, bench_header, DEFAULT_SAMPLES};
use obfs_core::frontier::FrontierQueue;
use obfs_sync::{RacyBuf, SpinBarrier, SpinLock, TicketLock};
use std::hint::black_box;
use std::sync::Arc;

fn racy_cells() {
    let buf = RacyBuf::new(1024);
    bench_case("racy/load-store-1M", DEFAULT_SAMPLES, || {
        let mut acc = 0u32;
        for i in 0..1_000_000usize {
            let idx = i & 1023;
            acc = acc.wrapping_add(buf.get(idx));
            buf.set(idx, acc);
        }
        black_box(acc)
    });
}

fn locks() {
    let spin = SpinLock::new(0u64);
    bench_case("locks/spinlock-uncontended-100k", DEFAULT_SAMPLES, || {
        for _ in 0..100_000 {
            *spin.lock() += 1;
        }
        black_box(*spin.lock())
    });
    let ticket = TicketLock::new(0u64);
    bench_case("locks/ticketlock-uncontended-100k", DEFAULT_SAMPLES, || {
        for _ in 0..100_000 {
            *ticket.lock() += 1;
        }
        black_box(*ticket.lock())
    });
    // The optimistic alternative: plain load+store (no mutual exclusion —
    // the single-threaded baseline cost).
    let cell = obfs_sync::RacyUsize::new(0);
    bench_case("locks/racy-unprotected-100k", DEFAULT_SAMPLES, || {
        for _ in 0..100_000 {
            cell.store(cell.load() + 1);
        }
        black_box(cell.load())
    });
}

fn barrier_rounds() {
    for &p in &[2usize, 4] {
        bench_case(&format!("barrier/spin-barrier-{p}x1000"), DEFAULT_SAMPLES, || {
            let barrier = Arc::new(SpinBarrier::new(p));
            let handles: Vec<_> = (0..p)
                .map(|_| {
                    let ba = Arc::clone(&barrier);
                    std::thread::spawn(move || {
                        for _ in 0..1000 {
                            ba.wait();
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
    }
}

fn queue_walk() {
    bench_case("queue-walk/zero-on-read-64k", DEFAULT_SAMPLES, || {
        // The lock-free consumption pattern: read, clear, walk. Rebuilt
        // each iteration because the walk consumes the queue.
        let q = FrontierQueue::new(65536);
        let mut rear = 0;
        for v in 0..65536u32 {
            q.push(&mut rear, v);
        }
        let mut sum = 0u64;
        let mut i = 0;
        loop {
            let s = q.slot(i);
            if s == 0 {
                break;
            }
            q.clear_slot(i);
            sum += s as u64;
            i += 1;
        }
        black_box(sum)
    });
    let q = FrontierQueue::new(65536);
    let mut rear = 0;
    for v in 0..65536u32 {
        q.push(&mut rear, v);
    }
    bench_case("queue-walk/plain-read-64k", DEFAULT_SAMPLES, || {
        // The locked consumption pattern: read only.
        let mut sum = 0u64;
        for i in 0..65536 {
            sum += q.slot(i) as u64;
        }
        black_box(sum)
    });
}

fn main() {
    bench_header("sync primitives");
    racy_cells();
    locks();
    barrier_rounds();
    queue_walk();
}
