//! Criterion micro-benchmarks of the synchronization substrate: racy
//! cell traffic, spin-lock round trips, barrier rounds, and the
//! zero-on-read queue walk.

use criterion::{criterion_group, criterion_main, Criterion};
use obfs_core::frontier::FrontierQueue;
use obfs_sync::{RacyBuf, SpinBarrier, SpinLock, TicketLock};
use std::hint::black_box;
use std::sync::Arc;

fn racy_cells(c: &mut Criterion) {
    let mut g = c.benchmark_group("racy");
    g.bench_function("load-store-1M", |b| {
        let buf = RacyBuf::new(1024);
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..1_000_000usize {
                let idx = i & 1023;
                acc = acc.wrapping_add(buf.get(idx));
                buf.set(idx, acc);
            }
            black_box(acc)
        });
    });
    g.finish();
}

fn locks(c: &mut Criterion) {
    let mut g = c.benchmark_group("locks");
    g.bench_function("spinlock-uncontended-100k", |b| {
        let l = SpinLock::new(0u64);
        b.iter(|| {
            for _ in 0..100_000 {
                *l.lock() += 1;
            }
            black_box(*l.lock())
        });
    });
    g.bench_function("ticketlock-uncontended-100k", |b| {
        let l = TicketLock::new(0u64);
        b.iter(|| {
            for _ in 0..100_000 {
                *l.lock() += 1;
            }
            black_box(*l.lock())
        });
    });
    g.bench_function("racy-unprotected-100k", |b| {
        // The optimistic alternative: plain load+store (no mutual
        // exclusion — the single-threaded baseline cost).
        let cell = obfs_sync::RacyUsize::new(0);
        b.iter(|| {
            for _ in 0..100_000 {
                cell.store(cell.load() + 1);
            }
            black_box(cell.load())
        });
    });
    g.finish();
}

fn barrier_rounds(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier");
    g.sample_size(10);
    for &p in &[2usize, 4] {
        g.bench_function(format!("spin-barrier-{p}x1000"), |b| {
            b.iter(|| {
                let barrier = Arc::new(SpinBarrier::new(p));
                let handles: Vec<_> = (0..p)
                    .map(|_| {
                        let ba = Arc::clone(&barrier);
                        std::thread::spawn(move || {
                            for _ in 0..1000 {
                                ba.wait();
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
        });
    }
    g.finish();
}

fn queue_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue-walk");
    g.bench_function("zero-on-read-64k", |b| {
        b.iter_batched(
            || {
                let q = FrontierQueue::new(65536);
                let mut rear = 0;
                for v in 0..65536u32 {
                    q.push(&mut rear, v);
                }
                q
            },
            |q| {
                // The lock-free consumption pattern: read, clear, walk.
                let mut sum = 0u64;
                let mut i = 0;
                while let Some(s) = {
                    let v = q.slot(i);
                    (v != 0).then_some(v)
                } {
                    q.clear_slot(i);
                    sum += s as u64;
                    i += 1;
                }
                black_box(sum)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("plain-read-64k", |b| {
        let q = FrontierQueue::new(65536);
        let mut rear = 0;
        for v in 0..65536u32 {
            q.push(&mut rear, v);
        }
        b.iter(|| {
            // The locked consumption pattern: read only.
            let mut sum = 0u64;
            for i in 0..65536 {
                sum += q.slot(i) as u64;
            }
            black_box(sum)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = racy_cells, locks, barrier_rounds, queue_walk
}
criterion_main!(benches);
