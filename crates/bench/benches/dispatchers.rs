//! Criterion micro-benchmarks of the segment dispatchers: the locked
//! `⟨q, f⟩` cursor (BFSC) versus the optimistic racy cursor (BFSCL),
//! isolated from graph traversal. This quantifies the per-dispatch cost
//! the paper argues locks add.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obfs_sync::{RacyUsize, SpinLock};
use std::hint::black_box;
use std::sync::Arc;

/// Locked dispatch: lock, bump, unlock.
fn locked_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch");
    for &threads in &[1usize, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("locked", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cursor = Arc::new(SpinLock::new(0usize));
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let c = Arc::clone(&cursor);
                            std::thread::spawn(move || {
                                let mut grabbed = 0usize;
                                for _ in 0..10_000 {
                                    let mut cur = c.lock();
                                    *cur += 4;
                                    grabbed += black_box(*cur);
                                }
                                grabbed
                            })
                        })
                        .collect();
                    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                    black_box(total)
                });
            },
        );
        g.bench_with_input(
            BenchmarkId::new("optimistic", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let cursor = Arc::new(RacyUsize::new(0));
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            let c = Arc::clone(&cursor);
                            std::thread::spawn(move || {
                                let mut grabbed = 0usize;
                                for _ in 0..10_000 {
                                    // load-then-store: the racy update of
                                    // the optimistic dispatcher.
                                    let f = c.load();
                                    c.store(f + 4);
                                    grabbed += black_box(f);
                                }
                                grabbed
                            })
                        })
                        .collect();
                    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
                    black_box(total)
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = locked_dispatch
}
criterion_main!(benches);
