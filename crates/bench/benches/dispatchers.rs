//! Micro-benchmarks of the segment dispatchers: the locked `⟨q, f⟩`
//! cursor (BFSC) versus the optimistic racy cursor (BFSCL), isolated
//! from graph traversal. This quantifies the per-dispatch cost the paper
//! argues locks add.

use obfs_bench::micro::{bench_case, bench_header, DEFAULT_SAMPLES};
use obfs_sync::{RacyUsize, SpinLock};
use std::hint::black_box;
use std::sync::Arc;

/// Locked dispatch: lock, bump, unlock.
fn locked_dispatch(threads: usize) -> usize {
    let cursor = Arc::new(SpinLock::new(0usize));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let c = Arc::clone(&cursor);
            std::thread::spawn(move || {
                let mut grabbed = 0usize;
                for _ in 0..10_000 {
                    let mut cur = c.lock();
                    *cur += 4;
                    grabbed += black_box(*cur);
                }
                grabbed
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

/// Optimistic dispatch: the racy load-then-store of BFSCL.
fn optimistic_dispatch(threads: usize) -> usize {
    let cursor = Arc::new(RacyUsize::new(0));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let c = Arc::clone(&cursor);
            std::thread::spawn(move || {
                let mut grabbed = 0usize;
                for _ in 0..10_000 {
                    let f = c.load();
                    c.store(f + 4);
                    grabbed += black_box(f);
                }
                grabbed
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn main() {
    bench_header("dispatch: locked vs optimistic cursor");
    for &threads in &[1usize, 4, 8] {
        bench_case(&format!("locked/p={threads}"), DEFAULT_SAMPLES, || {
            black_box(locked_dispatch(threads))
        });
        bench_case(&format!("optimistic/p={threads}"), DEFAULT_SAMPLES, || {
            black_box(optimistic_dispatch(threads))
        });
    }
}
