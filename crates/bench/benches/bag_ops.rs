//! Micro-benchmarks of the Leiserson–Schardl bag (Baseline1's data
//! structure) against the paper's plain array queue: insert, union and
//! split throughput. Quantifies the "complicated data structure"
//! overhead the paper's simple arrays avoid.

use obfs_baselines::Bag;
use obfs_bench::micro::{bench_case, bench_header, DEFAULT_SAMPLES};
use std::hint::black_box;

fn main() {
    bench_header("frontier structures: bag vs array queue");
    for &n in &[1_000u32, 100_000] {
        bench_case(&format!("insert/bag/{n}"), DEFAULT_SAMPLES, || {
            let mut bag = Bag::new();
            for i in 0..n {
                bag.insert(black_box(i));
            }
            black_box(bag.len())
        });
        bench_case(&format!("insert/array-queue/{n}"), DEFAULT_SAMPLES, || {
            // The paper's structure: a plain vector push.
            let mut q: Vec<u32> = Vec::new();
            for i in 0..n {
                q.push(black_box(i));
            }
            black_box(q.len())
        });
    }
    bench_case("union-2x50k", DEFAULT_SAMPLES, || {
        let mut x = Bag::new();
        let mut y = Bag::new();
        for i in 0..50_000u32 {
            x.insert(i);
            y.insert(i + 50_000);
        }
        x.union(y);
        black_box(x.len())
    });
    bench_case("split-100k", DEFAULT_SAMPLES, || {
        let mut x = Bag::new();
        for i in 0..100_000u32 {
            x.insert(i);
        }
        let y = x.split();
        black_box((x.len(), y.len()))
    });
    let mut walk = Bag::new();
    for i in 0..100_000u32 {
        walk.insert(i);
    }
    bench_case("walk-100k", DEFAULT_SAMPLES, || {
        let mut sum = 0u64;
        walk.for_each(|v| sum += v as u64);
        black_box(sum)
    });
}
