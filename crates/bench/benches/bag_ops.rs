//! Criterion micro-benchmarks of the Leiserson–Schardl bag (Baseline1's
//! data structure) against the paper's plain array queue: insert, union
//! and split throughput. Quantifies the "complicated data structure"
//! overhead the paper's simple arrays avoid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use obfs_baselines::Bag;
use std::hint::black_box;

fn bag_insert(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontier-insert");
    for &n in &[1_000u32, 100_000] {
        g.bench_with_input(BenchmarkId::new("bag", n), &n, |b, &n| {
            b.iter(|| {
                let mut bag = Bag::new();
                for i in 0..n {
                    bag.insert(black_box(i));
                }
                black_box(bag.len())
            });
        });
        g.bench_with_input(BenchmarkId::new("array-queue", n), &n, |b, &n| {
            b.iter(|| {
                // The paper's structure: a plain vector push.
                let mut q: Vec<u32> = Vec::new();
                for i in 0..n {
                    q.push(black_box(i));
                }
                black_box(q.len())
            });
        });
    }
    g.finish();
}

fn bag_union_split(c: &mut Criterion) {
    let mut g = c.benchmark_group("bag-structure");
    g.bench_function("union-2x50k", |b| {
        b.iter_batched(
            || {
                let mut x = Bag::new();
                let mut y = Bag::new();
                for i in 0..50_000u32 {
                    x.insert(i);
                    y.insert(i + 50_000);
                }
                (x, y)
            },
            |(mut x, y)| {
                x.union(y);
                black_box(x.len())
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("split-100k", |b| {
        b.iter_batched(
            || {
                let mut x = Bag::new();
                for i in 0..100_000u32 {
                    x.insert(i);
                }
                x
            },
            |mut x| {
                let y = x.split();
                black_box((x.len(), y.len()))
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.bench_function("walk-100k", |b| {
        let mut x = Bag::new();
        for i in 0..100_000u32 {
            x.insert(i);
        }
        b.iter(|| {
            let mut sum = 0u64;
            x.for_each(|v| sum += v as u64);
            black_box(sum)
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3));
    targets = bag_insert, bag_union_split
}
criterion_main!(benches);
