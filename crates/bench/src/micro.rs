//! Minimal micro-benchmark harness for the `benches/` targets.
//!
//! The build is fully offline, so the bench targets cannot pull in an
//! external statistics harness; this module provides the small subset we
//! need — timed repetitions with Welford summaries — on top of
//! `obfs_util`. Bench targets are plain `main()` binaries
//! (`harness = false`) and print one line per case.

use obfs_util::timing::as_millis_f64;
use obfs_util::OnlineStats;
use std::time::Instant;

/// Default sample count per case (after one warm-up run).
pub const DEFAULT_SAMPLES: usize = 10;

/// Time `f` for `samples` iterations (plus one untimed warm-up) and
/// print `name  mean ± stddev [min … max] ms/iter`. Returns the mean in
/// milliseconds so callers can assert or compare.
pub fn bench_case<R>(name: &str, samples: usize, mut f: impl FnMut() -> R) -> f64 {
    std::hint::black_box(f());
    let mut stats = OnlineStats::new();
    for _ in 0..samples.max(1) {
        let t = Instant::now();
        std::hint::black_box(f());
        stats.push(as_millis_f64(t.elapsed()));
    }
    println!(
        "{name:<44} {:>9.3} ± {:>7.3} ms/iter  [{:.3} … {:.3}]  (n={})",
        stats.mean(),
        stats.stddev(),
        stats.min(),
        stats.max(),
        stats.count(),
    );
    stats.mean()
}

/// Print the standard bench header. `cargo bench` forwards harness flags
/// such as `--bench` to `harness = false` targets; callers pass argv here
/// so unknown flags are ignored rather than fatal.
pub fn bench_header(title: &str) {
    println!("== {title} ==");
    let extra: Vec<String> = std::env::args().skip(1).collect();
    if !extra.is_empty() {
        println!("   (ignoring harness args: {})", extra.join(" "));
    }
}
