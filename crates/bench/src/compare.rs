//! Regression gate: diff two schema-v2..v4 `BENCH_*.json` reports.
//!
//! The bench binaries emit machine-readable reports with per-result
//! time summaries (mean/stddev over repeated sources) and counter
//! totals. This module aligns two such reports by `(contender, graph)`
//! and flags *regressions*: mean-time growth or TEPS loss beyond a
//! noise threshold derived from the **recorded stddev** (so noisy
//! configurations get proportionally wider gates and quiet ones stay
//! tight), and counter blow-ups (fetch retries, stale aborts, steal
//! failures) beyond a coarser tolerance. An aggregate harmonic-TEPS
//! check catches the "every result 3% worse, none individually over
//! threshold" death-by-a-thousand-cuts case.
//!
//! The CLI wrapper (`obfs-bench` bin `compare`) exits nonzero when any
//! regression fires, which is what CI gates on. Its `--scale-time`
//! flag synthetically inflates the contender's times before comparing —
//! CI uses `compare X X --scale-time 1.5` as a self-test that the gate
//! actually trips.

use crate::json::Json;

/// Gate thresholds. All relative quantities are fractions (0.10 = 10%).
#[derive(Debug, Clone)]
pub struct CompareOpts {
    /// Minimum relative headroom on mean time / TEPS, even for noise-free
    /// baselines.
    pub rel_tol: f64,
    /// Noise multiplier: the gate widens to `sigma ×` the recorded
    /// relative stddev when that exceeds `rel_tol`.
    pub sigma: f64,
    /// Relative headroom for work counters (retries, aborts, steal
    /// failures) — wider than time, counters are inherently racier.
    pub counter_tol: f64,
    /// Absolute counter slack: deltas below this never fire (a handful
    /// of extra retries on a near-zero baseline is not a regression).
    pub counter_floor: f64,
    /// Self-test knob: multiply the contender report's mean times by
    /// this factor (and divide its TEPS) before comparing. 1.0 = off.
    pub scale_time: f64,
}

impl Default for CompareOpts {
    fn default() -> Self {
        Self { rel_tol: 0.10, sigma: 3.0, counter_tol: 0.25, counter_floor: 64.0, scale_time: 1.0 }
    }
}

/// One compared metric of one `(contender, graph)` result pair.
#[derive(Debug, Clone)]
pub struct Delta {
    /// Algorithm name.
    pub contender: String,
    /// Graph name (empty for report-wide aggregates).
    pub graph: String,
    /// Metric name (`time_ms`, `teps`, `harmonic_teps`, or a counter).
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Contender value (after `scale_time`, if set).
    pub new: f64,
    /// Signed relative change, `(new - base) / base` (0 if base is 0).
    pub change: f64,
    /// The gate width this delta was judged against (relative).
    pub allowed: f64,
    /// Whether this delta trips the gate.
    pub regression: bool,
}

/// Informational kernel-backend identity of one matched result pair
/// (schema-v4 `kernel_backend`). Never gated: the dispatched kernels
/// are interchangeable by construction, and the probe legitimately
/// picks differently on different machines — the note exists so a
/// surprise backend flip is *visible* next to a time regression.
#[derive(Debug, Clone)]
pub struct BackendNote {
    /// `contender/graph` pair key.
    pub key: String,
    /// Baseline backend label (`"-"` if the baseline predates v4).
    pub base: String,
    /// Contender backend label (`"-"` if absent).
    pub new: String,
}

/// Informational serve-telemetry shape of one matched result pair
/// (schema-v5 `serve.telemetry`). Never gated: shed rate and batch
/// occupancy describe the workload's interaction with the admission
/// gate and the coalescer, and legitimately move with capacity/burst
/// settings — the note exists so a shed-rate or occupancy shift is
/// *visible* next to a `serve_qps` regression it would explain.
#[derive(Debug, Clone)]
pub struct TelemetryNote {
    /// `contender/graph` pair key.
    pub key: String,
    /// Baseline `(shed_rate, occupancy)`; `None` if the baseline
    /// predates schema v5.
    pub base: Option<(f64, f64)>,
    /// Contender `(shed_rate, occupancy)`; `None` if absent.
    pub new: Option<(f64, f64)>,
}

/// The full diff of two reports.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every compared metric, in report order.
    pub deltas: Vec<Delta>,
    /// `(contender, graph)` keys present in the baseline but missing
    /// from the contender report (treated as regressions: a silently
    /// vanished configuration must not pass the gate).
    pub missing: Vec<String>,
    /// Keys present only in the contender report (informational).
    pub added: Vec<String>,
    /// Kernel-backend identities of matched pairs that record one
    /// (informational, never a regression).
    pub kernel_backends: Vec<BackendNote>,
    /// Serve-telemetry shape (shed rate, batch occupancy) of matched
    /// pairs that record a schema-v5 `serve.telemetry` block
    /// (informational, never a regression).
    pub telemetry: Vec<TelemetryNote>,
}

impl Comparison {
    /// Deltas that tripped the gate.
    pub fn regressions(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.regression).collect()
    }

    /// Whether the gate fails (any regression, or any missing result).
    pub fn failed(&self) -> bool {
        !self.missing.is_empty() || self.deltas.iter().any(|d| d.regression)
    }

    /// Deterministic JSON form.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("failed".into(), Json::Bool(self.failed())),
            (
                "regressions".into(),
                Json::Num(self.deltas.iter().filter(|d| d.regression).count() as f64),
            ),
            (
                "missing".into(),
                Json::Arr(self.missing.iter().map(|m| Json::Str(m.clone())).collect()),
            ),
            (
                "added".into(),
                Json::Arr(self.added.iter().map(|m| Json::Str(m.clone())).collect()),
            ),
            (
                "kernel_backends".into(),
                Json::Arr(
                    self.kernel_backends
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("key".into(), Json::Str(b.key.clone())),
                                ("base".into(), Json::Str(b.base.clone())),
                                ("new".into(), Json::Str(b.new.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "telemetry".into(),
                Json::Arr(
                    self.telemetry
                        .iter()
                        .map(|t| {
                            let side = |s: &Option<(f64, f64)>| match s {
                                Some((shed, occ)) => Json::Obj(vec![
                                    ("shed_rate".into(), Json::Num(*shed)),
                                    ("occupancy".into(), Json::Num(*occ)),
                                ]),
                                None => Json::Null,
                            };
                            Json::Obj(vec![
                                ("key".into(), Json::Str(t.key.clone())),
                                ("base".into(), side(&t.base)),
                                ("new".into(), side(&t.new)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "deltas".into(),
                Json::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("contender".into(), Json::Str(d.contender.clone())),
                                ("graph".into(), Json::Str(d.graph.clone())),
                                ("metric".into(), Json::Str(d.metric.clone())),
                                ("base".into(), Json::Num(d.base)),
                                ("new".into(), Json::Num(d.new)),
                                ("change".into(), Json::Num(d.change)),
                                ("allowed".into(), Json::Num(d.allowed)),
                                ("regression".into(), Json::Bool(d.regression)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable report: regressions first, then a summary line.
    pub fn render_table(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for m in &self.missing {
            writeln!(out, "MISSING  {m} (in baseline, absent from contender)").unwrap();
        }
        for m in &self.added {
            writeln!(out, "added    {m} (new in contender, not gated)").unwrap();
        }
        for b in &self.kernel_backends {
            let flip = if b.base != b.new { "  (changed — informational)" } else { "" };
            writeln!(out, "backend  {:<26} {} -> {}{flip}", b.key, b.base, b.new).unwrap();
        }
        for t in &self.telemetry {
            let side = |s: &Option<(f64, f64)>| match s {
                Some((shed, occ)) => format!("shed {:.1}% occ {occ:.1}", shed * 100.0),
                None => "-".to_string(),
            };
            writeln!(
                out,
                "serve    {:<26} {} -> {}  (informational)",
                t.key,
                side(&t.base),
                side(&t.new)
            )
            .unwrap();
        }
        let regs = self.regressions();
        for d in &regs {
            writeln!(
                out,
                "REGRESSION  {:<10} {:<14} {:<16} {:>12.4} -> {:>12.4}  ({:+.1}%, allowed {:.1}%)",
                d.contender,
                d.graph,
                d.metric,
                d.base,
                d.new,
                d.change * 100.0,
                d.allowed * 100.0
            )
            .unwrap();
        }
        writeln!(
            out,
            "{}: {} metric(s) compared, {} regression(s), {} missing",
            if self.failed() { "FAIL" } else { "OK" },
            self.deltas.len(),
            regs.len(),
            self.missing.len()
        )
        .unwrap();
        out
    }
}

fn f(v: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for k in path {
        cur = cur.get(k)?;
    }
    cur.as_f64()
}

fn key_of(r: &Json) -> Option<String> {
    let c = r.get("contender").and_then(Json::as_str)?;
    let g = r.get("graph").and_then(Json::as_str)?;
    Some(format!("{c}/{g}"))
}

/// Relative noise of one result: recorded stddev / mean of its time
/// summary (0 when degenerate).
fn rel_noise(r: &Json) -> f64 {
    let mean = f(r, &["time_ms", "mean"]).unwrap_or(0.0);
    let sd = f(r, &["time_ms", "stddev"]).unwrap_or(0.0);
    if mean > 0.0 && sd.is_finite() {
        sd / mean
    } else {
        0.0
    }
}

/// Harmonic-mean TEPS across a report's results (the graph500-style
/// aggregate: reciprocal of the mean reciprocal).
pub fn harmonic_teps(results: &[&Json]) -> f64 {
    let mut inv_sum = 0.0;
    let mut n = 0u64;
    for r in results {
        if let Some(t) = f(r, &["teps"]) {
            if t > 0.0 {
                inv_sum += 1.0 / t;
                n += 1;
            }
        }
    }
    if n == 0 || inv_sum == 0.0 {
        0.0
    } else {
        n as f64 / inv_sum
    }
}

/// Counters gated per result, as `(label, json path)` pairs. More work
/// per traversal is a protocol regression even when wall time hides it
/// (e.g. on an unloaded machine).
const GATED_COUNTERS: &[(&str, &[&str])] = &[
    ("fetch_retries", &["counters", "fetch_retries"]),
    ("stale_slot_aborts", &["counters", "stale_slot_aborts"]),
    ("segments_fetched", &["counters", "segments_fetched"]),
    ("steal_attempts", &["steal", "attempts"]),
];

/// Diff `base` against `new` (both parsed `BENCH_*.json` documents).
/// Results are aligned by `(contender, graph)`; see [`CompareOpts`] for
/// the gate maths. Errors only on malformed documents — a regression is
/// a *successful* comparison with [`Comparison::failed`] set.
pub fn compare(base: &Json, new: &Json, opts: &CompareOpts) -> Result<Comparison, String> {
    let base_results =
        base.get("results").and_then(Json::as_arr).ok_or("baseline: missing results[]")?;
    let new_results =
        new.get("results").and_then(Json::as_arr).ok_or("contender: missing results[]")?;
    let mut cmp = Comparison::default();

    let mut new_by_key: Vec<(String, &Json)> = Vec::new();
    for r in new_results {
        new_by_key.push((key_of(r).ok_or("contender: result without contender/graph")?, r));
    }
    let mut matched: Vec<bool> = vec![false; new_by_key.len()];

    let mut base_matched: Vec<&Json> = Vec::new();
    let mut new_matched: Vec<&Json> = Vec::new();

    for b in base_results {
        let key = key_of(b).ok_or("baseline: result without contender/graph")?;
        let Some(pos) = new_by_key.iter().position(|(k, _)| *k == key) else {
            cmp.missing.push(key);
            continue;
        };
        matched[pos] = true;
        let n = new_by_key[pos].1;
        base_matched.push(b);
        new_matched.push(n);

        let contender = b.get("contender").and_then(Json::as_str).unwrap_or("").to_string();
        let graph = b.get("graph").and_then(Json::as_str).unwrap_or("").to_string();
        // Gate width: the larger of the flat tolerance and sigma× the
        // noisier side's recorded relative stddev.
        let noise = rel_noise(b).max(rel_noise(n));
        let allowed = opts.rel_tol.max(opts.sigma * noise);

        let bt = f(b, &["time_ms", "mean"]).ok_or_else(|| format!("{key}: no time_ms.mean"))?;
        let nt = f(n, &["time_ms", "mean"]).ok_or_else(|| format!("{key}: no time_ms.mean"))?
            * opts.scale_time;
        let change = if bt > 0.0 { (nt - bt) / bt } else { 0.0 };
        cmp.deltas.push(Delta {
            contender: contender.clone(),
            graph: graph.clone(),
            metric: "time_ms".into(),
            base: bt,
            new: nt,
            change,
            allowed,
            regression: change > allowed,
        });

        if let (Some(bteps), Some(nteps)) = (f(b, &["teps"]), f(n, &["teps"])) {
            let nteps = nteps / opts.scale_time;
            let change = if bteps > 0.0 { (nteps - bteps) / bteps } else { 0.0 };
            cmp.deltas.push(Delta {
                contender: contender.clone(),
                graph: graph.clone(),
                metric: "teps".into(),
                base: bteps,
                new: nteps,
                change,
                allowed,
                regression: -change > allowed, // TEPS regress downward
            });
        }

        // Schema-v4 kernel identity: recorded but never gated (see
        // [`BackendNote`]).
        let bk = b.get("kernel_backend").and_then(Json::as_str);
        let nk = n.get("kernel_backend").and_then(Json::as_str);
        if bk.is_some() || nk.is_some() {
            cmp.kernel_backends.push(BackendNote {
                key: key.clone(),
                base: bk.unwrap_or("-").to_string(),
                new: nk.unwrap_or("-").to_string(),
            });
        }

        // Schema-v5 serve-telemetry shape: recorded but never gated
        // (see [`TelemetryNote`]).
        let tele_shape = |r: &Json| -> Option<(f64, f64)> {
            let fin = r.get("serve")?.get("telemetry")?.get("final")?;
            let g = |k: &str| fin.get(k).and_then(Json::as_f64);
            let (sub, shed) = (g("submitted")?, g("shed")?);
            let rate = if sub + shed > 0.0 { shed / (sub + shed) } else { 0.0 };
            let (runs, coal) = (g("batched_runs")?, g("coalesced")?);
            let occ = if runs > 0.0 { coal / runs } else { 0.0 };
            Some((rate, occ))
        };
        let (bt2, nt2) = (tele_shape(b), tele_shape(n));
        if bt2.is_some() || nt2.is_some() {
            cmp.telemetry.push(TelemetryNote { key: key.clone(), base: bt2, new: nt2 });
        }

        for (label, path) in GATED_COUNTERS {
            let (Some(bc), Some(nc)) = (f(b, path), f(n, path)) else { continue };
            let slack = (opts.counter_tol * bc).max(opts.counter_floor);
            let change = if bc > 0.0 { (nc - bc) / bc } else { 0.0 };
            cmp.deltas.push(Delta {
                contender: contender.clone(),
                graph: graph.clone(),
                metric: (*label).into(),
                base: bc,
                new: nc,
                change,
                allowed: slack / bc.max(1.0),
                regression: nc > bc + slack,
            });
        }

        // Serve-layer metrics (`bombard` reports): query throughput
        // regresses downward, tail latency upward. Both honor the
        // `scale_time` self-test like the traversal metrics do.
        if let (Some(bq), Some(nq)) = (f(b, &["serve", "qps"]), f(n, &["serve", "qps"])) {
            let nq = nq / opts.scale_time;
            let change = if bq > 0.0 { (nq - bq) / bq } else { 0.0 };
            cmp.deltas.push(Delta {
                contender: contender.clone(),
                graph: graph.clone(),
                metric: "serve_qps".into(),
                base: bq,
                new: nq,
                change,
                allowed,
                regression: -change > allowed,
            });
        }
        if let (Some(bp), Some(np)) = (f(b, &["serve", "p99_ms"]), f(n, &["serve", "p99_ms"])) {
            let np = np * opts.scale_time;
            let change = if bp > 0.0 { (np - bp) / bp } else { 0.0 };
            cmp.deltas.push(Delta {
                contender: contender.clone(),
                graph: graph.clone(),
                metric: "serve_p99_ms".into(),
                base: bp,
                new: np,
                change,
                allowed,
                regression: change > allowed,
            });
        }
        // Batched-serving throughput (schema-v3 `serve.batch`, bombard
        // `--batch`): queries/sec over coalesced multi-source runs.
        // Regresses downward like the other throughput metrics and
        // honors the `scale_time` self-test. Guards the whole batching
        // pipeline — a coalescing policy or batch-kernel regression
        // shows up here even when solo-query qps is unchanged.
        if let (Some(bq), Some(nq)) =
            (f(b, &["serve", "batch", "qps"]), f(n, &["serve", "batch", "qps"]))
        {
            let nq = nq / opts.scale_time;
            let change = if bq > 0.0 { (nq - bq) / bq } else { 0.0 };
            cmp.deltas.push(Delta {
                contender: contender.clone(),
                graph: graph.clone(),
                metric: "serve_batch_qps".into(),
                base: bq,
                new: nq,
                change,
                allowed,
                regression: -change > allowed,
            });
        }
    }

    for (pos, (key, _)) in new_by_key.iter().enumerate() {
        if !matched[pos] {
            cmp.added.push(key.clone());
        }
    }

    // Aggregate harmonic TEPS over the matched pairs: catches uniform
    // small slowdowns that stay under every per-result gate.
    if !base_matched.is_empty() {
        let bh = harmonic_teps(&base_matched);
        let nh = harmonic_teps(&new_matched) / opts.scale_time;
        if bh > 0.0 && nh > 0.0 {
            let noise = base_matched
                .iter()
                .zip(&new_matched)
                .map(|(b, n)| rel_noise(b).max(rel_noise(n)))
                .fold(0.0f64, f64::max);
            // Means across results average noise down; still use the
            // max recorded noise to stay conservative, but at half the
            // per-result sigma.
            let allowed = opts.rel_tol.max(opts.sigma * 0.5 * noise);
            let change = (nh - bh) / bh;
            cmp.deltas.push(Delta {
                contender: "*".into(),
                graph: "*".into(),
                metric: "harmonic_teps".into(),
                base: bh,
                new: nh,
                change,
                allowed,
                regression: -change > allowed,
            });
        }
    }

    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal two-result report; `scale` multiplies times (and
    /// divides TEPS), `retries` sets the fetch_retries counter.
    fn report(scale: f64, retries: u64, stddev: f64) -> Json {
        let result = |algo: &str, graph: &str, ms: f64| {
            Json::Obj(vec![
                ("contender".into(), Json::Str(algo.into())),
                ("graph".into(), Json::Str(graph.into())),
                (
                    "time_ms".into(),
                    Json::Obj(vec![
                        ("count".into(), Json::Num(5.0)),
                        ("mean".into(), Json::Num(ms * scale)),
                        ("stddev".into(), Json::Num(stddev)),
                        ("min".into(), Json::Num(ms * scale * 0.9)),
                        ("max".into(), Json::Num(ms * scale * 1.1)),
                    ]),
                ),
                ("teps".into(), Json::Num(1e6 / (ms * scale))),
                (
                    "counters".into(),
                    Json::Obj(vec![
                        ("segments_fetched".into(), Json::Num(1000.0)),
                        ("fetch_retries".into(), Json::Num(retries as f64)),
                        ("stale_slot_aborts".into(), Json::Num(10.0)),
                        ("dedup_skips".into(), Json::Num(0.0)),
                    ]),
                ),
                (
                    "steal".into(),
                    Json::Obj(vec![
                        ("attempts".into(), Json::Num(500.0)),
                        ("success".into(), Json::Num(400.0)),
                    ]),
                ),
            ])
        };
        Json::Obj(vec![
            ("schema_version".into(), Json::Num(2.0)),
            ("bench".into(), Json::Str("test".into())),
            (
                "results".into(),
                Json::Arr(vec![result("BFS_WSL", "wikipedia", 4.0), result("BFS_CL", "grid", 9.0)]),
            ),
        ])
    }

    #[test]
    fn identical_reports_pass() {
        let r = report(1.0, 100, 0.05);
        let c = compare(&r, &r, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        assert!(c.missing.is_empty() && c.added.is_empty());
        // time + teps + 4 counters per pair, + harmonic aggregate.
        assert_eq!(c.deltas.len(), 2 * 6 + 1);
    }

    #[test]
    fn slowdown_beyond_tolerance_fails() {
        let base = report(1.0, 100, 0.05);
        let slow = report(1.6, 100, 0.05);
        let c = compare(&base, &slow, &CompareOpts::default()).unwrap();
        assert!(c.failed());
        let regs = c.regressions();
        assert!(regs.iter().any(|d| d.metric == "time_ms"), "{}", c.render_table());
        assert!(regs.iter().any(|d| d.metric == "teps"));
        assert!(regs.iter().any(|d| d.metric == "harmonic_teps"));
    }

    #[test]
    fn scale_time_self_test_trips_the_gate() {
        let r = report(1.0, 100, 0.05);
        let opts = CompareOpts { scale_time: 2.0, ..CompareOpts::default() };
        let c = compare(&r, &r, &opts).unwrap();
        assert!(c.failed(), "identity compare with 2x scale must fail");
        let c = compare(&r, &r, &CompareOpts { scale_time: 1.0, ..CompareOpts::default() })
            .unwrap();
        assert!(!c.failed());
    }

    /// Attach schema-v4 compaction/kernel fields to every result.
    fn with_kernel(mut doc: Json, backend: &str, compacted: u64) -> Json {
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        for r in rs {
                            if let Json::Obj(m) = r {
                                m.push((
                                    "kernel_backend".into(),
                                    Json::Str(backend.into()),
                                ));
                                m.push((
                                    "compacted_levels".into(),
                                    Json::Num(compacted as f64),
                                ));
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn kernel_backend_is_informational_never_gated() {
        // A backend flip between reports (different machine, different
        // probe outcome) is surfaced but must not fail the gate.
        let base = with_kernel(report(1.0, 100, 0.05), "wordwise", 3);
        let flipped = with_kernel(report(1.0, 100, 0.05), "scalar", 3);
        let c = compare(&base, &flipped, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        assert_eq!(c.kernel_backends.len(), 2);
        assert!(c.kernel_backends.iter().all(|b| b.base == "wordwise" && b.new == "scalar"));
        assert!(c.render_table().contains("changed — informational"));
        assert!(c.to_json().render().contains("kernel_backends"));
        // A v3 baseline without the key still gets a note (base "-").
        let c = compare(&report(1.0, 100, 0.05), &base, &CompareOpts::default()).unwrap();
        assert!(!c.failed());
        assert!(c.kernel_backends.iter().all(|b| b.base == "-" && b.new == "wordwise"));
    }

    #[test]
    fn gate_trips_on_synthetic_regression_in_a_compacted_run() {
        // The CI must-trip self-test in miniature: a compacted-run
        // report (compacted_levels > 0, kernel backend recorded) slowed
        // 1.5x must fail, proving the gate still has teeth on v4
        // reports carrying the new informational fields.
        let base = with_kernel(report(1.0, 100, 0.05), "wordwise", 3);
        let slow = with_kernel(report(1.5, 100, 0.05), "wordwise", 3);
        let c = compare(&base, &slow, &CompareOpts::default()).unwrap();
        assert!(c.failed(), "{}", c.render_table());
        assert!(c.regressions().iter().any(|d| d.metric == "time_ms"));
        assert!(c.regressions().iter().any(|d| d.metric == "harmonic_teps"));
        // And through the scale_time knob, exactly as CI invokes it
        // (`compare X X --scale-time 1.5`).
        let opts = CompareOpts { scale_time: 1.5, ..CompareOpts::default() };
        let c = compare(&base, &base, &opts).unwrap();
        assert!(c.failed(), "identity compare with 1.5x scale must fail");
    }

    /// Attach a serve block (qps, p99) to every result of a report.
    fn with_serve(mut doc: Json, qps: f64, p99: f64) -> Json {
        let serve = Json::Obj(vec![
            ("qps".into(), Json::Num(qps)),
            ("p99_ms".into(), Json::Num(p99)),
        ]);
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        for r in rs {
                            if let Json::Obj(m) = r {
                                m.push(("serve".into(), serve.clone()));
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn serve_metrics_gate_throughput_down_and_tail_up() {
        let base = with_serve(report(1.0, 100, 0.05), 200.0, 5.0);
        // Identical serve numbers pass and are compared.
        let c = compare(&base, &base, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        assert!(c.deltas.iter().any(|d| d.metric == "serve_qps"));
        assert!(c.deltas.iter().any(|d| d.metric == "serve_p99_ms"));
        // Throughput collapse fails.
        let slow = with_serve(report(1.0, 100, 0.05), 120.0, 5.0);
        let c = compare(&base, &slow, &CompareOpts::default()).unwrap();
        assert!(c.regressions().iter().any(|d| d.metric == "serve_qps"), "{}", c.render_table());
        // Tail-latency blowup fails.
        let tail = with_serve(report(1.0, 100, 0.05), 200.0, 9.0);
        let c = compare(&base, &tail, &CompareOpts::default()).unwrap();
        assert!(c.regressions().iter().any(|d| d.metric == "serve_p99_ms"));
        // qps *gain* and p99 *drop* are improvements, not regressions.
        let better = with_serve(report(1.0, 100, 0.05), 400.0, 1.0);
        let c = compare(&base, &better, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        // The scale-time self-test trips the serve gates too.
        let opts = CompareOpts { scale_time: 2.0, ..CompareOpts::default() };
        let c = compare(&base, &base, &opts).unwrap();
        assert!(c.regressions().iter().any(|d| d.metric == "serve_qps"));
        assert!(c.regressions().iter().any(|d| d.metric == "serve_p99_ms"));
    }

    /// Attach a schema-v3 `serve.batch` block (batched qps) to every
    /// result that already carries a serve block.
    fn with_batch(mut doc: Json, batch_qps: f64) -> Json {
        let batch = Json::Obj(vec![("qps".into(), Json::Num(batch_qps))]);
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        for r in rs {
                            if let Some(Json::Obj(serve)) =
                                r.get("serve").cloned().as_ref()
                            {
                                let mut serve = serve.clone();
                                serve.push(("batch".into(), batch.clone()));
                                if let Json::Obj(m) = r {
                                    m.retain(|(k, _)| k != "serve");
                                    m.push(("serve".into(), Json::Obj(serve)));
                                }
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn batched_serve_qps_gates_downward() {
        let base = with_batch(with_serve(report(1.0, 100, 0.05), 200.0, 5.0), 900.0);
        // Identity: compared, not flagged.
        let c = compare(&base, &base, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        assert!(c.deltas.iter().any(|d| d.metric == "serve_batch_qps"));
        // Batched throughput collapse fails even with solo qps steady.
        let slow = with_batch(with_serve(report(1.0, 100, 0.05), 200.0, 5.0), 500.0);
        let c = compare(&base, &slow, &CompareOpts::default()).unwrap();
        assert!(
            c.regressions().iter().any(|d| d.metric == "serve_batch_qps"),
            "{}",
            c.render_table()
        );
        assert!(!c.regressions().iter().any(|d| d.metric == "serve_qps"));
        // A batched-throughput gain is an improvement, not a regression.
        let better = with_batch(with_serve(report(1.0, 100, 0.05), 200.0, 5.0), 2000.0);
        assert!(!compare(&base, &better, &CompareOpts::default()).unwrap().failed());
        // The scale-time self-test trips this gate too.
        let opts = CompareOpts { scale_time: 2.0, ..CompareOpts::default() };
        let c = compare(&base, &base, &opts).unwrap();
        assert!(c.regressions().iter().any(|d| d.metric == "serve_batch_qps"));
        // A baseline without the batch block simply skips the metric.
        let v2 = with_serve(report(1.0, 100, 0.05), 200.0, 5.0);
        let c = compare(&v2, &base, &CompareOpts::default()).unwrap();
        assert!(!c.deltas.iter().any(|d| d.metric == "serve_batch_qps"));
    }

    /// Attach a schema-v5 `serve.telemetry` block to every result that
    /// already carries a serve block.
    fn with_telemetry(mut doc: Json, shed: u64, submitted: u64, runs: u64, coal: u64) -> Json {
        let int = |x: u64| Json::Num(x as f64);
        let tele = Json::Obj(vec![(
            "final".into(),
            Json::Obj(vec![
                ("submitted".into(), int(submitted)),
                ("shed".into(), int(shed)),
                ("batched_runs".into(), int(runs)),
                ("coalesced".into(), int(coal)),
            ]),
        )]);
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        for r in rs {
                            if let Some(Json::Obj(serve)) = r.get("serve").cloned().as_ref() {
                                let mut serve = serve.clone();
                                serve.push(("telemetry".into(), tele.clone()));
                                if let Json::Obj(m) = r {
                                    m.retain(|(k, _)| k != "serve");
                                    m.push(("serve".into(), Json::Obj(serve)));
                                }
                            }
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn serve_telemetry_shape_is_informational_never_gated() {
        // A big shed-rate and occupancy shift between reports is
        // surfaced but must not fail the gate on its own.
        let base = with_telemetry(with_serve(report(1.0, 100, 0.05), 200.0, 5.0), 0, 64, 2, 4);
        let shifted =
            with_telemetry(with_serve(report(1.0, 100, 0.05), 200.0, 5.0), 32, 32, 8, 64);
        let c = compare(&base, &shifted, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        assert_eq!(c.telemetry.len(), 2);
        let t = &c.telemetry[0];
        let (bs, bo) = t.base.unwrap();
        let (ns, no) = t.new.unwrap();
        assert!((bs - 0.0).abs() < 1e-9 && (bo - 2.0).abs() < 1e-9);
        assert!((ns - 0.5).abs() < 1e-9 && (no - 8.0).abs() < 1e-9);
        assert!(c.render_table().contains("serve    "), "{}", c.render_table());
        assert!(c.to_json().render().contains("shed_rate"));
        // A pre-v5 baseline still gets a note with its side absent.
        let c = compare(&with_serve(report(1.0, 100, 0.05), 200.0, 5.0), &base, &CompareOpts::default())
            .unwrap();
        assert!(!c.failed());
        assert!(c.telemetry.iter().all(|t| t.base.is_none() && t.new.is_some()));
        assert!(c.render_table().contains("- -> shed"), "{}", c.render_table());
    }

    #[test]
    fn noisy_baseline_widens_the_gate() {
        // 12% slower: over the flat 10% tolerance...
        let base = report(1.0, 100, 0.05);
        let slower = report(1.12, 100, 0.05);
        assert!(compare(&base, &slower, &CompareOpts::default()).unwrap().failed());
        // ...but inside 3 sigma when the recorded stddev is large
        // (stddev 0.4 on a 4ms mean = 10% rel noise; gate = 30%).
        let noisy_base = report(1.0, 100, 0.4);
        let noisy_slower = report(1.12, 100, 0.4);
        let c = compare(&noisy_base, &noisy_slower, &CompareOpts::default()).unwrap();
        assert!(
            !c.deltas.iter().any(|d| d.metric == "time_ms" && d.regression),
            "{}",
            c.render_table()
        );
    }

    #[test]
    fn counter_blowup_fails_small_jitter_passes() {
        let base = report(1.0, 1000, 0.05);
        // +30% retries: over counter_tol (25%).
        let c = compare(&base, &report(1.0, 1300, 0.05), &CompareOpts::default()).unwrap();
        assert!(c.regressions().iter().any(|d| d.metric == "fetch_retries"));
        // +5%: within tolerance.
        let c = compare(&base, &report(1.0, 1050, 0.05), &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        // Near-zero baseline: +40 retries is under the absolute floor.
        let tiny = report(1.0, 2, 0.05);
        let c = compare(&tiny, &report(1.0, 42, 0.05), &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
    }

    #[test]
    fn missing_result_fails_added_result_does_not() {
        let base = report(1.0, 100, 0.05);
        let mut one = report(1.0, 100, 0.05);
        if let Json::Obj(members) = &mut one {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        rs.truncate(1);
                    }
                }
            }
        }
        let c = compare(&base, &one, &CompareOpts::default()).unwrap();
        assert!(c.failed());
        assert_eq!(c.missing, vec!["BFS_CL/grid".to_string()]);
        // The reverse direction only reports "added".
        let c = compare(&one, &base, &CompareOpts::default()).unwrap();
        assert!(!c.failed(), "{}", c.render_table());
        assert_eq!(c.added, vec!["BFS_CL/grid".to_string()]);
    }

    #[test]
    fn json_and_table_forms_agree_on_failure() {
        let base = report(1.0, 100, 0.05);
        let slow = report(2.0, 100, 0.05);
        let c = compare(&base, &slow, &CompareOpts::default()).unwrap();
        assert!(c.failed());
        let j = c.to_json();
        assert_eq!(j.get("failed").and_then(Json::as_bool), Some(true));
        assert!(c.render_table().contains("REGRESSION"));
        assert!(c.render_table().contains("FAIL"));
        // Deterministic rendering.
        assert_eq!(j.render(), c.to_json().render());
    }

    #[test]
    fn malformed_reports_error_out() {
        let good = report(1.0, 100, 0.05);
        assert!(compare(&Json::Obj(vec![]), &good, &CompareOpts::default()).is_err());
        assert!(compare(&good, &Json::Null, &CompareOpts::default()).is_err());
    }
}
