//! Multi-source measurement driver: the paper averages each cell over
//! 1000 random non-zero-degree sources; we do the same with a
//! configurable (smaller) source count, validating results against
//! serial BFS along the way.

use crate::contender::{Contender, ContenderPool};
use obfs_core::serial::serial_bfs;
use obfs_core::BfsOptions;
use obfs_graph::{stats::sample_sources, CsrGraph, VertexId};
use obfs_util::OnlineStats;

/// Per-level series captured by one dedicated collection run (not the
/// timed runs, so enabling it cannot perturb the reported times). The
/// totals come from the *same* run, so summing the per-level counter
/// deltas reproduces `totals` exactly — the conservation invariant
/// `json::validate_report` checks.
#[derive(Debug, Clone)]
pub struct SeriesRun {
    /// Per-level counter deltas merged across workers.
    pub levels: Vec<obfs_core::LevelStats>,
    /// The collection run's merged totals.
    pub totals: obfs_core::ThreadStats,
    /// Levels the watchdog degraded in the collection run.
    pub degraded_levels: u32,
}

/// Aggregated result of measuring one contender on one graph.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Contender display name.
    pub contender: String,
    /// Graph display name.
    pub graph: String,
    /// Per-source traversal wall time (milliseconds).
    pub time_ms: obfs_util::Summary,
    /// Mean traversed-edges-per-second across sources (Figure 3 metric).
    pub teps: f64,
    /// Mean duplicate-exploration overhead: explored / reached − 1.
    pub duplicate_overhead: f64,
    /// Merged steal counters (work-stealing contenders only).
    pub steal: obfs_core::StealCounters,
    /// Mean number of BFS levels.
    pub levels: f64,
    /// Total segments fetched from centralized/pool dispatchers.
    pub segments_fetched: u64,
    /// Total dispatcher fetch retries (raced/invalid fetches).
    pub fetch_retries: u64,
    /// Total segment walks aborted at a cleared slot.
    pub stale_slot_aborts: u64,
    /// Total pops skipped by the owner-array dedup.
    pub dedup_skips: u64,
    /// Total levels consumed through a prefix-sum-compacted frontier
    /// (0 unless the contender enables `BfsOptions::compaction`).
    pub compacted_levels: u64,
    /// Bitmap scan kernel the runs dispatched to (`"wordwise"` /
    /// `"scalar"`); `None` for serial and external contenders whose
    /// runs never touch the dispatched kernels.
    pub kernel_backend: Option<String>,
    /// Per-level series from one extra collection run; `None` unless
    /// measured via [`measure_with_series`].
    pub series: Option<SeriesRun>,
}

/// Measure `contender` on `graph` over `sources` random sources.
///
/// The first source's levels are validated against serial BFS — a wrong
/// parallel result aborts the benchmark rather than producing a bogus
/// table row.
pub fn measure(
    pool: &mut ContenderPool,
    contender: Contender,
    graph: &CsrGraph,
    graph_name: &str,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> Measurement {
    assert!(!sources.is_empty());
    let mut time = OnlineStats::new();
    let mut teps = OnlineStats::new();
    let mut dup = OnlineStats::new();
    let mut levels = OnlineStats::new();
    let mut steal = obfs_core::StealCounters::default();
    let mut segments_fetched = 0u64;
    let mut fetch_retries = 0u64;
    let mut stale_slot_aborts = 0u64;
    let mut dedup_skips = 0u64;
    let mut compacted_levels = 0u64;
    let mut kernel_backend = None;
    for (i, &src) in sources.iter().enumerate() {
        let r = pool.run(contender, graph, src, opts);
        if i == 0 {
            let ser = serial_bfs(graph, src);
            obfs_core::validate::check_levels(&r, &ser.levels).unwrap_or_else(|e| {
                panic!("{contender} on {graph_name} (src={src}) is WRONG: {e}")
            });
        }
        let reached = r.reached().max(1) as f64;
        let explored = r.stats.totals.vertices_explored as f64;
        time.push(r.stats.traversal_time.as_secs_f64() * 1e3);
        // TEPS convention: edges *scanned* during the traversal per
        // second of traversal time.
        teps.push(r.stats.teps(r.stats.totals.edges_scanned));
        dup.push((explored / reached - 1.0).max(0.0));
        levels.push(r.stats.levels as f64);
        steal.merge(&r.stats.totals.steal);
        segments_fetched += r.stats.totals.segments_fetched;
        fetch_retries += r.stats.totals.fetch_retries;
        stale_slot_aborts += r.stats.totals.stale_slot_aborts;
        dedup_skips += r.stats.totals.dedup_skips;
        compacted_levels += u64::from(r.stats.compacted_levels);
        // The probe is cached per process, so every parallel run of the
        // cell reports the same backend; keep the first.
        if kernel_backend.is_none() {
            kernel_backend = r.stats.kernel_backend.map(|b| b.label().to_string());
        }
    }
    Measurement {
        contender: contender.name(),
        graph: graph_name.to_string(),
        time_ms: time.summary(),
        teps: teps.mean(),
        duplicate_overhead: dup.mean(),
        steal,
        levels: levels.mean(),
        segments_fetched,
        fetch_retries,
        stale_slot_aborts,
        dedup_skips,
        compacted_levels,
        kernel_backend,
        series: None,
    }
}

/// [`measure`], then one extra (untimed) run with
/// [`BfsOptions::collect_level_stats`] to attach the per-level series.
pub fn measure_with_series(
    pool: &mut ContenderPool,
    contender: Contender,
    graph: &CsrGraph,
    graph_name: &str,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> Measurement {
    let mut m = measure(pool, contender, graph, graph_name, sources, opts);
    let collect = BfsOptions { collect_level_stats: true, ..opts.clone() };
    let r = pool.run(contender, graph, sources[0], &collect);
    // Serial runs and external baselines produce no per-level stats;
    // leave the series out rather than attach an empty one whose sums
    // cannot match the totals.
    if !r.stats.level_stats.is_empty() {
        m.series = Some(SeriesRun {
            levels: r.stats.level_stats,
            totals: r.stats.totals,
            degraded_levels: r.stats.degraded_levels,
        });
    }
    m
}

/// Sample `k` non-zero-degree sources deterministically.
pub fn pick_sources(graph: &CsrGraph, k: usize, seed: u64) -> Vec<VertexId> {
    sample_sources(graph, k, seed)
}

/// JSON line for machine-readable output (`--json`).
pub fn to_json(m: &Measurement) -> String {
    format!(
        "{{\"contender\":{:?},\"graph\":{:?},\"mean_ms\":{:.4},\"min_ms\":{:.4},\
         \"max_ms\":{:.4},\"teps\":{:.1},\"dup_overhead\":{:.5},\"levels\":{:.1},\
         \"steal_attempts\":{},\"steal_success\":{}}}",
        m.contender,
        m.graph,
        m.time_ms.mean,
        m.time_ms.min,
        m.time_ms.max,
        m.teps,
        m.duplicate_overhead,
        m.levels,
        m.steal.attempts,
        m.steal.success,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_core::Algorithm;
    use obfs_graph::gen;

    #[test]
    fn measure_produces_sane_numbers() {
        let g = gen::erdos_renyi(500, 3500, 3);
        let mut pool = ContenderPool::new(2);
        let opts = BfsOptions { threads: 2, ..Default::default() };
        let sources = pick_sources(&g, 3, 1);
        let m = measure(
            &mut pool,
            Contender::Ours(Algorithm::Bfscl),
            &g,
            "er",
            &sources,
            &opts,
        );
        assert_eq!(m.time_ms.count, 3);
        assert!(m.time_ms.mean > 0.0);
        assert!(m.teps > 0.0);
        assert!(m.duplicate_overhead >= 0.0);
        assert!(m.levels >= 1.0);
        assert!(
            matches!(m.kernel_backend.as_deref(), Some("wordwise" | "scalar")),
            "parallel runs must report the dispatched kernel"
        );
    }

    #[test]
    fn json_line_is_valid_shape() {
        let g = gen::star(100);
        let mut pool = ContenderPool::new(2);
        let opts = BfsOptions { threads: 2, ..Default::default() };
        let m = measure(&mut pool, Contender::Baseline1, &g, "star", &[0], &opts);
        let j = to_json(&m);
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"graph\":\"star\""));
    }
}
