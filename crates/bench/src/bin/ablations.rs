//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. segment-size policy for the optimistic centralized dispatcher;
//! 2. pool count `j` for BFSDL (1 = centralized ... p = distributed);
//! 3. §IV-D owner-array duplicate suppression on a dense graph;
//! 4. scale-free phase-2: static chunks vs optimistic edge stealing;
//! 5. hub threshold sensitivity for BFSWSL.

use obfs_bench::env::HostInfo;
use obfs_bench::harness::{measure, pick_sources};
use obfs_bench::table::{ms, Table};
use obfs_bench::{BenchArgs, Contender, ContenderPool};
use obfs_core::{Algorithm, BfsOptions, DedupMode, SegmentPolicy};
use obfs_graph::gen::suite::PaperGraph;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(args.threads));
    let wiki = PaperGraph::Wikipedia.generate(args.divisor, args.seed);
    let dense = PaperGraph::Rmat1B.generate(args.divisor * 4, args.seed);
    let wiki_sources = pick_sources(&wiki, args.sources, args.seed);
    let dense_sources = pick_sources(&dense, args.sources, args.seed);
    let mut pool = ContenderPool::new(args.threads);
    let base = BfsOptions { threads: args.threads, ..Default::default() };

    // 1. Segment policy sweep (BFSCL, wikipedia).
    println!("== Ablation 1: segment policy (BFS_CL, wikipedia) ==\n");
    let mut t = Table::new(&["policy", "time(ms)", "segments", "retries", "dup-overhead"]);
    let policies: Vec<(String, SegmentPolicy)> = vec![
        ("fixed(1)".into(), SegmentPolicy::Fixed(1)),
        ("fixed(16)".into(), SegmentPolicy::Fixed(16)),
        ("fixed(256)".into(), SegmentPolicy::Fixed(256)),
        ("adaptive(div=2)".into(), SegmentPolicy::Adaptive { div: 2, max: 4096 }),
        ("adaptive(div=8)".into(), SegmentPolicy::Adaptive { div: 8, max: 4096 }),
    ];
    for (name, segment) in policies {
        let opts = BfsOptions { segment, ..base.clone() };
        let m = measure(
            &mut pool,
            Contender::Ours(Algorithm::Bfscl),
            &wiki,
            "wikipedia",
            &wiki_sources,
            &opts,
        );
        t.row(vec![
            name,
            ms(m.time_ms.mean),
            m.segments_fetched.to_string(),
            m.fetch_retries.to_string(),
            format!("{:.4}", m.duplicate_overhead),
        ]);
    }
    println!("{}", t.render());

    // 2. Pool count sweep (BFSDL).
    println!("== Ablation 2: pool count j (BFS_DL, wikipedia) ==\n");
    let mut t = Table::new(&["pools", "time(ms)"]);
    let mut j = 1;
    while j <= args.threads {
        let opts = BfsOptions { pools: j, ..base.clone() };
        let m = measure(
            &mut pool,
            Contender::Ours(Algorithm::Bfsdl),
            &wiki,
            "wikipedia",
            &wiki_sources,
            &opts,
        );
        t.row(vec![j.to_string(), ms(m.time_ms.mean)]);
        j *= 2;
    }
    println!("{}", t.render());

    // 3. Owner-array dedup on the dense graph (§IV-D).
    println!("== Ablation 3: owner-array dedup (dense rmat, BFS_CL & BFS_WSL) ==\n");
    let mut t = Table::new(&["algorithm", "dedup", "time(ms)", "dup-overhead", "skips"]);
    for algo in [Algorithm::Bfscl, Algorithm::Bfswsl] {
        for dedup in [DedupMode::None, DedupMode::OwnerArray] {
            let opts = BfsOptions { dedup, ..base.clone() };
            let m = measure(
                &mut pool,
                Contender::Ours(algo),
                &dense,
                "rmat-dense",
                &dense_sources,
                &opts,
            );
            t.row(vec![
                algo.name().to_string(),
                format!("{dedup:?}"),
                ms(m.time_ms.mean),
                format!("{:.4}", m.duplicate_overhead),
                m.dedup_skips.to_string(),
            ]);
        }
    }
    println!("{}", t.render());

    // 4. Phase-2 strategy for the scale-free variant.
    println!("== Ablation 4: scale-free phase 2 (BFS_WSL, wikipedia) ==\n");
    let mut t = Table::new(&["phase2", "time(ms)"]);
    for (name, steal) in [("static-chunks", false), ("edge-stealing", true)] {
        let opts = BfsOptions { phase2_steal: steal, ..base.clone() };
        let m = measure(
            &mut pool,
            Contender::Ours(Algorithm::Bfswsl),
            &wiki,
            "wikipedia",
            &wiki_sources,
            &opts,
        );
        t.row(vec![name.to_string(), ms(m.time_ms.mean)]);
    }
    println!("{}", t.render());
    println!("(Paper §IV-B.3: the stealing phase-2 variant usually performed worse.)\n");

    // 5. Hub threshold sensitivity.
    println!("== Ablation 5: hub threshold (BFS_WSL, wikipedia) ==\n");
    let mut t = Table::new(&["threshold", "time(ms)"]);
    for thr in [16usize, 64, 256, 1024, usize::MAX] {
        let opts = BfsOptions { hub_threshold: Some(thr), ..base.clone() };
        let m = measure(
            &mut pool,
            Contender::Ours(Algorithm::Bfswsl),
            &wiki,
            "wikipedia",
            &wiki_sources,
            &opts,
        );
        let label =
            if thr == usize::MAX { "inf (no hubs)".to_string() } else { thr.to_string() };
        t.row(vec![label, ms(m.time_ms.mean)]);
    }
    println!("{}", t.render());

    // 6. NUMA-aware victim/pool selection (paper SIV-C) vs uniform.
    println!("== Ablation 6: NUMA policy (2-socket layout, wikipedia) ==\n");
    let mut t = Table::new(&["algorithm", "policy", "time(ms)", "steal-success%"]);
    for algo in [Algorithm::Bfswl, Algorithm::Bfsdl] {
        for (name, topo) in [
            ("uniform", None),
            ("2-socket", Some(obfs_runtime::Topology::blocked(args.threads, 2))),
        ] {
            let opts = BfsOptions { topology: topo, pools: 2, ..base.clone() };
            let m = measure(
                &mut pool,
                Contender::Ours(algo),
                &wiki,
                "wikipedia",
                &wiki_sources,
                &opts,
            );
            let sr = if m.steal.attempts == 0 {
                "-".to_string()
            } else {
                format!("{:.2}", 100.0 * m.steal.success as f64 / m.steal.attempts as f64)
            };
            t.row(vec![algo.name().to_string(), name.to_string(), ms(m.time_ms.mean), sr]);
        }
    }
    println!("{}", t.render());
}
