//! `bombard`: closed-loop stress driver for the resilient query engine.
//!
//! Where the other bench binaries time a single traversal at a time,
//! this one drives the `obfs-engine` admission/scheduling layer the way
//! a service would see it: bursts of concurrent queries against one
//! shared graph and one managed pool, with the admission gate shedding
//! whatever exceeds `--capacity`. It reports service-level numbers —
//! queries/sec and submit-to-response latency percentiles — alongside
//! the usual per-traversal metrics, and emits them as a `serve` block
//! in `BENCH_serve.json` so the `compare` gate can flag throughput or
//! tail-latency regressions (`serve_qps`, `serve_p99_ms`).
//!
//! The loop is *closed*: each burst is submitted, then fully drained
//! before the next begins. With `--burst` ≤ `--capacity` nothing is
//! shed and the run measures scheduling overhead; with `--burst` >
//! `--capacity` the overflow is shed at the door every round, which is
//! exactly the overload behavior CI smoke-tests.
//!
//! `--batch` runs every contender twice over the same workload — once
//! with coalescing disabled (`max_batch = 1`, the baseline the solo
//! `serve_qps` gate watches) and once with the scheduler folding
//! queued compatible queries into shared multi-source traversals (up
//! to `--max-batch` sources per run). The second pass lands in a
//! schema-v3 `serve.batch` block (occupancy, batched qps, speedup)
//! gated by `serve_batch_qps`. Use `--burst`/`--capacity` well above
//! `--max-batch` so the queue actually fills: coalescing only sees
//! queries that are *waiting* while a traversal is in flight.

use obfs_bench::env::HostInfo;
use obfs_bench::json::{self, summary_json, Json};
use obfs_bench::table::Table;
use obfs_bench::{BenchArgs, BenchReport};
use obfs_core::serial::serial_bfs;
use obfs_core::{Algorithm, StealCounters};
use obfs_engine::{Engine, EngineConfig, Query, QueryStatus, SubmitError};
use obfs_graph::gen::{rmat, RmatParams};
use obfs_graph::stats::sample_sources;
use obfs_util::{LogHistogram, OnlineStats, Xoshiro256StarStar};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine-specific knobs on top of the shared [`BenchArgs`].
struct BombardArgs {
    base: BenchArgs,
    /// Engine admission capacity (max in-flight).
    capacity: usize,
    /// Queries submitted per closed-loop round.
    burst: usize,
    /// Total submit attempts per contender.
    queries: usize,
    /// Default per-query deadline (0 = none).
    deadline_ms: u64,
    /// Batched mode: run each contender twice — coalescing disabled,
    /// then enabled — and report the batched throughput/occupancy next
    /// to the unbatched baseline (schema-v3 `serve.batch`).
    batch: bool,
    /// Coalescing width for the batched pass (clamped to [2, 64]).
    max_batch: usize,
    /// Serve the engine registry at this address and take the mid-run
    /// scrape over HTTP instead of in-process (needs `serve-http`).
    metrics_addr: Option<String>,
}

fn parse_args() -> BombardArgs {
    let mut own = BombardArgs {
        base: BenchArgs::default(),
        capacity: 8,
        burst: 8,
        queries: 64,
        deadline_ms: 0,
        batch: false,
        max_batch: obfs_core::MAX_BATCH,
        metrics_addr: None,
    };
    let mut burst_set = false;
    let mut rest: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().unwrap_or_else(|| panic!("flag {name} requires a value"))
        };
        let num = |s: String, name: &str| -> u64 {
            s.parse().unwrap_or_else(|_| panic!("bad value {s:?} for {name}"))
        };
        match flag.as_str() {
            "--capacity" => own.capacity = num(value("--capacity"), "--capacity") as usize,
            "--burst" => {
                own.burst = num(value("--burst"), "--burst") as usize;
                burst_set = true;
            }
            "--queries" => own.queries = num(value("--queries"), "--queries") as usize,
            "--deadline-ms" => own.deadline_ms = num(value("--deadline-ms"), "--deadline-ms"),
            "--batch" => own.batch = true,
            "--max-batch" => {
                own.max_batch = num(value("--max-batch"), "--max-batch") as usize;
            }
            "--metrics-addr" => own.metrics_addr = Some(value("--metrics-addr")),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --capacity <c> --burst <b> --queries <n> --deadline-ms <d> \
                     --batch --max-batch <k> --metrics-addr <host:port> \
                     plus the shared bench flags (--divisor --threads --seed --json)"
                );
                std::process::exit(0);
            }
            other => {
                rest.push(other.to_string());
                // Keep `--flag value` pairs together for BenchArgs.
                if matches!(
                    other,
                    "--divisor" | "--threads" | "--sources" | "--seed" | "--graph"
                        | "--chaos-seed" | "--watchdog-ms"
                ) {
                    rest.push(value(other));
                }
            }
        }
    }
    own.base = BenchArgs::parse_from(rest);
    if !burst_set {
        own.burst = own.capacity;
    }
    assert!(own.capacity >= 1, "--capacity must be >= 1");
    assert!(own.burst >= 1, "--burst must be >= 1");
    assert!(own.queries >= 1, "--queries must be >= 1");
    if own.batch {
        // Deadlined queries never coalesce (the engine keeps their
        // deadline contract by running them solo), so a batched pass
        // with a default deadline would silently measure nothing.
        assert!(
            own.deadline_ms == 0,
            "--batch is incompatible with --deadline-ms (deadlined queries never coalesce)"
        );
        own.max_batch = own.max_batch.clamp(2, obfs_core::MAX_BATCH);
    }
    #[cfg(not(feature = "serve-http"))]
    assert!(
        own.metrics_addr.is_none(),
        "--metrics-addr needs the `serve-http` feature; rebuild with \
         `--features obfs-bench/serve-http` (without it the mid-run scrape still \
         happens, in-process against the same registry)"
    );
    own
}

/// Everything one contender's closed loop produced.
struct LoopResult {
    admitted: u64,
    shed: u64,
    completed: u64,
    degraded: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    failed: u64,
    retries: u64,
    pool_rebuilds: u64,
    /// Coalesced multi-source traversals (k >= 2) the engine ran.
    batched_runs: u64,
    /// Queries answered by those coalesced runs.
    coalesced: u64,
    elapsed: Duration,
    /// Submit-to-response latency, microseconds.
    lat_us: LogHistogram,
    /// Per-completed-query traversal time, milliseconds.
    traversal_ms: OnlineStats,
    dup: OnlineStats,
    steal: StealCounters,
    /// Harmonic-mean traversal TEPS over completed queries.
    hmean_teps: f64,
    /// Schema-v5 `serve.telemetry` block: the engine registry's final
    /// snapshot plus the mid-run scrape (see `json::validate_report`).
    telemetry: Json,
}

/// Terminal-status counter names in the engine registry.
const TERMINALS: [&str; 5] = [
    "obfs_engine_queries_completed_total",
    "obfs_engine_queries_degraded_total",
    "obfs_engine_queries_cancelled_total",
    "obfs_engine_queries_deadline_exceeded_total",
    "obfs_engine_queries_failed_total",
];

fn drive(
    algo: Algorithm,
    graph: &Arc<obfs_graph::CsrGraph>,
    references: &HashMap<u32, (Vec<u32>, u64)>,
    sources: &[u32],
    args: &BombardArgs,
    max_batch: usize,
) -> LoopResult {
    let cfg = EngineConfig {
        threads: args.base.threads,
        capacity: args.capacity,
        default_deadline: (args.deadline_ms > 0)
            .then(|| Duration::from_millis(args.deadline_ms)),
        seed: args.base.seed,
        max_batch,
        ..Default::default()
    };
    let engine = Engine::new(Arc::clone(graph), cfg);
    #[cfg(feature = "serve-http")]
    let metrics_server = args.metrics_addr.as_deref().map(|addr| {
        obfs_telemetry::MetricsServer::start(
            Arc::clone(engine.telemetry().registry()),
            addr,
        )
        .unwrap_or_else(|e| panic!("--metrics-addr {addr}: {e}"))
    });
    // (mode, submitted, terminal, shed) captured mid-run: over HTTP when
    // a responder is up, in-process against the same registry otherwise.
    let mut scrape: Option<(&str, u64, u64, u64)> = None;
    let mut rng = Xoshiro256StarStar::new(args.base.seed ^ 0x00B0_BADD);
    let mut out = LoopResult {
        admitted: 0,
        shed: 0,
        completed: 0,
        degraded: 0,
        cancelled: 0,
        deadline_exceeded: 0,
        failed: 0,
        retries: 0,
        pool_rebuilds: 0,
        batched_runs: 0,
        coalesced: 0,
        elapsed: Duration::ZERO,
        lat_us: LogHistogram::new(),
        traversal_ms: OnlineStats::new(),
        dup: OnlineStats::new(),
        steal: StealCounters::default(),
        hmean_teps: 0.0,
        telemetry: Json::Null,
    };
    let mut inv_teps_sum = 0.0f64;
    let mut validated = false;
    let t0 = Instant::now();
    let mut attempts = 0usize;
    while attempts < args.queries {
        let want = args.burst.min(args.queries - attempts);
        let mut handles = Vec::with_capacity(want);
        for _ in 0..want {
            let src = sources[(rng.next_u64() as usize) % sources.len()];
            match engine.submit(Query::new(algo, src)) {
                Ok(h) => {
                    handles.push((h, src));
                    out.admitted += 1;
                }
                Err(SubmitError::Overloaded) => out.shed += 1,
                Err(e) => panic!("engine rejected query: {e}"),
            }
            attempts += 1;
        }
        for (h, src) in handles {
            let resp = h.wait();
            out.lat_us.record(resp.total_ns / 1_000);
            match resp.status {
                QueryStatus::Complete | QueryStatus::Degraded => {
                    if matches!(resp.status, QueryStatus::Degraded) {
                        out.degraded += 1;
                    } else {
                        out.completed += 1;
                    }
                    let r = resp.result.expect("complete query carries a result");
                    let (ref_levels, ref_edges) = &references[&src];
                    if !validated {
                        assert_eq!(&r.levels, ref_levels, "{algo} validation failed");
                        validated = true;
                    }
                    out.traversal_ms.push(r.stats.traversal_time.as_secs_f64() * 1e3);
                    inv_teps_sum += 1.0 / r.stats.teps(*ref_edges);
                    out.dup.push(
                        (r.stats.totals.vertices_explored as f64
                            / r.reached().max(1) as f64
                            - 1.0)
                            .max(0.0),
                    );
                    out.steal.merge(&r.stats.totals.steal);
                }
                QueryStatus::Cancelled => out.cancelled += 1,
                QueryStatus::DeadlineExceeded => out.deadline_exceeded += 1,
                QueryStatus::Failed(m) => {
                    eprintln!("query {} failed: {m}", resp.id);
                    out.failed += 1;
                }
            }
        }
        if scrape.is_none() && attempts * 2 >= args.queries {
            // Halfway scrape: a cut of monotone counters that the
            // schema validator later checks against the final snapshot
            // (scrape <= final, per counter).
            #[cfg(feature = "serve-http")]
            let taken = metrics_server.as_ref().map(|srv| {
                let text = obfs_telemetry::http::scrape(srv.addr(), "/metrics")
                    .expect("scrape GET /metrics");
                let parsed = obfs_telemetry::parse_exposition(&text)
                    .expect("our own responder emitted malformed exposition text");
                let c = |n: &str| {
                    obfs_telemetry::sample(&parsed, n)
                        .unwrap_or_else(|| panic!("{n} missing from /metrics"))
                        as u64
                };
                let terminal = TERMINALS.iter().map(|k| c(k)).sum::<u64>();
                (
                    "http",
                    c("obfs_engine_queries_submitted_total"),
                    terminal,
                    c("obfs_engine_queries_shed_total"),
                )
            });
            #[cfg(not(feature = "serve-http"))]
            let taken: Option<(&str, u64, u64, u64)> = None;
            // In non-http builds `taken` is always None and this match
            // arm is the only live path (in-process registry snapshot).
            scrape = Some(match taken {
                Some(cut) => cut,
                None => {
                    let snap = engine.telemetry().registry().snapshot();
                    let c = |n: &str| snap.counter(n).unwrap_or(0);
                    let terminal = TERMINALS.iter().map(|k| c(k)).sum::<u64>();
                    (
                        "registry",
                        c("obfs_engine_queries_submitted_total"),
                        terminal,
                        c("obfs_engine_queries_shed_total"),
                    )
                }
            });
        }
    }
    out.elapsed = t0.elapsed();
    let st = engine.stats();
    assert_eq!(st.submitted, out.admitted, "engine admission count disagrees");
    assert_eq!(st.shed, out.shed, "engine shed count disagrees");
    out.retries = st.retries;
    out.pool_rebuilds = st.pool_rebuilds;
    out.batched_runs = st.batched_runs;
    out.coalesced = st.queries_coalesced;
    let done = out.completed + out.degraded;
    if done > 0 {
        out.hmean_teps = done as f64 / inv_teps_sum;
    }
    // Registry latency percentiles must agree with the closed loop's
    // own histogram: both record the same per-query total_ns stream,
    // so they can differ by at most one log-histogram bucket.
    let snap = engine.telemetry().registry().snapshot();
    let (p50_us, p99_us) = match snap.get("obfs_engine_total_us") {
        Some(obfs_telemetry::registry::MetricValue::Summary { total, .. }) => {
            (total.percentile(0.50), total.percentile(0.99))
        }
        other => panic!("obfs_engine_total_us missing from the registry: {other:?}"),
    };
    for (mine, reg) in
        [(out.lat_us.percentile(0.50), p50_us), (out.lat_us.percentile(0.99), p99_us)]
    {
        let (a, b) = (mine as f64, reg as f64);
        assert!(
            (a - b).abs() <= a.max(b) / 8.0 + 1.0,
            "latency percentiles disagree beyond one bucket: bombard {mine}us vs \
             registry {reg}us"
        );
    }
    let int = |x: u64| Json::Num(x as f64);
    let (mode, s_sub, s_term, s_shed) =
        scrape.expect("at least one burst ran, so the halfway scrape fired");
    out.telemetry = Json::Obj(vec![
        (
            "final".into(),
            Json::Obj(vec![
                ("submitted".into(), int(st.submitted)),
                ("shed".into(), int(st.shed)),
                ("completed".into(), int(st.completed)),
                ("degraded".into(), int(st.degraded)),
                ("cancelled".into(), int(st.cancelled)),
                ("deadline_exceeded".into(), int(st.deadline_exceeded)),
                ("failed".into(), int(st.failed)),
                ("retries".into(), int(st.retries)),
                ("pool_rebuilds".into(), int(st.pool_rebuilds)),
                ("batched_runs".into(), int(st.batched_runs)),
                ("coalesced".into(), int(st.queries_coalesced)),
                ("p50_us".into(), int(p50_us)),
                ("p99_us".into(), int(p99_us)),
            ]),
        ),
        (
            "scrape".into(),
            Json::Obj(vec![
                ("mode".into(), Json::Str(mode.into())),
                ("submitted".into(), int(s_sub)),
                ("terminal".into(), int(s_term)),
                ("shed".into(), int(s_shed)),
            ]),
        ),
    ]);
    out
}

/// Drained-queries-per-second over one closed loop.
fn qps_of(r: &LoopResult) -> f64 {
    let done = r.completed + r.degraded + r.cancelled + r.deadline_exceeded + r.failed;
    if r.elapsed.as_secs_f64() > 0.0 {
        done as f64 / r.elapsed.as_secs_f64()
    } else {
        0.0
    }
}

/// Schema-v3 `serve.batch` block: the coalescing-enabled pass over the
/// same workload, next to the unbatched baseline it is compared
/// against (see `json::validate_report` for the invariants).
fn batch_json(b: &LoopResult, unbatched_qps: f64, args: &BombardArgs) -> Json {
    let int = |x: u64| Json::Num(x as f64);
    let qps = qps_of(b);
    let occupancy =
        if b.batched_runs > 0 { b.coalesced as f64 / b.batched_runs as f64 } else { 0.0 };
    let speedup = if unbatched_qps > 0.0 { qps / unbatched_qps } else { 0.0 };
    let pct = |q: f64| Json::Num(b.lat_us.percentile(q) as f64 / 1e3);
    Json::Obj(vec![
        ("max_batch".into(), int(args.max_batch as u64)),
        ("runs".into(), int(b.batched_runs)),
        ("coalesced".into(), int(b.coalesced)),
        ("occupancy".into(), Json::Num(occupancy)),
        ("qps".into(), Json::Num(qps)),
        ("p50_ms".into(), pct(0.50)),
        ("p99_ms".into(), pct(0.99)),
        ("speedup".into(), Json::Num(speedup)),
    ])
}

/// `serve` block for one row (see `json::validate_report`).
fn serve_json(r: &LoopResult, batch: Option<Json>, args: &BombardArgs) -> Json {
    let int = |x: u64| Json::Num(x as f64);
    let qps = qps_of(r);
    let pct = |q: f64| Json::Num(r.lat_us.percentile(q) as f64 / 1e3);
    let mut members = vec![
        ("capacity".into(), int(args.capacity as u64)),
        ("burst".into(), int(args.burst as u64)),
        ("queries".into(), int(args.queries as u64)),
        ("submitted".into(), int(r.admitted)),
        ("shed".into(), int(r.shed)),
        ("completed".into(), int(r.completed)),
        ("degraded".into(), int(r.degraded)),
        ("cancelled".into(), int(r.cancelled)),
        ("deadline_exceeded".into(), int(r.deadline_exceeded)),
        ("failed".into(), int(r.failed)),
        ("retries".into(), int(r.retries)),
        ("pool_rebuilds".into(), int(r.pool_rebuilds)),
        ("qps".into(), Json::Num(qps)),
        ("p50_ms".into(), pct(0.50)),
        ("p90_ms".into(), pct(0.90)),
        ("p99_ms".into(), pct(0.99)),
    ];
    if let Some(batch) = batch {
        members.push(("batch".into(), batch));
    }
    members.push(("telemetry".into(), r.telemetry.clone()));
    Json::Obj(members)
}

fn main() {
    let args = parse_args();
    // Same scale mapping as the graph500 bin: --divisor shrinks the
    // graph; the default (128) gives a small dense RMAT that keeps the
    // committed BENCH_serve.json cheap to regenerate.
    let scale = match args.base.divisor {
        1 => 18u32,
        d => (18u32).saturating_sub(d.ilog2()).max(10),
    };
    println!("{}", HostInfo::detect().render(args.base.threads));
    println!(
        "== bombard: RMAT scale {scale}, {} queries/contender, burst {}, capacity {}, \
         p={} ==\n",
        args.queries, args.burst, args.capacity, args.base.threads
    );
    let graph = Arc::new(rmat(scale, 8, RmatParams::default(), args.base.seed));
    let graph_name = format!("rmat{scale}");
    println!("graph: n={} m={}\n", graph.num_vertices(), graph.num_edges());
    let sources = sample_sources(&graph, args.base.sources.max(4), args.base.seed ^ 0x5EED);
    let references: HashMap<u32, (Vec<u32>, u64)> = sources
        .iter()
        .map(|&src| {
            let ser = serial_bfs(&graph, src);
            (src, (ser.levels, ser.stats.totals.edges_scanned))
        })
        .collect();

    let contenders = [Algorithm::Bfscl, Algorithm::Bfswsl];
    let mut report = args.base.json.then(|| BenchReport::new("serve", &args.base));
    let mut cols = vec![
        "contender",
        "queries/s",
        "p50 ms",
        "p99 ms",
        "shed",
        "retries",
        "rebuilds",
    ];
    if args.batch {
        cols.extend(["batch q/s", "occupancy", "speedup"]);
    }
    let mut t = Table::new(&cols);
    for algo in contenders {
        // The baseline pass runs with coalescing disabled so its qps
        // keeps meaning "one traversal per query" even now that the
        // engine coalesces deadline-free queries by default.
        let r = drive(algo, &graph, &references, &sources, &args, 1);
        let unbatched_qps = qps_of(&r);
        // The batched pass replays the same closed loop with
        // coalescing on: queued compatible queries fold into shared
        // multi-source traversals (up to --max-batch sources each).
        let batch = args.batch.then(|| {
            let b = drive(algo, &graph, &references, &sources, &args, args.max_batch);
            (batch_json(&b, unbatched_qps, &args), b)
        });
        let serve = serve_json(&r, batch.as_ref().map(|(j, _)| j.clone()), &args);
        let mut row = vec![
            algo.to_string(),
            format!("{unbatched_qps:.1}"),
            format!("{:.3}", r.lat_us.percentile(0.50) as f64 / 1e3),
            format!("{:.3}", r.lat_us.percentile(0.99) as f64 / 1e3),
            r.shed.to_string(),
            r.retries.to_string(),
            r.pool_rebuilds.to_string(),
        ];
        if let Some((_, b)) = &batch {
            let occ = if b.batched_runs > 0 {
                b.coalesced as f64 / b.batched_runs as f64
            } else {
                0.0
            };
            let bq = qps_of(b);
            row.extend([
                format!("{bq:.1}"),
                format!("{occ:.1}"),
                format!("{:.2}x", if unbatched_qps > 0.0 { bq / unbatched_qps } else { 0.0 }),
            ]);
        }
        t.row(row);
        if let Some(report) = &mut report {
            report.add_result(Json::Obj(vec![
                ("contender".into(), Json::Str(algo.to_string())),
                ("graph".into(), Json::Str(graph_name.clone())),
                ("time_ms".into(), summary_json(&r.traversal_ms.summary())),
                ("teps".into(), Json::Num(r.hmean_teps)),
                ("duplicate_overhead".into(), Json::Num(r.dup.mean())),
                ("steal".into(), json::steal_json(&r.steal)),
                ("serve".into(), serve),
            ]));
        }
    }
    println!("{}", t.render());
    if let Some(report) = &report {
        let path = report.write().expect("write BENCH_serve.json");
        json::validate_report(&Json::parse(&report.render()).unwrap())
            .expect("emitted report fails its own schema validation");
        println!("wrote {}", path.display());
    }
}
