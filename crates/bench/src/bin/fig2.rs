//! Regenerates **Figure 2**: scalability of the lock-free algorithms on
//! the Wikipedia graph — running time (and speedup over serial BFS) as a
//! function of the worker count.
//!
//! `--threads` sets the sweep's maximum (paper: 12 on Lonestar for
//! Fig. 2(a), 32 on Trestles for Fig. 2(b)).

use obfs_bench::env::HostInfo;
use obfs_bench::harness::{measure, pick_sources};
use obfs_bench::table::{ms, Table};
use obfs_bench::{BenchArgs, Contender, ContenderPool};
use obfs_core::{Algorithm, BfsOptions};
use obfs_graph::gen::suite::PaperGraph;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(args.threads));
    let graph_kind = args
        .only_graph
        .as_deref()
        .map(|n| PaperGraph::from_name(n).expect("unknown graph name"))
        .unwrap_or(PaperGraph::Wikipedia);
    let graph = graph_kind.generate(args.divisor, args.seed);
    println!(
        "== Figure 2: lock-free scalability on {} (divisor {}, {} sources/point) ==\n",
        graph_kind.name(),
        args.divisor,
        args.sources
    );

    // The lock-free family the figure plots.
    let algos = [Algorithm::Bfscl, Algorithm::Bfsdl, Algorithm::Bfswsl];
    let sweep: Vec<usize> = [1usize, 2, 4, 6, 8, 12, 16, 20, 24, 32]
        .into_iter()
        .filter(|&p| p <= args.threads)
        .collect();
    let sources = pick_sources(&graph, args.sources, args.seed);

    // Serial reference for speedup.
    let mut serial_pool = ContenderPool::new(1);
    let serial_opts = BfsOptions { threads: 1, ..Default::default() };
    let base = measure(
        &mut serial_pool,
        Contender::Ours(Algorithm::Serial),
        &graph,
        graph_kind.name(),
        &sources,
        &serial_opts,
    );
    println!("serial reference: {} ms\n", ms(base.time_ms.mean));

    let mut header = vec!["threads".to_string()];
    for a in algos {
        header.push(format!("{a} ms"));
        header.push(format!("{a} spd"));
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    for &p in &sweep {
        let mut pool = ContenderPool::new(p);
        // BFSDL with multiple pools once threads allow (paper ran j=1;
        // we keep j=1 for fidelity).
        let opts = BfsOptions { threads: p, ..Default::default() };
        let mut row = vec![p.to_string()];
        for a in algos {
            let m = measure(
                &mut pool,
                Contender::Ours(a),
                &graph,
                graph_kind.name(),
                &sources,
                &opts,
            );
            row.push(ms(m.time_ms.mean));
            row.push(format!("{:.2}x", base.time_ms.mean / m.time_ms.mean));
            if args.json {
                println!(
                    "{{\"algo\":{:?},\"threads\":{},\"mean_ms\":{:.4},\"speedup\":{:.3}}}",
                    a.name(),
                    p,
                    m.time_ms.mean,
                    base.time_ms.mean / m.time_ms.mean
                );
            }
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!(
        "Paper expectations (shape): centralized variants flatten/regress past ~20 \
         threads; the scale-free work-stealing variant keeps scaling to 32. On a \
         machine with fewer physical cores than the sweep, points beyond the core \
         count measure oversubscription overhead instead of speedup."
    );
}
