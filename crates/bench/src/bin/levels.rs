//! Per-level profile: where a traversal's time goes, level by level —
//! the companion analysis to Figure 2 (and the data behind the
//! "freescale pays the barrier tax" observation in EXPERIMENTS.md).
//!
//! Prints frontier size, discoveries and wall time per BFS level for a
//! chosen algorithm (default `BFS_WSL`) on a chosen graph (default
//! `wikipedia`), plus the level-time distribution across the whole
//! paper suite.

use obfs_bench::env::HostInfo;
use obfs_bench::table::Table;
use obfs_bench::BenchArgs;
use obfs_core::{run_bfs, Algorithm, BfsOptions};
use obfs_graph::gen::suite::{PaperGraph, ALL};
use obfs_graph::stats::sample_sources;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(args.threads));
    let graph_kind = args
        .only_graph
        .as_deref()
        .map(|n| PaperGraph::from_name(n).expect("unknown graph name"))
        .unwrap_or(PaperGraph::Wikipedia);
    let graph = graph_kind.generate(args.divisor, args.seed);
    let src = sample_sources(&graph, 1, args.seed)[0];
    let opts = BfsOptions {
        threads: args.threads,
        collect_level_stats: true,
        ..Default::default()
    };

    println!(
        "== Per-level profile: BFS_WSL on {} from source {src} ==\n",
        graph_kind.name()
    );
    let r = run_bfs(Algorithm::Bfswsl, &graph, src, &opts);
    let mut t = Table::new(&["level", "frontier", "discovered", "time(us)", "us/vertex"]);
    for e in &r.stats.level_stats {
        let us = e.duration.as_secs_f64() * 1e6;
        t.row(vec![
            e.level.to_string(),
            e.frontier.to_string(),
            e.discovered.to_string(),
            format!("{us:.1}"),
            format!("{:.2}", us / e.frontier.max(1) as f64),
        ]);
    }
    println!("{}", t.render());

    println!("== Level-structure summary across the paper suite (BFS_CL) ==\n");
    let mut t = Table::new(&[
        "graph",
        "levels",
        "max-frontier",
        "mean us/level",
        "barrier-bound levels*",
    ]);
    for kind in ALL {
        if let Some(only) = &args.only_graph {
            if kind.name() != only {
                continue;
            }
        }
        let g = kind.generate(args.divisor, args.seed);
        let s = sample_sources(&g, 1, args.seed)[0];
        let r = run_bfs(Algorithm::Bfscl, &g, s, &opts);
        let tr = &r.stats.level_stats;
        if tr.is_empty() {
            continue;
        }
        let max_frontier = tr.iter().map(|e| e.frontier).max().unwrap();
        let mean_us = tr.iter().map(|e| e.duration.as_secs_f64()).sum::<f64>() * 1e6
            / tr.len() as f64;
        // A level is "barrier-bound" when its frontier is smaller than the
        // worker count: there is not even one vertex per thread, so its
        // cost is pure synchronization.
        let tiny = tr.iter().filter(|e| e.frontier < args.threads).count();
        t.row(vec![
            kind.name().to_string(),
            tr.len().to_string(),
            max_frontier.to_string(),
            format!("{mean_us:.1}"),
            format!("{tiny} ({:.0}%)", 100.0 * tiny as f64 / tr.len() as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "* levels with frontier < p: the synchronization-dominated levels that make\n\
         high-diameter graphs (freescale) slow for every level-synchronous code."
    );
}
