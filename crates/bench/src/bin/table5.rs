//! Regenerates **Table V**: average per-source running time (ms) of every
//! algorithm on every evaluation graph.
//!
//! Run with `--threads 12` for the Lonestar analogue (Table V(a)) and
//! `--threads 32` for the Trestles analogue (Table V(b)).

use obfs_bench::env::HostInfo;
use obfs_bench::harness::{measure, pick_sources, to_json};
use obfs_bench::table::{ms, Table};
use obfs_bench::{BenchArgs, Contender, ContenderPool};
use obfs_core::BfsOptions;
use obfs_graph::gen::suite::ALL;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(args.threads));
    println!(
        "== Table V: mean running time (ms) over {} sources, divisor {} ==\n",
        args.sources, args.divisor
    );

    let graphs: Vec<_> = ALL
        .into_iter()
        .filter(|g| args.only_graph.as_deref().is_none_or(|o| o == g.name()))
        .map(|g| (g, g.generate(args.divisor, args.seed)))
        .collect();
    assert!(!graphs.is_empty(), "no graph matched --graph {:?}", args.only_graph);

    let mut header = vec!["algorithm"];
    for (g, _) in &graphs {
        header.push(g.name());
    }
    let mut t = Table::new(&header);

    let mut pool = ContenderPool::new(args.threads);
    let opts = BfsOptions { threads: args.threads, ..Default::default() };
    // Best-per-column tracking (the paper colors the winner per graph).
    let mut best: Vec<(f64, String)> = vec![(f64::INFINITY, String::new()); graphs.len()];

    for c in Contender::roster() {
        let mut row = vec![c.name()];
        for (col, (g, graph)) in graphs.iter().enumerate() {
            let sources = pick_sources(graph, args.sources, args.seed ^ col as u64);
            let m = measure(&mut pool, c, graph, g.name(), &sources, &opts);
            if args.json {
                println!("{}", to_json(&m));
            }
            if m.time_ms.mean < best[col].0 {
                best[col] = (m.time_ms.mean, c.name());
            }
            row.push(ms(m.time_ms.mean));
        }
        t.row(row);
    }
    println!("{}", t.render());
    println!("Fastest per graph:");
    for (col, (g, _)) in graphs.iter().enumerate() {
        println!("  {:<12} {} ({} ms)", g.name(), best[col].1, ms(best[col].0));
    }
    println!(
        "\nPaper expectations (shape): each lock-free variant beats its locked \
         counterpart; centralized best at low p, work-stealing at high p; \
         Baseline2[bitmap] competitive only on the dense rmat-1B."
    );
}
