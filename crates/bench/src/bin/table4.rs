//! Regenerates **Table IV**: properties of the evaluation graphs
//! (stand-ins), side by side with the paper's reported numbers.

use obfs_bench::env::HostInfo;
use obfs_bench::table::{count, Table};
use obfs_bench::BenchArgs;
use obfs_graph::gen::suite::{PaperGraph, ALL};
use obfs_graph::stats::summarize;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(1));
    println!(
        "== Table IV: graph properties (stand-ins at n = paper_n / {}) ==\n",
        args.divisor
    );
    let mut t = Table::new(&[
        "graph",
        "n",
        "m",
        "avg-deg",
        "max-deg",
        "bfs-diam",
        "gamma",
        "paper n",
        "paper m",
        "paper diam",
    ]);
    for g in ALL {
        if let Some(only) = &args.only_graph {
            if g.name() != only {
                continue;
            }
        }
        let graph = g.generate(args.divisor, args.seed);
        let s = summarize(&graph);
        let (pn, pm, pdiam) = g.paper_properties();
        t.row(vec![
            g.name().to_string(),
            count(s.n as u64),
            count(s.m),
            format!("{:.1}", s.avg_degree),
            count(s.max_degree as u64),
            s.pseudo_diameter.to_string(),
            s.power_law_gamma.map_or("-".to_string(), |g| format!("{g:.2}")),
            count(pn),
            count(pm),
            pdiam.to_string(),
        ]);
        if args.json {
            println!(
                "{{\"graph\":{:?},\"n\":{},\"m\":{},\"avg_deg\":{:.2},\"max_deg\":{},\
                 \"diam\":{}}}",
                g.name(),
                s.n,
                s.m,
                s.avg_degree,
                s.max_degree,
                s.pseudo_diameter
            );
        }
    }
    assert!(!t.is_empty(), "no graph matched --graph {:?}", args.only_graph);
    println!("{}", t.render());
    println!(
        "Diameter classes to compare with the paper: cage* tens-of-levels, freescale \
         hundreds, wikipedia/kkt/rmat ~5-15. Absolute diameters shrink with the divisor."
    );
    let _ = PaperGraph::Cage15; // silence unused import in --graph filtered runs
}
