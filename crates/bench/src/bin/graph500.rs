//! Graph500-style BFS kernel driver.
//!
//! The paper motivates BFS partly through the Graph500 supercomputer
//! ranking (§I, refs. \[3\]\[4\]). This binary runs the Graph500 search
//! kernel shape: an RMAT graph at a given scale, 64 (configurable via
//! `--sources`) random search keys, harmonic-mean TEPS per contender —
//! including the direction-optimizing Beamer baseline, which is not part
//! of the paper's own tables but is the modern Graph500 reference point.

use obfs_baselines::beamer::beamer_bfs_on_pool;
use obfs_baselines::hong::HongVariant;
use obfs_bench::env::HostInfo;
use obfs_bench::json::{self, Json};
use obfs_bench::table::{teps, Table};
use obfs_bench::{BenchArgs, BenchReport, Contender, ContenderPool};
use obfs_core::serial::serial_bfs;
use obfs_core::{Algorithm, BfsOptions, StealCounters};
use obfs_graph::gen::{rmat, RmatParams};
use obfs_graph::stats::sample_sources;
use obfs_runtime::LevelPool;
use obfs_util::OnlineStats;

/// Build one `results[]` entry from the per-key accumulators.
#[allow(clippy::too_many_arguments)]
fn result_json(
    name: &str,
    graph: &str,
    per_key_ms: &OnlineStats,
    hmean_teps: f64,
    dup: f64,
    steal: &StealCounters,
    compacted_levels: u64,
    kernel_backend: Option<&str>,
) -> Json {
    let mut members = vec![
        ("contender".to_string(), Json::Str(name.to_string())),
        ("graph".to_string(), Json::Str(graph.to_string())),
        ("time_ms".to_string(), json::summary_json(&per_key_ms.summary())),
        ("teps".to_string(), Json::Num(hmean_teps)),
        ("duplicate_overhead".to_string(), Json::Num(dup)),
        ("steal".to_string(), json::steal_json(steal)),
        ("compacted_levels".to_string(), Json::Num(compacted_levels as f64)),
    ];
    if let Some(b) = kernel_backend {
        members.push(("kernel_backend".to_string(), Json::Str(b.to_string())));
    }
    Json::Obj(members)
}

fn main() {
    let args = BenchArgs::parse();
    // Interpret --divisor as the Graph500 "scale" reduction: scale 26 is
    // the toy class; we default to what fits the box.
    let scale = match args.divisor {
        1 => 20u32, // full local run
        d => (20u32).saturating_sub(d.ilog2()).max(12),
    };
    let edge_factor = 16; // Graph500 constant
    println!("{}", HostInfo::detect().render(args.threads));
    println!(
        "== Graph500-style kernel: RMAT scale {scale} (2^{scale} vertices, \
         edge factor {edge_factor}), {} search keys, p={} ==\n",
        args.sources, args.threads
    );
    let graph = rmat(scale, edge_factor, RmatParams::default(), args.seed);
    let transpose = graph.transpose();
    println!(
        "graph: n={} m={} (after dedup/self-loop removal)\n",
        graph.num_vertices(),
        graph.num_edges()
    );
    let sources = sample_sources(&graph, args.sources, args.seed ^ 0x9500);
    // Graph500 convention: TEPS counts the *input* edges of the traversed
    // component, identically for every contender (so algorithms that scan
    // fewer edges, like bottom-up levels, are credited, not penalized).
    let references: Vec<(Vec<u32>, u64)> = sources
        .iter()
        .map(|&src| {
            let ser = serial_bfs(&graph, src);
            let m = ser.stats.totals.edges_scanned;
            (ser.levels, m)
        })
        .collect();

    let mut pool = ContenderPool::new(args.threads);
    let beamer_pool = LevelPool::new(args.threads);
    let opts = BfsOptions { threads: args.threads, ..Default::default() };

    // The hybrid and compaction rows always run here: dense low-diameter
    // RMAT is exactly the regime direction optimization and prefix-sum
    // frontier compaction target, so this binary is where the top-down
    // vs hybrid vs compacted crossover is measured.
    let mut contenders: Vec<Contender> = vec![
        Contender::Ours(Algorithm::Serial),
        Contender::Ours(Algorithm::Bfscl),
        Contender::Ours(Algorithm::Bfswsl),
        Contender::OursCompact(Algorithm::Bfscl),
        Contender::OursCompact(Algorithm::Bfswsl),
    ];
    contenders.extend(Contender::hybrid_roster());
    contenders.push(Contender::Baseline1);
    contenders.push(Contender::Baseline2(HongVariant::LocalQueueReadBitmap));

    let graph_name = format!("rmat{scale}");
    let mut report = args.json.then(|| BenchReport::new("graph500", &args));
    let mut t = Table::new(&["contender", "harmonic-TEPS", "mean ms/key"]);
    for c in &contenders {
        let mut inv_teps_sum = 0.0f64;
        let mut per_key = OnlineStats::new();
        let mut dup = OnlineStats::new();
        let mut steal = StealCounters::default();
        let mut compacted = 0u64;
        let mut backend: Option<String> = None;
        for (i, &src) in sources.iter().enumerate() {
            let r = pool.run_with_transpose(*c, &graph, Some(&transpose), src, &opts);
            if i == 0 {
                assert_eq!(r.levels, references[0].0, "{c} validation failed");
            }
            let tp = r.stats.teps(references[i].1);
            inv_teps_sum += 1.0 / tp;
            per_key.push(r.stats.traversal_time.as_secs_f64() * 1e3);
            dup.push(
                (r.stats.totals.vertices_explored as f64 / r.reached().max(1) as f64 - 1.0)
                    .max(0.0),
            );
            steal.merge(&r.stats.totals.steal);
            compacted += u64::from(r.stats.compacted_levels);
            if backend.is_none() {
                backend = r.stats.kernel_backend.map(|b| b.label().to_string());
            }
        }
        let hmean = sources.len() as f64 / inv_teps_sum;
        if let Some(report) = &mut report {
            report.add_result(result_json(
                &c.name(),
                &graph_name,
                &per_key,
                hmean,
                dup.mean(),
                &steal,
                compacted,
                backend.as_deref(),
            ));
        }
        t.row(vec![c.name(), teps(hmean), format!("{:.3}", per_key.mean())]);
    }
    // Beamer runs outside ContenderPool (needs the transpose).
    {
        let mut inv_teps_sum = 0.0f64;
        let mut per_key = OnlineStats::new();
        for (i, &src) in sources.iter().enumerate() {
            let r = beamer_bfs_on_pool(&graph, &transpose, src, &beamer_pool);
            if i == 0 {
                assert_eq!(r.bfs.levels, references[0].0, "beamer validation failed");
            }
            let tp = r.bfs.stats.teps(references[i].1);
            inv_teps_sum += 1.0 / tp;
            per_key.push(r.bfs.stats.traversal_time.as_secs_f64() * 1e3);
        }
        let hmean = sources.len() as f64 / inv_teps_sum;
        if let Some(report) = &mut report {
            report.add_result(result_json(
                "Beamer[direction-opt]",
                &graph_name,
                &per_key,
                hmean,
                0.0, // direction-opt never re-explores
                &StealCounters::default(),
                0,    // external baseline: no compaction path
                None, // ...and no dispatched kernels
            ));
        }
        t.row(vec![
            "Beamer[direction-opt]".to_string(),
            teps(hmean),
            format!("{:.3}", per_key.mean()),
        ]);
    }
    println!("{}", t.render());
    if let Some(report) = &report {
        let path = report.write().expect("write BENCH_graph500.json");
        json::validate_report(&Json::parse(&report.render()).unwrap())
            .expect("emitted report fails its own schema validation");
        println!("wrote {}", path.display());
    }
    println!(
        "Note: dense low-diameter RMAT is the regime where the paper concedes the \
         bitmap-based Baseline2 (and modern direction-optimization, which skips most \
         edge scans in its bottom-up levels) wins over duplicate-tolerant optimistic \
         traversal."
    );
}
