//! `realgraph` — BFS kernel bench over downloaded real-world graphs.
//!
//! ```text
//! realgraph GRAPH.mtx [MORE.mtx ...] [--threads p] [--sources s]
//!           [--seed x] [--json] [--hybrid]
//! ```
//!
//! The paper's evaluation (and ours, `table5`/`fig3`) uses *synthetic
//! stand-ins* shaped like the paper's graphs so everything runs offline.
//! This binary is the complementary leg: point it at real matrices (e.g.
//! SuiteSparse `.mtx` downloads fetched by `scripts/realgraph.sh`) and
//! it runs the Graph500-style kernel — sampled sources, harmonic-mean
//! TEPS, serial-validated — per graph, per contender, emitting the same
//! schema-v2 `BENCH_realgraph.json` the `compare` gate consumes. CI's
//! scheduled job tracks those reports across commits.

use obfs_bench::env::HostInfo;
use obfs_bench::json::{self, Json};
use obfs_bench::table::{teps, Table};
use obfs_bench::{BenchArgs, BenchReport, Contender, ContenderPool};
use obfs_core::serial::serial_bfs;
use obfs_core::{Algorithm, BfsOptions, StealCounters};
use obfs_graph::stats::sample_sources;
use obfs_graph::{io, CsrGraph};
use obfs_util::OnlineStats;

fn load_mtx(path: &str) -> Result<CsrGraph, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    io::read_matrix_market(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

/// Graph label: file stem without extension.
fn stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

fn result_json(
    name: &str,
    graph: &str,
    per_key_ms: &OnlineStats,
    hmean_teps: f64,
    dup: f64,
    steal: &StealCounters,
) -> Json {
    Json::Obj(vec![
        ("contender".to_string(), Json::Str(name.to_string())),
        ("graph".to_string(), Json::Str(graph.to_string())),
        ("time_ms".to_string(), json::summary_json(&per_key_ms.summary())),
        ("teps".to_string(), Json::Num(hmean_teps)),
        ("duplicate_overhead".to_string(), Json::Num(dup)),
        ("steal".to_string(), json::steal_json(steal)),
    ])
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    // Positional args are graph files; everything else goes to BenchArgs.
    let (paths, flags): (Vec<String>, Vec<String>) = {
        let mut paths = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if a.starts_with("--") {
                flags.push(a.clone());
                // Boolean flags take no value; the rest take one.
                if !matches!(a.as_str(), "--json" | "--hybrid" | "--help" | "-h") {
                    if let Some(v) = it.next() {
                        flags.push(v);
                    }
                }
            } else {
                paths.push(a);
            }
        }
        (paths, flags)
    };
    if paths.is_empty() {
        eprintln!(
            "usage: realgraph GRAPH.mtx [MORE.mtx ...] [--threads p] [--sources s] \
             [--seed x] [--json] [--hybrid]"
        );
        std::process::exit(2);
    }
    let args = BenchArgs::parse_from(flags);
    println!("{}", HostInfo::detect().render(args.threads));
    println!(
        "== real-graph BFS kernel: {} graph(s), {} search keys each, p={} ==\n",
        paths.len(),
        args.sources,
        args.threads
    );

    let mut contenders: Vec<Contender> = vec![
        Contender::Ours(Algorithm::Serial),
        Contender::Ours(Algorithm::Bfscl),
        Contender::Ours(Algorithm::Bfswl),
        Contender::Ours(Algorithm::Bfswsl),
    ];
    if args.hybrid {
        contenders.extend(Contender::hybrid_roster());
    }

    let opts = BfsOptions { threads: args.threads, ..Default::default() };
    let mut pool = ContenderPool::new(args.threads);
    let mut report = args.json.then(|| BenchReport::new("realgraph", &args));
    let mut failures = 0usize;

    for path in &paths {
        let graph = match load_mtx(path) {
            Ok(g) => g,
            Err(e) => {
                eprintln!("skipping {path}: {e}");
                failures += 1;
                continue;
            }
        };
        let name = stem(path);
        println!("{name}: n={} m={}", graph.num_vertices(), graph.num_edges());
        let transpose = args.hybrid.then(|| graph.transpose());
        let sources = sample_sources(&graph, args.sources, args.seed ^ 0x4ea1);
        let references: Vec<(Vec<u32>, u64)> = sources
            .iter()
            .map(|&src| {
                let ser = serial_bfs(&graph, src);
                (ser.levels, ser.stats.totals.edges_scanned)
            })
            .collect();

        let mut t = Table::new(&["contender", "harmonic-TEPS", "mean ms/key"]);
        for c in &contenders {
            let mut inv_teps_sum = 0.0f64;
            let mut per_key = OnlineStats::new();
            let mut dup = OnlineStats::new();
            let mut steal = StealCounters::default();
            for (i, &src) in sources.iter().enumerate() {
                let r = pool.run_with_transpose(*c, &graph, transpose.as_ref(), src, &opts);
                if i == 0 {
                    assert_eq!(r.levels, references[0].0, "{c} validation failed on {name}");
                }
                inv_teps_sum += 1.0 / r.stats.teps(references[i].1);
                per_key.push(r.stats.traversal_time.as_secs_f64() * 1e3);
                dup.push(
                    (r.stats.totals.vertices_explored as f64 / r.reached().max(1) as f64 - 1.0)
                        .max(0.0),
                );
                steal.merge(&r.stats.totals.steal);
            }
            let hmean = sources.len() as f64 / inv_teps_sum;
            if let Some(report) = &mut report {
                report.add_result(result_json(&c.name(), &name, &per_key, hmean, dup.mean(), &steal));
            }
            t.row(vec![c.name(), teps(hmean), format!("{:.3}", per_key.mean())]);
        }
        println!("{}", t.render());
    }

    if let Some(report) = &report {
        let path = report.write().expect("write BENCH_realgraph.json");
        json::validate_report(&Json::parse(&report.render()).unwrap())
            .expect("emitted report fails its own schema validation");
        println!("wrote {}", path.display());
    }
    if failures == paths.len() {
        eprintln!("error: no graph loaded successfully");
        std::process::exit(1);
    }
}
