//! Regenerates **Table VI**: statistics of successful and failed steal
//! attempts for BFSWS vs BFSWSL on the Wikipedia graph, extended with
//! the recovery/degradation counters (fetch retries, stale-slot aborts,
//! injected faults, degraded levels).
//!
//! The paper runs each program 5 times from 100 sources; scale with
//! `--sources` (per repetition) as needed. `--chaos-seed` installs a
//! store-buffer fault plan (active in `--features chaos` builds) and
//! `--watchdog-ms` arms the per-level watchdog, so the recovery columns
//! can be driven on demand. `--hybrid` appends direction-optimizing rows
//! (BFS_CL+hyb, BFS_WSL+hyb) so the steal/recovery columns can be
//! compared across top-down-only and hybrid execution.

use obfs_bench::env::HostInfo;
use obfs_bench::harness::pick_sources;
use obfs_bench::json::{self, Json};
use obfs_bench::table::{count, pct, Table};
use obfs_bench::{BenchArgs, BenchReport, Contender, ContenderPool};
use obfs_core::{Algorithm, BfsOptions, StealCounters, ThreadStats, WatchdogPolicy};
use obfs_graph::gen::suite::PaperGraph;
use obfs_sync::ChaosConfig;
use obfs_util::OnlineStats;
use std::time::Duration;

const REPS: usize = 5;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(args.threads));
    let graph_kind = args
        .only_graph
        .as_deref()
        .map(|n| PaperGraph::from_name(n).expect("unknown graph name"))
        .unwrap_or(PaperGraph::Wikipedia);
    let graph = graph_kind.generate(args.divisor, args.seed);
    println!(
        "== Table VI: steal outcomes on {} ({} reps x {} sources, p={}) ==\n",
        graph_kind.name(),
        REPS,
        args.sources,
        args.threads
    );

    let mut pool = ContenderPool::new(args.threads);
    let opts = BfsOptions {
        threads: args.threads,
        chaos: args.chaos_seed.map(ChaosConfig::store_buffer),
        watchdog: args
            .watchdog_ms
            .map(|ms| WatchdogPolicy::deadline(Duration::from_millis(ms))),
        ..Default::default()
    };

    let mut report = args.json.then(|| BenchReport::new("table6", &args));
    let mut t = Table::new(&[
        "program",
        "time(ms)",
        "attempts",
        "locked",
        "idle",
        "too-small",
        "stale",
        "invalid",
        "failed",
        "success",
        "fetch-retry",
        "slot-abort",
        "injected",
        "degraded",
    ]);
    let mut rows =
        vec![Contender::Ours(Algorithm::Bfsws), Contender::Ours(Algorithm::Bfswsl)];
    if args.hybrid {
        rows.extend(Contender::hybrid_roster());
    }
    // Hybrid rows borrow one shared transpose instead of rebuilding it
    // inside every run.
    let transpose = args.hybrid.then(|| graph.transpose());
    for c in rows {
        let locked_applies = matches!(c, Contender::Ours(Algorithm::Bfsws));
        let lockfree_steals = matches!(
            c,
            Contender::Ours(Algorithm::Bfswsl) | Contender::OursHybrid(Algorithm::Bfswsl)
        );
        let mut total = StealCounters::default();
        let mut recovery = ThreadStats::default();
        let mut degraded = 0u64;
        let mut compacted = 0u64;
        let mut backend: Option<String> = None;
        let mut time_ms = 0.0f64;
        let mut per_source = OnlineStats::new();
        let mut teps = OnlineStats::new();
        let mut dup = OnlineStats::new();
        for rep in 0..REPS {
            let sources = pick_sources(&graph, args.sources, args.seed ^ (rep as u64) << 8);
            for &src in &sources {
                let r = pool.run_with_transpose(c, &graph, transpose.as_ref(), src, &opts);
                total.merge(&r.stats.totals.steal);
                recovery.merge(&r.stats.totals);
                degraded += u64::from(r.stats.degraded_levels);
                compacted += u64::from(r.stats.compacted_levels);
                if backend.is_none() {
                    backend = r.stats.kernel_backend.map(|b| b.label().to_string());
                }
                let ms = r.stats.traversal_time.as_secs_f64() * 1e3;
                time_ms += ms;
                per_source.push(ms);
                teps.push(r.stats.teps(r.stats.totals.edges_scanned));
                dup.push(
                    (r.stats.totals.vertices_explored as f64 / r.reached().max(1) as f64
                        - 1.0)
                        .max(0.0),
                );
            }
        }
        assert!(total.is_consistent(), "{c}: steal counters inconsistent: {total:?}");
        let a = total.attempts;
        t.row(vec![
            c.name(),
            format!("{:.1}", time_ms / REPS as f64),
            format!("{} (100.00%)", count(a)),
            fmt_cell(total.victim_locked, a, locked_applies),
            fmt_cell(total.victim_idle, a, true),
            fmt_cell(total.too_small, a, true),
            fmt_cell(total.stale, a, lockfree_steals),
            fmt_cell(total.invalid, a, lockfree_steals),
            format!("{} ({})", count(total.failed()), pct(total.failed(), a)),
            format!("{} ({})", count(total.success), pct(total.success, a)),
            count(recovery.fetch_retries),
            count(recovery.stale_slot_aborts),
            count(recovery.injected_faults),
            count(degraded),
        ]);
        if args.json {
            println!(
                "{{\"program\":{:?},\"attempts\":{},\"success\":{},\"victim_locked\":{},\
                 \"victim_idle\":{},\"too_small\":{},\"stale\":{},\"invalid\":{},\
                 \"fetch_retries\":{},\"stale_slot_aborts\":{},\"injected_faults\":{},\
                 \"degraded_levels\":{}}}",
                c.name(),
                a,
                total.success,
                total.victim_locked,
                total.victim_idle,
                total.too_small,
                total.stale,
                total.invalid,
                recovery.fetch_retries,
                recovery.stale_slot_aborts,
                recovery.injected_faults,
                degraded
            );
        }
        if let Some(report) = &mut report {
            // One extra (untimed) collection run supplies the per-level
            // series with file-internally checkable conservation sums.
            let collect = BfsOptions { collect_level_stats: true, ..opts.clone() };
            let src = pick_sources(&graph, 1, args.seed)[0];
            let r = pool.run_with_transpose(c, &graph, transpose.as_ref(), src, &collect);
            let mut members = vec![
                ("contender".to_string(), Json::Str(c.name())),
                ("graph".to_string(), Json::Str(graph_kind.name().to_string())),
                ("time_ms".to_string(), json::summary_json(&per_source.summary())),
                ("teps".to_string(), Json::Num(teps.mean())),
                ("duplicate_overhead".to_string(), Json::Num(dup.mean())),
                ("steal".to_string(), json::steal_json(&total)),
                ("recovery".to_string(), json::thread_stats_json(&recovery)),
                ("degraded_levels".to_string(), Json::Num(degraded as f64)),
                ("compacted_levels".to_string(), Json::Num(compacted as f64)),
            ];
            if let Some(b) = &backend {
                members.push(("kernel_backend".to_string(), Json::Str(b.clone())));
            }
            if !r.stats.level_stats.is_empty() {
                members.push((
                    "series".to_string(),
                    json::series_json(
                        &r.stats.level_stats,
                        &r.stats.totals,
                        r.stats.degraded_levels,
                    ),
                ));
            }
            report.add_result(Json::Obj(members));
        }
    }
    println!("{}", t.render());
    if let Some(report) = &report {
        let path = report.write().expect("write BENCH_table6.json");
        json::validate_report(&Json::parse(&report.render()).unwrap())
            .expect("emitted report fails its own schema validation");
        println!("wrote {}", path.display());
    }
    println!(
        "Paper expectations (shape): BFSWS fails on 'victim locked' (N/A for BFSWSL); \
         BFSWSL instead shows stale/invalid failures at a far smaller rate; success \
         percentage slightly higher for the lock-free version; most failures are idle \
         victims at level ends (large MAX_STEAL)."
    );
}

fn fmt_cell(v: u64, total: u64, applicable: bool) -> String {
    if !applicable && v == 0 {
        "N/A".to_string()
    } else {
        format!("{} ({})", count(v), pct(v, total))
    }
}
