//! `compare` — the bench regression gate.
//!
//! ```text
//! compare BASELINE.json CONTENDER.json [--rel-tol 0.10] [--sigma 3.0]
//!         [--counter-tol 0.25] [--scale-time 1.0] [--json]
//! ```
//!
//! Diffs two `BENCH_*.json` reports and exits **1** when the contender
//! regresses (mean time / TEPS beyond the noise gate, counter blow-ups,
//! or results missing vs. the baseline), **0** when clean, **2** on
//! usage or parse errors. `--scale-time 1.5` inflates the contender's
//! times synthetically — CI self-tests the gate with an identity
//! compare that must fail under it.

use obfs_bench::compare::{compare, CompareOpts};
use obfs_bench::Json;

fn run() -> Result<bool, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<&str> = Vec::new();
    let mut opts = CompareOpts::default();
    let mut json_out = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut numflag = |name: &str| -> Result<f64, String> {
            it.next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .parse()
                .map_err(|_| format!("--{name}: not a number"))
        };
        match a.as_str() {
            "--rel-tol" => opts.rel_tol = numflag("rel-tol")?,
            "--sigma" => opts.sigma = numflag("sigma")?,
            "--counter-tol" => opts.counter_tol = numflag("counter-tol")?,
            "--scale-time" => opts.scale_time = numflag("scale-time")?,
            "--json" => json_out = true,
            p if !p.starts_with("--") => paths.push(p),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let [base_path, new_path] = paths[..] else {
        return Err("usage: compare BASELINE.json CONTENDER.json [flags]".into());
    };
    let read = |p: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("read {p}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let cmp = compare(&read(base_path)?, &read(new_path)?, &opts)?;
    if json_out {
        println!("{}", cmp.to_json().render());
    } else {
        print!("{}", cmp.render_table());
    }
    Ok(cmp.failed())
}

fn main() {
    match run() {
        Ok(false) => {}
        Ok(true) => std::process::exit(1),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
