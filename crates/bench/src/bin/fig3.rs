//! Regenerates **Figure 3**: performance in traversed edges per second
//! (TEPS) on the real-world graphs, comparing Baseline1, Baseline2, our
//! best locked variant and our best lock-free variant.

use obfs_baselines::hong::HongVariant;
use obfs_bench::env::HostInfo;
use obfs_bench::harness::{measure, measure_with_series, pick_sources, to_json};
use obfs_bench::json::{self, Json};
use obfs_bench::table::{teps, Table};
use obfs_bench::{BenchArgs, BenchReport, Contender, ContenderPool};
use obfs_core::{Algorithm, BfsOptions};
use obfs_graph::gen::suite::PaperGraph;

fn main() {
    let args = BenchArgs::parse();
    println!("{}", HostInfo::detect().render(args.threads));
    println!(
        "== Figure 3: TEPS on real-world graphs (divisor {}, {} sources, p={}) ==\n",
        args.divisor, args.sources, args.threads
    );

    // The five real-world graphs of the figure.
    let kinds = [
        PaperGraph::Cage15,
        PaperGraph::Cage14,
        PaperGraph::Freescale,
        PaperGraph::Wikipedia,
        PaperGraph::KktPower,
    ];
    let contenders = [
        Contender::Baseline1,
        Contender::Baseline2(HongVariant::LocalQueueReadBitmap),
        Contender::Ours(Algorithm::Bfsws),  // best locked (scale-free WS)
        Contender::Ours(Algorithm::Bfswsl), // best lock-free
        Contender::Ours(Algorithm::Bfscl),
    ];

    let mut pool = ContenderPool::new(args.threads);
    let opts = BfsOptions { threads: args.threads, ..Default::default() };

    let mut header = vec!["graph".to_string()];
    for c in contenders {
        header.push(c.name());
    }
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut t = Table::new(&header_refs);

    let mut report = args.json.then(|| BenchReport::new("fig3", &args));
    for kind in kinds {
        if let Some(only) = &args.only_graph {
            if kind.name() != only {
                continue;
            }
        }
        let graph = kind.generate(args.divisor, args.seed);
        let sources = pick_sources(&graph, args.sources, args.seed);
        let mut row = vec![kind.name().to_string()];
        for c in contenders {
            let m = if args.json {
                measure_with_series(&mut pool, c, &graph, kind.name(), &sources, &opts)
            } else {
                measure(&mut pool, c, &graph, kind.name(), &sources, &opts)
            };
            if args.json {
                println!("{}", to_json(&m));
            }
            if let Some(report) = &mut report {
                report.add_measurement(&m);
            }
            row.push(teps(m.teps));
        }
        t.row(row);
    }
    assert!(!t.is_empty(), "no graph matched --graph {:?}", args.only_graph);
    println!("{}", t.render());
    if let Some(report) = &report {
        let path = report.write().expect("write BENCH_fig3.json");
        json::validate_report(&Json::parse(&report.render()).unwrap())
            .expect("emitted report fails its own schema validation");
        println!("wrote {}", path.display());
    }
    println!(
        "Paper expectations (shape): our best implementation reaches the highest TEPS \
         on every real-world graph; the lock-free scale-free variant leads on \
         wikipedia (hub-dominated); the margins narrow on the near-regular cage \
         meshes."
    );
}
