//! Benchmark harness for the paper reproduction.
//!
//! One binary per table/figure of the evaluation:
//!
//! | Binary | Regenerates |
//! |--------|-------------|
//! | `table4` | Table IV — graph properties |
//! | `table5` | Table V — running times of all algorithms × graphs |
//! | `table6` | Table VI — steal-attempt outcome statistics |
//! | `fig2` | Figure 2 — scalability of the lock-free variants |
//! | `fig3` | Figure 3 — TEPS on the real-world graphs |
//! | `ablations` | design-choice sweeps (§IV-D etc.) |
//!
//! Shared flags: `--divisor <k>` (graph scale, n = paper_n / k),
//! `--threads <p>`, `--sources <s>`, `--seed <x>`, `--json`.

#![warn(missing_docs)]

pub mod args;
pub mod compare;
pub mod contender;
pub mod env;
pub mod harness;
pub mod json;
pub mod micro;
pub mod table;

pub use args::BenchArgs;
pub use contender::{Contender, ContenderPool};
pub use harness::{measure, measure_with_series, Measurement};
pub use json::{BenchReport, Json};
