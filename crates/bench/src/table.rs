//! Plain-text table rendering for the bench binaries.

/// A simple right-aligned text table.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with column alignment (first column left, rest right).
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i == 0 {
                    line.push_str(&format!("{:<w$}", cells[i], w = widths[i]));
                } else {
                    line.push_str(&format!("  {:>w$}", cells[i], w = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }
}

/// Format milliseconds compactly.
pub fn ms(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.3}")
    }
}

/// Format large counts with thousands separators.
pub fn count(x: u64) -> String {
    let s = x.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a ratio as a percentage.
pub fn pct(part: u64, whole: u64) -> String {
    if whole == 0 {
        "-".to_string()
    } else {
        format!("{:.2}%", 100.0 * part as f64 / whole as f64)
    }
}

/// Human-readable TEPS (e.g. `12.3M`).
pub fn teps(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "12345".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].starts_with("longer"));
        // All lines the same width.
        assert_eq!(lines[0].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(123.456), "123");
        assert_eq!(ms(3.17159), "3.17");
        assert_eq!(ms(0.1234), "0.123");
        assert_eq!(count(1234567), "1,234,567");
        assert_eq!(count(12), "12");
        assert_eq!(pct(1, 4), "25.00%");
        assert_eq!(pct(1, 0), "-");
        assert_eq!(teps(2.5e6), "2.50M");
        assert_eq!(teps(3.2e9), "3.20G");
        assert_eq!(teps(1500.0), "1.5K");
        assert_eq!(teps(12.0), "12");
    }
}
