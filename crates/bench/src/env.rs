//! Host description (the analogue of the paper's Table III "Simulation
//! Environment"). Every bench binary prints this header so recorded runs
//! are self-describing.

/// Host information gathered from `/proc` (best effort; unknown fields
/// come back as "unknown").
#[derive(Debug, Clone)]
pub struct HostInfo {
    /// CPU model string from `/proc/cpuinfo`.
    pub cpu_model: String,
    /// Logical CPU count.
    pub logical_cpus: usize,
    /// Total RAM in GiB.
    pub mem_total_gb: f64,
    /// Kernel identification.
    pub os: String,
}

impl HostInfo {
    /// Gather host facts (best effort).
    pub fn detect() -> Self {
        let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").unwrap_or_default();
        let cpu_model = cpuinfo
            .lines()
            .find(|l| l.starts_with("model name"))
            .and_then(|l| l.split(':').nth(1))
            .map(|s| s.trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
        let logical_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
        let meminfo = std::fs::read_to_string("/proc/meminfo").unwrap_or_default();
        let mem_total_gb = meminfo
            .lines()
            .find(|l| l.starts_with("MemTotal"))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|kb| kb.parse::<f64>().ok())
            .map_or(0.0, |kb| kb / 1024.0 / 1024.0);
        let os = std::fs::read_to_string("/proc/sys/kernel/osrelease")
            .map(|s| format!("Linux {}", s.trim()))
            .unwrap_or_else(|_| "unknown".to_string());
        Self { cpu_model, logical_cpus, mem_total_gb, os }
    }

    /// Render the Table III analogue.
    pub fn render(&self, threads: usize) -> String {
        format!(
            "== Environment (cf. paper Table III) ==\n\
             Processor : {}\n\
             CPUs      : {} logical (paper: 12-core Lonestar / 32-core Trestles)\n\
             RAM       : {:.1} GB\n\
             OS        : {}\n\
             Workers   : {} threads{}\n",
            self.cpu_model,
            self.logical_cpus,
            self.mem_total_gb,
            self.os,
            threads,
            if threads > self.logical_cpus {
                " (oversubscribed: relative orderings, not speedups, are meaningful)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detect_does_not_panic_and_fields_populated() {
        let h = HostInfo::detect();
        assert!(h.logical_cpus >= 1);
        let r = h.render(4);
        assert!(r.contains("Workers   : 4"));
        assert!(r.contains("Environment"));
    }

    #[test]
    fn oversubscription_notice() {
        let h = HostInfo::detect();
        let r = h.render(h.logical_cpus + 1);
        assert!(r.contains("oversubscribed"));
    }
}
