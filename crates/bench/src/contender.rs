//! Uniform interface over everything the paper's tables compare: our
//! nine algorithms, Baseline1 (bag PBFS) and Baseline2 (Hong variants).

use obfs_baselines::hong::{hong_bfs_on_pool, HongVariant};
use obfs_baselines::pbfs::PbfsRunner;
use obfs_core::{
    run_bfs, Algorithm, BfsOptions, BfsResult, BfsRunner, CompactionPolicy, HybridPolicy,
};
use obfs_graph::{CsrGraph, VertexId};
use obfs_runtime::LevelPool;

/// One row of a comparison table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Contender {
    /// One of this paper's algorithms.
    Ours(Algorithm),
    /// One of this paper's algorithms with the direction-optimizing
    /// hybrid enabled (default α/β heuristic). Hybrid rows also enable
    /// prefix-sum frontier compaction (default density policy), so they
    /// exercise the full optimized top-down + bottom-up pipeline.
    OursHybrid(Algorithm),
    /// One of this paper's algorithms with prefix-sum frontier
    /// compaction enabled (default density policy) but no hybrid —
    /// isolates the compaction gain on top-down-only execution.
    OursCompact(Algorithm),
    /// Leiserson–Schardl bag PBFS.
    Baseline1,
    /// A Hong et al. multicore variant.
    Baseline2(HongVariant),
}

impl Contender {
    /// The full roster in the paper's table-row order.
    pub fn roster() -> Vec<Contender> {
        let mut v: Vec<Contender> = Algorithm::ALL.into_iter().map(Contender::Ours).collect();
        v.push(Contender::OursCompact(Algorithm::Bfscl));
        v.push(Contender::OursCompact(Algorithm::Bfswsl));
        v.push(Contender::Baseline1);
        v.push(Contender::Baseline2(HongVariant::Queue));
        v.push(Contender::Baseline2(HongVariant::LocalQueueReadBitmap));
        v.push(Contender::Baseline2(HongVariant::Hybrid));
        v
    }

    /// The direction-optimizing hybrid rows (`--hybrid` benches): the
    /// two headline optimistic algorithms with the α/β heuristic on.
    pub fn hybrid_roster() -> Vec<Contender> {
        vec![
            Contender::OursHybrid(Algorithm::Bfscl),
            Contender::OursHybrid(Algorithm::Bfswsl),
        ]
    }

    /// Display name used as the table row label.
    pub fn name(&self) -> String {
        match self {
            Contender::Ours(a) => a.name().to_string(),
            Contender::OursHybrid(a) => format!("{}+hyb", a.name()),
            Contender::OursCompact(a) => format!("{}+cmp", a.name()),
            Contender::Baseline1 => "Baseline1[bag]".to_string(),
            Contender::Baseline2(v) => format!("Baseline2/{v}"),
        }
    }

    /// Whether the contender uses worker threads at all.
    pub fn is_parallel(&self) -> bool {
        !matches!(self, Contender::Ours(Algorithm::Serial))
    }
}

impl std::fmt::Display for Contender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

/// Owns the persistent execution resources so repeated measurements do
/// not pay pool construction per run.
pub struct ContenderPool {
    threads: usize,
    ours: BfsRunner,
    hong_pool: LevelPool,
    pbfs: PbfsRunner,
}

impl ContenderPool {
    /// Pools sized for `threads` workers.
    pub fn new(threads: usize) -> Self {
        Self {
            threads,
            ours: BfsRunner::new(threads),
            hong_pool: LevelPool::new(threads),
            pbfs: PbfsRunner::new(threads),
        }
    }

    /// Worker count shared by all owned pools.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Execute one BFS run.
    pub fn run(
        &mut self,
        contender: Contender,
        graph: &CsrGraph,
        src: VertexId,
        opts: &BfsOptions,
    ) -> BfsResult {
        self.run_with_transpose(contender, graph, None, src, opts)
    }

    /// Execute one BFS run, lending a precomputed transpose to hybrid
    /// contenders so the bottom-up kernel does not rebuild it per run.
    pub fn run_with_transpose(
        &mut self,
        contender: Contender,
        graph: &CsrGraph,
        transpose: Option<&CsrGraph>,
        src: VertexId,
        opts: &BfsOptions,
    ) -> BfsResult {
        match contender {
            Contender::Ours(Algorithm::Serial) => run_bfs(Algorithm::Serial, graph, src, opts),
            Contender::Ours(a) => {
                let opts = BfsOptions { threads: self.threads, ..opts.clone() };
                self.ours.run(a, graph, src, &opts)
            }
            Contender::OursHybrid(a) => {
                let opts = BfsOptions {
                    threads: self.threads,
                    hybrid: Some(HybridPolicy::default()),
                    compaction: Some(CompactionPolicy::default()),
                    ..opts.clone()
                };
                self.ours.run_with_transpose(a, graph, transpose, src, &opts)
            }
            Contender::OursCompact(a) => {
                let opts = BfsOptions {
                    threads: self.threads,
                    compaction: Some(CompactionPolicy::default()),
                    ..opts.clone()
                };
                self.ours.run(a, graph, src, &opts)
            }
            Contender::Baseline1 => self.pbfs.run(graph, src),
            Contender::Baseline2(v) => hong_bfs_on_pool(v, graph, src, &self.hong_pool),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_core::serial::serial_bfs;
    use obfs_graph::gen;

    #[test]
    fn roster_covers_everything_once() {
        let r = Contender::roster();
        // ALL + two +cmp rows + Baseline1 + three Baseline2 variants.
        assert_eq!(r.len(), Algorithm::ALL.len() + 6);
        let names: std::collections::HashSet<_> = r.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), r.len(), "duplicate contender names");
    }

    #[test]
    fn pool_runs_every_contender_correctly() {
        let g = gen::erdos_renyi(400, 2800, 5);
        let ser = serial_bfs(&g, 0);
        let mut pool = ContenderPool::new(4);
        let opts = BfsOptions { threads: 4, ..Default::default() };
        for c in Contender::roster() {
            let r = pool.run(c, &g, 0, &opts);
            assert_eq!(r.levels, ser.levels, "{c} produced wrong levels");
        }
    }

    #[test]
    fn hybrid_contenders_run_with_and_without_a_lent_transpose() {
        let g = gen::erdos_renyi(400, 2800, 5);
        let ser = serial_bfs(&g, 0);
        let transpose = g.transpose();
        let mut pool = ContenderPool::new(4);
        let opts = BfsOptions { threads: 4, ..Default::default() };
        for c in Contender::hybrid_roster() {
            assert!(c.name().ends_with("+hyb"), "{c}");
            let lent = pool.run_with_transpose(c, &g, Some(&transpose), 0, &opts);
            assert_eq!(lent.levels, ser.levels, "{c} wrong with a lent transpose");
            let owned = pool.run(c, &g, 0, &opts);
            assert_eq!(owned.levels, ser.levels, "{c} wrong with an owned transpose");
            assert_eq!(
                lent.stats.directions.len() as u32,
                lent.stats.levels,
                "{c}: hybrid runs must record a direction per level"
            );
        }
    }

    #[test]
    fn compaction_contenders_compact_and_stay_correct() {
        let g = gen::erdos_renyi(400, 2800, 5);
        let ser = serial_bfs(&g, 0);
        let mut pool = ContenderPool::new(4);
        let opts = BfsOptions { threads: 4, ..Default::default() };
        for c in [
            Contender::OursCompact(Algorithm::Bfscl),
            Contender::OursCompact(Algorithm::Bfswsl),
        ] {
            assert!(c.name().ends_with("+cmp"), "{c}");
            let r = pool.run(c, &g, 0, &opts);
            assert_eq!(r.levels, ser.levels, "{c} produced wrong levels");
            assert!(
                r.stats.compacted_levels > 0,
                "{c}: dense ER levels should trigger compaction"
            );
            assert!(r.stats.kernel_backend.is_some(), "{c}: backend not recorded");
        }
        // Hybrid rows carry compaction too (dense top-down levels may
        // switch to bottom-up instead, so only the option is asserted).
        let r = pool.run(Contender::OursHybrid(Algorithm::Bfscl), &g, 0, &opts);
        assert_eq!(r.levels, ser.levels);
        assert!(r.stats.kernel_backend.is_some());
    }

    #[test]
    fn serial_is_not_parallel() {
        assert!(!Contender::Ours(Algorithm::Serial).is_parallel());
        assert!(Contender::Baseline1.is_parallel());
    }
}
