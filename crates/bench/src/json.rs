//! Machine-readable benchmark reports (`BENCH_<name>.json`).
//!
//! The generic JSON value/parser/serializer lives in
//! [`obfs_util::json`] (shared with the trace profiler); this module
//! re-exports it and adds the report layer: the `BENCH_<name>.json`
//! emitter used by the bench binaries, and [`validate_report`], which
//! holds the shared schema + conservation-invariant checks so the
//! golden tests and the CI smoke check agree on what a well-formed
//! report is.

use crate::harness::Measurement;
use crate::BenchArgs;
use obfs_core::{LevelStats, StealCounters, ThreadStats};
use obfs_util::Summary;

pub use obfs_util::json::Json;

// ---------------------------------------------------------------------
// Report building
// ---------------------------------------------------------------------

/// Current report schema version (bump on breaking layout changes).
/// v2: hybrid direction-optimizing support — `frontier_edges` counter,
/// per-level `direction` ("td"/"bu"), `hybrid` run parameter.
/// v3: batched multi-source serving — optional `serve.batch` block
/// (bombard `--batch`) recording coalesced-run occupancy and batched
/// throughput next to the unbatched baseline.
/// v4: prefix-sum frontier compaction + dispatched scan kernels —
/// per-level `compacted` flag (implies direction "td"), per-result
/// `compacted_levels` count and informational `kernel_backend`
/// ("wordwise"/"scalar"), `series.compacted_levels` conservation sum.
/// v5: live telemetry — optional `serve.telemetry` block embedding the
/// engine metrics registry's final snapshot (which must agree exactly
/// with the `serve` counters: registry ≡ EngineStats ≡ bombard's own
/// terminal counts) plus a mid-run scrape whose monotone counters must
/// be ≤ the final ones.
pub const SCHEMA_VERSION: u64 = 5;

/// Oldest schema still accepted by [`validate_report`]. v3 and v2
/// reports differ from v4 only by the absence of optional keys
/// (`serve.batch`, the compaction/kernel fields), so committed older
/// artifacts stay valid without regeneration.
pub const MIN_SCHEMA_VERSION: u64 = 2;

fn num(x: f64) -> Json {
    Json::Num(x)
}

fn int(x: u64) -> Json {
    Json::Num(x as f64)
}

fn s(text: &str) -> Json {
    Json::Str(text.to_string())
}

/// `{count, mean, stddev, min, max}` for a time summary. A single
/// sample has no dispersion (`OnlineStats` reports NaN below two
/// samples); emit 0 so the field stays a number under the schema.
pub fn summary_json(x: &Summary) -> Json {
    let stddev = if x.stddev.is_nan() { 0.0 } else { x.stddev };
    Json::Obj(vec![
        ("count".into(), int(x.count)),
        ("mean".into(), num(x.mean)),
        ("stddev".into(), num(stddev)),
        ("min".into(), num(x.min)),
        ("max".into(), num(x.max)),
    ])
}

/// The Table VI outcome buckets.
pub fn steal_json(x: &StealCounters) -> Json {
    Json::Obj(vec![
        ("attempts".into(), int(x.attempts)),
        ("success".into(), int(x.success)),
        ("victim_locked".into(), int(x.victim_locked)),
        ("victim_idle".into(), int(x.victim_idle)),
        ("too_small".into(), int(x.too_small)),
        ("stale".into(), int(x.stale)),
        ("invalid".into(), int(x.invalid)),
    ])
}

/// Every [`ThreadStats`] counter, steal buckets nested.
pub fn thread_stats_json(x: &ThreadStats) -> Json {
    Json::Obj(vec![
        ("vertices_explored".into(), int(x.vertices_explored)),
        ("edges_scanned".into(), int(x.edges_scanned)),
        ("vertices_discovered".into(), int(x.vertices_discovered)),
        ("duplicate_explorations".into(), int(x.duplicate_explorations)),
        ("stale_slot_aborts".into(), int(x.stale_slot_aborts)),
        ("segments_fetched".into(), int(x.segments_fetched)),
        ("fetch_retries".into(), int(x.fetch_retries)),
        ("dedup_skips".into(), int(x.dedup_skips)),
        ("lock_acquisitions".into(), int(x.lock_acquisitions)),
        ("injected_faults".into(), int(x.injected_faults)),
        ("frontier_edges".into(), int(x.frontier_edges)),
        ("steal".into(), steal_json(&x.steal)),
    ])
}

/// One per-level series entry.
pub fn level_json(e: &LevelStats) -> Json {
    Json::Obj(vec![
        ("level".into(), int(u64::from(e.level))),
        ("frontier".into(), int(e.frontier as u64)),
        ("discovered".into(), int(e.discovered as u64)),
        ("time_us".into(), num(e.duration.as_secs_f64() * 1e6)),
        ("degraded".into(), Json::Bool(e.degraded)),
        ("direction".into(), s(e.direction.label())),
        ("compacted".into(), Json::Bool(e.compacted)),
        ("counters".into(), thread_stats_json(&e.counters)),
    ])
}

/// The `series` block from one dedicated collection run: per-level
/// deltas plus the same run's totals so the conservation invariant
/// (sum over levels == totals) is checkable file-internally.
pub fn series_json(levels: &[LevelStats], totals: &ThreadStats, degraded_levels: u32) -> Json {
    let compacted = levels.iter().filter(|e| e.compacted).count() as u64;
    Json::Obj(vec![
        ("degraded_levels".into(), int(u64::from(degraded_levels))),
        ("compacted_levels".into(), int(compacted)),
        ("totals".into(), thread_stats_json(totals)),
        ("levels".into(), Json::Arr(levels.iter().map(level_json).collect())),
    ])
}

/// One `results[]` entry from an aggregated [`Measurement`].
pub fn measurement_json(m: &Measurement) -> Json {
    let mut members = vec![
        ("contender".into(), s(&m.contender)),
        ("graph".into(), s(&m.graph)),
        ("time_ms".into(), summary_json(&m.time_ms)),
        ("teps".into(), num(m.teps)),
        ("duplicate_overhead".into(), num(m.duplicate_overhead)),
        ("levels".into(), num(m.levels)),
        ("steal".into(), steal_json(&m.steal)),
        (
            "counters".into(),
            Json::Obj(vec![
                ("segments_fetched".into(), int(m.segments_fetched)),
                ("fetch_retries".into(), int(m.fetch_retries)),
                ("stale_slot_aborts".into(), int(m.stale_slot_aborts)),
                ("dedup_skips".into(), int(m.dedup_skips)),
            ]),
        ),
        ("compacted_levels".into(), int(m.compacted_levels)),
    ];
    if let Some(backend) = &m.kernel_backend {
        members.push(("kernel_backend".into(), s(backend)));
    }
    if let Some(series) = &m.series {
        members.push((
            "series".into(),
            series_json(&series.levels, &series.totals, series.degraded_levels),
        ));
    }
    Json::Obj(members)
}

/// Accumulates `results[]` entries and writes `BENCH_<name>.json`.
pub struct BenchReport {
    name: String,
    params: Json,
    results: Vec<Json>,
}

impl BenchReport {
    /// Start a report for bench binary `name` with the run's parameters.
    pub fn new(name: &str, args: &BenchArgs) -> Self {
        Self {
            name: name.to_string(),
            params: Json::Obj(vec![
                ("divisor".into(), int(args.divisor)),
                ("threads".into(), int(args.threads as u64)),
                ("sources".into(), int(args.sources as u64)),
                ("seed".into(), int(args.seed)),
                ("hybrid".into(), Json::Bool(args.hybrid)),
            ]),
            results: Vec::new(),
        }
    }

    /// Append a prebuilt `results[]` entry.
    pub fn add_result(&mut self, result: Json) {
        self.results.push(result);
    }

    /// Append a measurement (convenience over [`measurement_json`]).
    pub fn add_measurement(&mut self, m: &Measurement) {
        self.results.push(measurement_json(m));
    }

    /// The complete report document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema_version".into(), int(SCHEMA_VERSION)),
            ("bench".into(), s(&self.name)),
            ("params".into(), self.params.clone()),
            ("results".into(), Json::Arr(self.results.clone())),
        ])
    }

    /// Serialize the report.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Write `BENCH_<name>.json` into the current directory, returning
    /// the path written.
    pub fn write(&self) -> std::io::Result<std::path::PathBuf> {
        let path = std::path::PathBuf::from(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.render() + "\n")?;
        Ok(path)
    }
}

// ---------------------------------------------------------------------
// Schema validation (shared by the golden tests and the CI smoke run)
// ---------------------------------------------------------------------

fn req<'a>(v: &'a Json, key: &str, at: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("{at}: missing key {key:?}"))
}

fn req_u64(v: &Json, key: &str, at: &str) -> Result<u64, String> {
    req(v, key, at)?.as_u64().ok_or_else(|| format!("{at}.{key}: not an integer"))
}

fn req_f64(v: &Json, key: &str, at: &str) -> Result<f64, String> {
    req(v, key, at)?.as_f64().ok_or_else(|| format!("{at}.{key}: not a number"))
}

fn steal_of(v: &Json, at: &str) -> Result<StealCounters, String> {
    Ok(StealCounters {
        attempts: req_u64(v, "attempts", at)?,
        success: req_u64(v, "success", at)?,
        victim_locked: req_u64(v, "victim_locked", at)?,
        victim_idle: req_u64(v, "victim_idle", at)?,
        too_small: req_u64(v, "too_small", at)?,
        stale: req_u64(v, "stale", at)?,
        invalid: req_u64(v, "invalid", at)?,
    })
}

/// The scalar `ThreadStats` keys every counters object must carry.
const COUNTER_KEYS: &[&str] = &[
    "vertices_explored",
    "edges_scanned",
    "vertices_discovered",
    "duplicate_explorations",
    "stale_slot_aborts",
    "segments_fetched",
    "fetch_retries",
    "dedup_skips",
    "lock_acquisitions",
    "injected_faults",
    "frontier_edges",
];

const STEAL_KEYS: &[&str] = &[
    "attempts",
    "success",
    "victim_locked",
    "victim_idle",
    "too_small",
    "stale",
    "invalid",
];

/// Validate a parsed `BENCH_*.json` document: required schema keys plus
/// the counter conservation invariants (steal buckets sum to attempts;
/// per-level series counters sum to the series totals; degraded flags
/// sum to `degraded_levels`).
pub fn validate_report(doc: &Json) -> Result<(), String> {
    let version = req_u64(doc, "schema_version", "report")?;
    if !(MIN_SCHEMA_VERSION..=SCHEMA_VERSION).contains(&version) {
        return Err(format!("unsupported schema_version {version}"));
    }
    req(doc, "bench", "report")?.as_str().ok_or("report.bench: not a string")?;
    let params = req(doc, "params", "report")?;
    for key in ["divisor", "threads", "sources", "seed"] {
        req_u64(params, key, "params")?;
    }
    req(params, "hybrid", "params")?.as_bool().ok_or("params.hybrid: not a bool")?;
    let results =
        req(doc, "results", "report")?.as_arr().ok_or("report.results: not an array")?;
    if results.is_empty() {
        return Err("report.results: empty".into());
    }
    for (i, r) in results.iter().enumerate() {
        let at = format!("results[{i}]");
        r.get("contender")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}.contender: missing or not a string"))?;
        r.get("graph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{at}.graph: missing or not a string"))?;
        let time = req(r, "time_ms", &at)?;
        let count = req_u64(time, "count", &format!("{at}.time_ms"))?;
        if count == 0 {
            return Err(format!("{at}.time_ms.count: zero samples"));
        }
        for key in ["mean", "stddev", "min", "max"] {
            req_f64(time, key, &format!("{at}.time_ms"))?;
        }
        req_f64(r, "teps", &at)?;
        req_f64(r, "duplicate_overhead", &at)?;
        let steal = steal_of(req(r, "steal", &at)?, &format!("{at}.steal"))?;
        if !steal.is_consistent() {
            return Err(format!("{at}.steal: buckets do not sum to attempts: {steal:?}"));
        }
        // v4 optional keys: absent in committed v2/v3 artifacts.
        if let Some(cl) = r.get("compacted_levels") {
            cl.as_u64().ok_or_else(|| format!("{at}.compacted_levels: not an integer"))?;
        }
        if let Some(kb) = r.get("kernel_backend") {
            let label = kb
                .as_str()
                .ok_or_else(|| format!("{at}.kernel_backend: not a string"))?;
            if obfs_core::ScanBackend::from_label(label).is_none() {
                return Err(format!("{at}.kernel_backend: unknown kernel {label:?}"));
            }
        }
        if let Some(series) = r.get("series") {
            validate_series(series, &at)?;
        }
        if let Some(serve) = r.get("serve") {
            validate_serve(serve, &at)?;
        }
    }
    Ok(())
}

/// Validate an optional `serve` block (emitted by the `bombard` engine
/// stress driver): all counters present, plus the admission
/// conservation invariants — every attempted query is either admitted
/// or shed, and every admitted query ends in exactly one terminal
/// status.
fn validate_serve(serve: &Json, at: &str) -> Result<(), String> {
    let at = format!("{at}.serve");
    for key in ["capacity", "burst", "retries", "pool_rebuilds"] {
        req_u64(serve, key, &at)?;
    }
    for key in ["qps", "p50_ms", "p90_ms", "p99_ms"] {
        req_f64(serve, key, &at)?;
    }
    let queries = req_u64(serve, "queries", &at)?;
    let submitted = req_u64(serve, "submitted", &at)?;
    let shed = req_u64(serve, "shed", &at)?;
    if submitted + shed != queries {
        return Err(format!(
            "{at}: submitted ({submitted}) + shed ({shed}) != queries ({queries})"
        ));
    }
    let mut done = 0u64;
    for key in ["completed", "degraded", "cancelled", "deadline_exceeded", "failed"] {
        done += req_u64(serve, key, &at)?;
    }
    if done != submitted {
        return Err(format!(
            "{at}: terminal statuses sum to {done} but submitted = {submitted}"
        ));
    }
    if let Some(batch) = serve.get("batch") {
        validate_serve_batch(batch, &at)?;
    }
    if let Some(tele) = serve.get("telemetry") {
        validate_serve_telemetry(tele, &at, serve)?;
    }
    Ok(())
}

/// Validate the optional schema-v5 `serve.telemetry` block (bombard):
/// the engine registry's final snapshot must agree *exactly* with the
/// `serve` counters — the registry is the source of truth for
/// `EngineStats`, and bombard counts terminals itself, so any drift
/// between the three is a lost or double-counted query. The embedded
/// mid-run scrape is a cut of monotone counters, so every scraped
/// count must be ≤ its final value. The registry's latency percentiles
/// must agree with bombard's own histogram to within one log-histogram
/// bucket (they record the same `total_ns` stream).
fn validate_serve_telemetry(tele: &Json, at: &str, serve: &Json) -> Result<(), String> {
    let at = format!("{at}.telemetry");
    let fin = req(tele, "final", &at)?;
    let fat = format!("{at}.final");
    // Registry ≡ EngineStats ≡ bombard terminal counts, key by key.
    for key in [
        "submitted",
        "shed",
        "completed",
        "degraded",
        "cancelled",
        "deadline_exceeded",
        "failed",
        "retries",
        "pool_rebuilds",
    ] {
        let reg = req_u64(fin, key, &fat)?;
        let measured = req_u64(serve, key, &at)?;
        if reg != measured {
            return Err(format!(
                "{fat}.{key}: registry says {reg} but the serve block measured {measured}"
            ));
        }
    }
    for key in ["batched_runs", "coalesced"] {
        req_u64(fin, key, &fat)?;
    }
    // One-bucket percentile agreement (LogHistogram relative bucket
    // width is 1/8 at these magnitudes).
    for (us_key, ms_key) in [("p50_us", "p50_ms"), ("p99_us", "p99_ms")] {
        let us = req_u64(fin, us_key, &fat)? as f64;
        let ms = req_f64(serve, ms_key, &at)? * 1e3;
        if (us - ms).abs() > us.max(ms) / 8.0 + 1.0 {
            return Err(format!(
                "{fat}.{us_key}: registry percentile {us}us vs measured {ms}us \
                 disagree by more than one histogram bucket"
            ));
        }
    }
    let scrape = req(tele, "scrape", &at)?;
    let sat = format!("{at}.scrape");
    let mode = req(scrape, "mode", &sat)?
        .as_str()
        .ok_or_else(|| format!("{sat}.mode: not a string"))?;
    if mode != "http" && mode != "registry" {
        return Err(format!("{sat}.mode: {mode:?} is neither \"http\" nor \"registry\""));
    }
    let fin_submitted = req_u64(fin, "submitted", &fat)?;
    let mut fin_terminal = 0u64;
    for key in ["completed", "degraded", "cancelled", "deadline_exceeded", "failed"] {
        fin_terminal += req_u64(fin, key, &fat)?;
    }
    let checks = [
        ("submitted", fin_submitted),
        ("terminal", fin_terminal),
        ("shed", req_u64(fin, "shed", &fat)?),
    ];
    for (key, fin_v) in checks {
        let v = req_u64(scrape, key, &sat)?;
        if v > fin_v {
            return Err(format!(
                "{sat}.{key}: mid-run scrape saw {v} but the final count is {fin_v} \
                 (monotone counter went backwards)"
            ));
        }
    }
    Ok(())
}

/// Validate the optional schema-v3 `serve.batch` block (bombard
/// `--batch`): a second pass over the same workload with coalescing
/// enabled. Invariants: every coalesced run carries at least two
/// queries and at most `max_batch`, so when `runs > 0` the mean
/// occupancy must lie in `[2, max_batch]`; with no batched runs the
/// coalesced count must be zero.
fn validate_serve_batch(batch: &Json, at: &str) -> Result<(), String> {
    let at = format!("{at}.batch");
    let max_batch = req_u64(batch, "max_batch", &at)?;
    if max_batch < 2 {
        return Err(format!("{at}.max_batch: {max_batch} < 2"));
    }
    let runs = req_u64(batch, "runs", &at)?;
    let coalesced = req_u64(batch, "coalesced", &at)?;
    for key in ["qps", "p50_ms", "p99_ms", "occupancy", "speedup"] {
        req_f64(batch, key, &at)?;
    }
    let occupancy = req_f64(batch, "occupancy", &at)?;
    if runs == 0 {
        if coalesced != 0 {
            return Err(format!("{at}: coalesced {coalesced} queries across 0 runs"));
        }
    } else {
        if coalesced < 2 * runs || coalesced > max_batch * runs {
            return Err(format!(
                "{at}: coalesced ({coalesced}) outside [2, max_batch] x runs ({runs})"
            ));
        }
        let mean = coalesced as f64 / runs as f64;
        if (occupancy - mean).abs() > 1e-6 {
            return Err(format!(
                "{at}: occupancy {occupancy} != coalesced/runs = {mean}"
            ));
        }
    }
    Ok(())
}

fn validate_series(series: &Json, at: &str) -> Result<(), String> {
    let at = format!("{at}.series");
    let degraded_levels = req_u64(series, "degraded_levels", &at)?;
    let totals = req(series, "totals", &at)?;
    let levels = req(series, "levels", &at)?
        .as_arr()
        .ok_or_else(|| format!("{at}.levels: not an array"))?;
    let mut degraded_sum = 0u64;
    let mut compacted_sum = 0u64;
    let mut counter_sums = vec![0u64; COUNTER_KEYS.len()];
    let mut steal_sums = vec![0u64; STEAL_KEYS.len()];
    for (i, e) in levels.iter().enumerate() {
        let lat = format!("{at}.levels[{i}]");
        req_u64(e, "level", &lat)?;
        req_u64(e, "frontier", &lat)?;
        req_u64(e, "discovered", &lat)?;
        req_f64(e, "time_us", &lat)?;
        let degraded = req(e, "degraded", &lat)?
            .as_bool()
            .ok_or_else(|| format!("{lat}.degraded: not a bool"))?;
        degraded_sum += u64::from(degraded);
        let direction = req(e, "direction", &lat)?
            .as_str()
            .ok_or_else(|| format!("{lat}.direction: not a string"))?;
        if direction != "td" && direction != "bu" {
            return Err(format!("{lat}.direction: {direction:?} is not \"td\"/\"bu\""));
        }
        // v4 optional key: compaction only replaces *top-down* queue
        // dispatch, so a compacted bottom-up level is a contradiction.
        if let Some(c) = e.get("compacted") {
            let compacted =
                c.as_bool().ok_or_else(|| format!("{lat}.compacted: not a bool"))?;
            if compacted && direction != "td" {
                return Err(format!(
                    "{lat}: compacted level with direction {direction:?} (must be \"td\")"
                ));
            }
            compacted_sum += u64::from(compacted);
        }
        let counters = req(e, "counters", &lat)?;
        for (j, key) in COUNTER_KEYS.iter().enumerate() {
            counter_sums[j] += req_u64(counters, key, &format!("{lat}.counters"))?;
        }
        let steal_at = format!("{lat}.counters.steal");
        let steal = steal_of(req(counters, "steal", &steal_at)?, &steal_at)?;
        if !steal.is_consistent() {
            return Err(format!("{steal_at}: buckets do not sum to attempts: {steal:?}"));
        }
        for (j, key) in STEAL_KEYS.iter().enumerate() {
            steal_sums[j] += req_u64(req(counters, "steal", &steal_at)?, key, &steal_at)?;
        }
    }
    if degraded_sum != degraded_levels {
        return Err(format!(
            "{at}: degraded flags sum to {degraded_sum} but degraded_levels = {degraded_levels}"
        ));
    }
    // v4 optional key: when present, the count must reproduce the
    // per-level compacted flags (conservation, like degraded_levels).
    if let Some(cl) = series.get("compacted_levels") {
        let compacted_levels =
            cl.as_u64().ok_or_else(|| format!("{at}.compacted_levels: not an integer"))?;
        if compacted_sum != compacted_levels {
            return Err(format!(
                "{at}: compacted flags sum to {compacted_sum} but compacted_levels = \
                 {compacted_levels}"
            ));
        }
    }
    for (j, key) in COUNTER_KEYS.iter().enumerate() {
        let total = req_u64(totals, key, &format!("{at}.totals"))?;
        if counter_sums[j] != total {
            return Err(format!(
                "{at}: sum of per-level {key} = {} but totals.{key} = {total}",
                counter_sums[j]
            ));
        }
    }
    let totals_steal = req(totals, "steal", &format!("{at}.totals"))?;
    for (j, key) in STEAL_KEYS.iter().enumerate() {
        let total = req_u64(totals_steal, key, &format!("{at}.totals.steal"))?;
        if steal_sums[j] != total {
            return Err(format!(
                "{at}: sum of per-level steal.{key} = {} but totals.steal.{key} = {total}",
                steal_sums[j]
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_series(levels: Vec<Json>, totals: Json, degraded: u64) -> Json {
        Json::Obj(vec![
            ("degraded_levels".into(), int(degraded)),
            ("totals".into(), totals),
            ("levels".into(), Json::Arr(levels)),
        ])
    }

    fn level_entry(counters: &ThreadStats, degraded: bool) -> Json {
        Json::Obj(vec![
            ("level".into(), int(0)),
            ("frontier".into(), int(1)),
            ("discovered".into(), int(2)),
            ("time_us".into(), num(3.5)),
            ("degraded".into(), Json::Bool(degraded)),
            ("direction".into(), s("td")),
            ("counters".into(), thread_stats_json(counters)),
        ])
    }

    fn report_with_series(series: Json) -> Json {
        let steal = StealCounters { attempts: 3, success: 1, victim_idle: 2, ..Default::default() };
        Json::Obj(vec![
            ("schema_version".into(), int(SCHEMA_VERSION)),
            ("bench".into(), s("test")),
            (
                "params".into(),
                Json::Obj(vec![
                    ("divisor".into(), int(128)),
                    ("threads".into(), int(4)),
                    ("sources".into(), int(2)),
                    ("seed".into(), int(1)),
                    ("hybrid".into(), Json::Bool(false)),
                ]),
            ),
            (
                "results".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("contender".into(), s("BFS_WSL")),
                    ("graph".into(), s("wikipedia")),
                    (
                        "time_ms".into(),
                        summary_json(&Summary {
                            count: 2,
                            mean: 1.0,
                            stddev: 0.1,
                            min: 0.9,
                            max: 1.1,
                        }),
                    ),
                    ("teps".into(), num(1e6)),
                    ("duplicate_overhead".into(), num(0.01)),
                    ("steal".into(), steal_json(&steal)),
                    ("series".into(), series),
                ])]),
            ),
        ])
    }

    #[test]
    fn validate_accepts_conserving_report() {
        let a = ThreadStats { edges_scanned: 10, segments_fetched: 2, ..Default::default() };
        let b = ThreadStats { edges_scanned: 5, fetch_retries: 1, ..Default::default() };
        let mut totals = a;
        totals.merge(&b);
        let series = tiny_series(
            vec![level_entry(&a, false), level_entry(&b, true)],
            thread_stats_json(&totals),
            1,
        );
        validate_report(&report_with_series(series)).unwrap();
    }

    #[test]
    fn validate_rejects_broken_conservation() {
        let a = ThreadStats { edges_scanned: 10, ..Default::default() };
        let mut wrong = a;
        wrong.edges_scanned += 1; // totals disagree with the level sum
        let series =
            tiny_series(vec![level_entry(&a, false)], thread_stats_json(&wrong), 0);
        let err = validate_report(&report_with_series(series)).unwrap_err();
        assert!(err.contains("edges_scanned"), "{err}");
    }

    #[test]
    fn validate_rejects_degraded_mismatch_and_bad_steal() {
        let a = ThreadStats::default();
        let series =
            tiny_series(vec![level_entry(&a, true)], thread_stats_json(&a), 0);
        let err = validate_report(&report_with_series(series)).unwrap_err();
        assert!(err.contains("degraded"), "{err}");

        let mut bad = ThreadStats::default();
        bad.steal.attempts = 5; // no outcomes recorded
        let series =
            tiny_series(vec![level_entry(&bad, false)], thread_stats_json(&bad), 0);
        let err = validate_report(&report_with_series(series)).unwrap_err();
        assert!(err.contains("buckets"), "{err}");
    }

    #[test]
    fn validate_rejects_bad_direction() {
        let a = ThreadStats::default();
        let mut entry = level_entry(&a, false);
        if let Json::Obj(members) = &mut entry {
            for (k, v) in members.iter_mut() {
                if k == "direction" {
                    *v = s("sideways");
                }
            }
        }
        let series = tiny_series(vec![entry], thread_stats_json(&a), 0);
        let err = validate_report(&report_with_series(series)).unwrap_err();
        assert!(err.contains("direction"), "{err}");
    }

    fn with_compacted(mut entry: Json, compacted: bool) -> Json {
        if let Json::Obj(members) = &mut entry {
            members.push(("compacted".into(), Json::Bool(compacted)));
        }
        entry
    }

    #[test]
    fn validate_accepts_compacted_top_down_levels() {
        let a = ThreadStats::default();
        let mut series = tiny_series(
            vec![with_compacted(level_entry(&a, false), true)],
            thread_stats_json(&a),
            0,
        );
        if let Json::Obj(members) = &mut series {
            members.push(("compacted_levels".into(), int(1)));
        }
        validate_report(&report_with_series(series)).unwrap();
    }

    #[test]
    fn validate_rejects_compacted_bottom_up_level() {
        let a = ThreadStats::default();
        let mut entry = level_entry(&a, false);
        if let Json::Obj(members) = &mut entry {
            for (k, v) in members.iter_mut() {
                if k == "direction" {
                    *v = s("bu");
                }
            }
        }
        let series =
            tiny_series(vec![with_compacted(entry, true)], thread_stats_json(&a), 0);
        let err = validate_report(&report_with_series(series)).unwrap_err();
        assert!(err.contains("compacted"), "{err}");
    }

    #[test]
    fn validate_rejects_compacted_count_mismatch() {
        let a = ThreadStats::default();
        let mut series = tiny_series(
            vec![with_compacted(level_entry(&a, false), true)],
            thread_stats_json(&a),
            0,
        );
        if let Json::Obj(members) = &mut series {
            members.push(("compacted_levels".into(), int(3)));
        }
        let err = validate_report(&report_with_series(series)).unwrap_err();
        assert!(err.contains("compacted_levels"), "{err}");
    }

    #[test]
    fn validate_rejects_unknown_kernel_backend() {
        let a = ThreadStats::default();
        let mut doc =
            report_with_series(tiny_series(vec![], thread_stats_json(&a), 0));
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        if let Json::Obj(r) = &mut rs[0] {
                            r.push(("kernel_backend".into(), s("simd512")));
                        }
                    }
                }
            }
        }
        let err = validate_report(&doc).unwrap_err();
        assert!(err.contains("kernel_backend"), "{err}");
    }

    fn serve_block(queries: u64, submitted: u64, shed: u64, completed: u64) -> Json {
        Json::Obj(vec![
            ("capacity".into(), int(2)),
            ("burst".into(), int(4)),
            ("queries".into(), int(queries)),
            ("submitted".into(), int(submitted)),
            ("shed".into(), int(shed)),
            ("completed".into(), int(completed)),
            ("degraded".into(), int(0)),
            ("cancelled".into(), int(0)),
            ("deadline_exceeded".into(), int(0)),
            ("failed".into(), int(0)),
            ("retries".into(), int(0)),
            ("pool_rebuilds".into(), int(0)),
            ("qps".into(), num(123.4)),
            ("p50_ms".into(), num(1.0)),
            ("p90_ms".into(), num(2.0)),
            ("p99_ms".into(), num(3.0)),
        ])
    }

    fn report_with_serve(serve: Json) -> Json {
        let mut doc = report_with_series(tiny_series(
            vec![],
            thread_stats_json(&ThreadStats::default()),
            0,
        ));
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "results" {
                    if let Json::Arr(rs) = v {
                        if let Json::Obj(r) = &mut rs[0] {
                            r.retain(|(k, _)| k != "series");
                            r.push(("serve".into(), serve.clone()));
                        }
                    }
                }
            }
        }
        doc
    }

    #[test]
    fn validate_accepts_conserving_serve_block() {
        validate_report(&report_with_serve(serve_block(10, 8, 2, 8))).unwrap();
    }

    #[test]
    fn validate_rejects_serve_conservation_breaks() {
        // Admission leak: submitted + shed != queries.
        let err =
            validate_report(&report_with_serve(serve_block(10, 8, 1, 8))).unwrap_err();
        assert!(err.contains("shed"), "{err}");
        // Status leak: a submitted query with no terminal status.
        let err =
            validate_report(&report_with_serve(serve_block(10, 8, 2, 7))).unwrap_err();
        assert!(err.contains("terminal"), "{err}");
        // Missing percentile key.
        let mut serve = serve_block(10, 8, 2, 8);
        if let Json::Obj(members) = &mut serve {
            members.retain(|(k, _)| k != "p99_ms");
        }
        let err = validate_report(&report_with_serve(serve)).unwrap_err();
        assert!(err.contains("p99_ms"), "{err}");
    }

    fn batch_block(max_batch: u64, runs: u64, coalesced: u64, occupancy: f64) -> Json {
        Json::Obj(vec![
            ("max_batch".into(), int(max_batch)),
            ("runs".into(), int(runs)),
            ("coalesced".into(), int(coalesced)),
            ("occupancy".into(), num(occupancy)),
            ("qps".into(), num(500.0)),
            ("p50_ms".into(), num(0.5)),
            ("p99_ms".into(), num(1.5)),
            ("speedup".into(), num(4.2)),
        ])
    }

    fn serve_with_batch(batch: Json) -> Json {
        let mut serve = serve_block(10, 8, 2, 8);
        if let Json::Obj(members) = &mut serve {
            members.push(("batch".into(), batch));
        }
        serve
    }

    #[test]
    fn validate_accepts_conserving_batch_block() {
        // 3 coalesced runs carrying 160 queries: occupancy 53.33… of 64.
        let b = batch_block(64, 3, 160, 160.0 / 3.0);
        validate_report(&report_with_serve(serve_with_batch(b))).unwrap();
        // No batched runs at all is fine as long as coalesced is 0.
        let b = batch_block(64, 0, 0, 0.0);
        validate_report(&report_with_serve(serve_with_batch(b))).unwrap();
    }

    #[test]
    fn validate_rejects_batch_conservation_breaks() {
        // Occupancy above max_batch: 3 runs cannot carry 200 queries at
        // max_batch 64.
        let err = validate_report(&report_with_serve(serve_with_batch(batch_block(
            64, 3, 250, 250.0 / 3.0,
        ))))
        .unwrap_err();
        assert!(err.contains("max_batch"), "{err}");
        // A "batched" run with a single member is not a batch.
        let err = validate_report(&report_with_serve(serve_with_batch(batch_block(
            64, 3, 5, 5.0 / 3.0,
        ))))
        .unwrap_err();
        assert!(err.contains("coalesced"), "{err}");
        // Recorded occupancy disagreeing with coalesced/runs.
        let err = validate_report(&report_with_serve(serve_with_batch(batch_block(
            64, 2, 128, 63.0,
        ))))
        .unwrap_err();
        assert!(err.contains("occupancy"), "{err}");
        // Coalesced queries with zero batched runs.
        let err = validate_report(&report_with_serve(serve_with_batch(batch_block(
            64, 0, 7, 0.0,
        ))))
        .unwrap_err();
        assert!(err.contains("0 runs"), "{err}");
    }

    /// A schema-v5 `serve.telemetry` block agreeing with
    /// `serve_block(10, 8, 2, 8)` unless a closure patches it.
    fn telemetry_block(patch: impl Fn(&mut Vec<(String, Json)>, &mut Vec<(String, Json)>)) -> Json {
        let mut fin = vec![
            ("submitted".into(), int(8)),
            ("shed".into(), int(2)),
            ("completed".into(), int(8)),
            ("degraded".into(), int(0)),
            ("cancelled".into(), int(0)),
            ("deadline_exceeded".into(), int(0)),
            ("failed".into(), int(0)),
            ("retries".into(), int(0)),
            ("pool_rebuilds".into(), int(0)),
            ("batched_runs".into(), int(0)),
            ("coalesced".into(), int(0)),
            ("p50_us".into(), int(1000)),
            ("p99_us".into(), int(3000)),
        ];
        let mut scrape = vec![
            ("mode".into(), s("registry")),
            ("submitted".into(), int(4)),
            ("terminal".into(), int(4)),
            ("shed".into(), int(1)),
        ];
        patch(&mut fin, &mut scrape);
        Json::Obj(vec![
            ("final".into(), Json::Obj(fin)),
            ("scrape".into(), Json::Obj(scrape)),
        ])
    }

    fn serve_with_telemetry(tele: Json) -> Json {
        let mut serve = serve_block(10, 8, 2, 8);
        if let Json::Obj(members) = &mut serve {
            members.push(("telemetry".into(), tele));
        }
        serve
    }

    fn set(members: &mut [(String, Json)], key: &str, v: Json) {
        members.iter_mut().find(|(k, _)| k == key).unwrap().1 = v;
    }

    #[test]
    fn validate_accepts_conserving_telemetry_block() {
        let t = telemetry_block(|_, _| {});
        validate_report(&report_with_serve(serve_with_telemetry(t))).unwrap();
    }

    #[test]
    fn validate_rejects_telemetry_conservation_breaks() {
        // Registry disagreeing with the measured serve counters.
        let t = telemetry_block(|fin, _| set(fin, "completed", int(7)));
        let err =
            validate_report(&report_with_serve(serve_with_telemetry(t))).unwrap_err();
        assert!(err.contains("registry says 7"), "{err}");
        // A mid-run scrape exceeding the final count (counter went
        // backwards between scrape and quiescence).
        let t = telemetry_block(|_, scrape| set(scrape, "submitted", int(9)));
        let err =
            validate_report(&report_with_serve(serve_with_telemetry(t))).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
        // Registry percentile disagreeing with the measured histogram
        // by more than one log-histogram bucket (p50_ms is 1.0 in the
        // serve block, so 1000us ± 1/8 is the window).
        let t = telemetry_block(|fin, _| set(fin, "p50_us", int(2000)));
        let err =
            validate_report(&report_with_serve(serve_with_telemetry(t))).unwrap_err();
        assert!(err.contains("histogram bucket"), "{err}");
        // An unknown scrape mode.
        let t = telemetry_block(|_, scrape| set(scrape, "mode", s("carrier-pigeon")));
        let err =
            validate_report(&report_with_serve(serve_with_telemetry(t))).unwrap_err();
        assert!(err.contains("mode"), "{err}");
    }

    #[test]
    fn validate_accepts_previous_schema_version() {
        // Committed v2 artifacts (no serve.batch anywhere) stay valid.
        let mut doc = report_with_serve(serve_block(10, 8, 2, 8));
        if let Json::Obj(members) = &mut doc {
            for (k, v) in members.iter_mut() {
                if k == "schema_version" {
                    *v = int(MIN_SCHEMA_VERSION);
                }
            }
        }
        validate_report(&doc).unwrap();
    }

    #[test]
    fn validate_rejects_missing_keys() {
        let doc = Json::parse(r#"{"schema_version":1,"bench":"x"}"#).unwrap();
        assert!(validate_report(&doc).is_err());
        let doc = Json::parse(r#"{"schema_version":99}"#).unwrap();
        assert!(validate_report(&doc).unwrap_err().contains("schema_version"));
    }
}
