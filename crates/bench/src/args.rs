//! Minimal command-line parsing shared by the bench binaries (the
//! workspace avoids external CLI crates; see DESIGN.md dependency
//! policy).

/// Common benchmark parameters.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    /// Graph scale divisor: `n = paper_n / divisor`.
    pub divisor: u64,
    /// Worker threads for parallel algorithms.
    pub threads: usize,
    /// Random non-zero-degree sources per (algorithm, graph) cell.
    pub sources: usize,
    /// Master seed for graph generation and source sampling.
    pub seed: u64,
    /// Emit machine-readable JSON lines alongside the tables.
    pub json: bool,
    /// Restrict to a single graph (by Table IV name) if set.
    pub only_graph: Option<String>,
    /// Install a store-buffer fault plan with this seed (only active in
    /// builds with the `chaos` feature; inert otherwise).
    pub chaos_seed: Option<u64>,
    /// Per-level watchdog deadline in milliseconds (degraded levels are
    /// reported in the recovery columns).
    pub watchdog_ms: Option<u64>,
    /// Also run direction-optimizing hybrid rows for the optimistic
    /// algorithms (α/β heuristic with the default constants).
    pub hybrid: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            divisor: 128,
            threads: 8,
            sources: 4,
            seed: 1,
            json: false,
            only_graph: None,
            chaos_seed: None,
            watchdog_ms: None,
            hybrid: false,
        }
    }
}

impl BenchArgs {
    /// Parse `std::env::args`, panicking with usage on bad input.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next().unwrap_or_else(|| panic!("flag {name} requires a value"))
            };
            match flag.as_str() {
                "--divisor" => out.divisor = parse_num(&value("--divisor"), "--divisor"),
                "--threads" => out.threads = parse_num(&value("--threads"), "--threads"),
                "--sources" => out.sources = parse_num(&value("--sources"), "--sources"),
                "--seed" => out.seed = parse_num(&value("--seed"), "--seed"),
                "--graph" => out.only_graph = Some(value("--graph")),
                "--json" => out.json = true,
                "--hybrid" => out.hybrid = true,
                "--chaos-seed" => {
                    out.chaos_seed = Some(parse_num(&value("--chaos-seed"), "--chaos-seed"))
                }
                "--watchdog-ms" => {
                    out.watchdog_ms = Some(parse_num(&value("--watchdog-ms"), "--watchdog-ms"))
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --divisor <k> --threads <p> --sources <s> --seed <x> \
                         --graph <name> --json --hybrid --chaos-seed <x> --watchdog-ms <ms>"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other:?} (try --help)"),
            }
        }
        assert!(out.divisor >= 1, "--divisor must be >= 1");
        assert!(out.threads >= 1, "--threads must be >= 1");
        assert!(out.sources >= 1, "--sources must be >= 1");
        out
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| panic!("bad value {s:?} for {flag}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn defaults() {
        let a = BenchArgs::parse_from(strs(&[]));
        assert_eq!(a.divisor, 128);
        assert!(!a.json);
    }

    #[test]
    fn full_parse() {
        let a = BenchArgs::parse_from(strs(&[
            "--divisor", "64", "--threads", "12", "--sources", "10", "--seed", "7", "--json",
            "--graph", "wikipedia",
        ]));
        assert_eq!(a.divisor, 64);
        assert_eq!(a.threads, 12);
        assert_eq!(a.sources, 10);
        assert_eq!(a.seed, 7);
        assert!(a.json);
        assert_eq!(a.only_graph.as_deref(), Some("wikipedia"));
        assert_eq!(a.chaos_seed, None);
        assert_eq!(a.watchdog_ms, None);
    }

    #[test]
    fn chaos_and_watchdog_flags() {
        let a = BenchArgs::parse_from(strs(&["--chaos-seed", "9", "--watchdog-ms", "250"]));
        assert_eq!(a.chaos_seed, Some(9));
        assert_eq!(a.watchdog_ms, Some(250));
    }

    #[test]
    fn hybrid_flag() {
        assert!(!BenchArgs::parse_from(strs(&[])).hybrid);
        assert!(BenchArgs::parse_from(strs(&["--hybrid"])).hybrid);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn rejects_unknown() {
        let _ = BenchArgs::parse_from(strs(&["--bogus"]));
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn rejects_missing_value() {
        let _ = BenchArgs::parse_from(strs(&["--threads"]));
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn rejects_bad_number() {
        let _ = BenchArgs::parse_from(strs(&["--threads", "many"]));
    }
}
