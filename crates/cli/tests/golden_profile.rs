//! Golden test for the post-mortem profiler: a real recorded trace is
//! committed under `results/`, and `obfs analyze --json` on it must
//! reproduce the committed profile byte-for-byte — forever, on any
//! machine. This is the replayability contract: analysis is a pure
//! function of the trace file, so a run recorded once can be
//! re-profiled offline with identical output.
//!
//! The inputs were produced with:
//!
//! ```text
//! obfs gen --model er --n 2000 --edge-factor 8 --seed 7 --out g.bin
//! obfs bfs --in g.bin --algo BFS_WSL --threads 4 --src 0 \
//!     --trace results/trace_bfswsl_t4.json        # --features trace
//! obfs analyze results/trace_bfswsl_t4.json --json \
//!     > results/profile_bfswsl_t4.json
//! ```
//!
//! Runs in the default (no `trace` feature) build on purpose: the
//! analyzer only *reads* traces, recording is not involved.

use obfs_cli::dispatch;
use std::path::PathBuf;

fn results_path(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn committed_trace_profiles_to_committed_golden_json() {
    let trace = results_path("trace_bfswsl_t4.json");
    let golden = std::fs::read_to_string(results_path("profile_bfswsl_t4.json"))
        .expect("golden profile missing from results/");

    let got = dispatch(&["analyze".into(), trace.clone(), "--json".into()])
        .expect("analyze failed on the committed trace");
    assert_eq!(
        got, golden,
        "profile drifted from the committed golden — if the profiler \
         changed intentionally, regenerate results/profile_bfswsl_t4.json"
    );

    // Determinism double-check: a second pass is byte-identical too.
    let again = dispatch(&["analyze".into(), trace, "--json".into()]).unwrap();
    assert_eq!(got, again);
}

#[test]
fn committed_trace_renders_human_table() {
    let trace = results_path("trace_bfswsl_t4.json");
    let table = dispatch(&["analyze".into(), trace.clone()]).unwrap();
    assert!(table.contains("per-worker utilization"), "{table}");
    assert!(table.contains("per-level activity"), "{table}");
    assert!(table.contains("steal-fail distance to next barrier"), "{table}");
    let again = dispatch(&["analyze".into(), trace]).unwrap();
    assert_eq!(table, again, "human table must be deterministic too");
}
