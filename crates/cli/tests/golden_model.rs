//! Golden test for the bounded model checker: `obfs model` at the
//! default bounds must reproduce the committed report byte-for-byte —
//! forever, on any machine. The explorer has no clocks, seeds, or
//! hash-order dependence, so the whole report (schedule counts, prune
//! counts, counterexample schedules) is a pure function of the model
//! code and the bounds.
//!
//! The committed input was produced with:
//!
//! ```text
//! obfs model > results/model_report.txt
//! ```

use obfs_cli::dispatch;
use std::path::PathBuf;

fn results_path(name: &str) -> String {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results")
        .join(name)
        .to_string_lossy()
        .into_owned()
}

#[test]
fn model_report_matches_committed_golden() {
    let golden = std::fs::read_to_string(results_path("model_report.txt"))
        .expect("golden model report missing from results/");
    let got = dispatch(&["model".into()]).expect("model check failed");
    assert_eq!(
        got, golden,
        "model report drifted from the committed golden — if the checker \
         changed intentionally, regenerate results/model_report.txt"
    );
    assert!(got.ends_with("model: PASS (4/4 cores hold; 4/4 seeded bugs found)\n"), "{got}");
}

#[test]
fn model_report_is_deterministic_at_reduced_bounds() {
    // Cheap double-run at a small schedule budget: byte-identical output.
    // (5000 is past the ~3850 schedules the work-steal seeded bug needs.)
    let args = ["model".into(), "--schedules".into(), "5000".into()];
    let a = dispatch(&args).expect("model check failed at reduced bounds");
    let b = dispatch(&args).expect("model check failed at reduced bounds");
    assert_eq!(a, b);
}
