//! Implementation of the `obfs` command-line tool (library-shaped so the
//! parsing and command logic are unit-testable).

#![warn(missing_docs)]

use obfs_core::{
    run_bfs, serial::serial_bfs, Algorithm, BfsOptions, CompactionPolicy, HybridPolicy,
};
use obfs_graph::{gen, io, stats, CsrGraph};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::Path;

/// Top-level usage text.
pub fn usage() -> String {
    "usage: obfs <command> [flags]\n\
     commands:\n\
       gen        --model <rmat|er|ba|chung-lu|grid|torus|suite:NAME> --n <n> \
     [--edge-factor k] [--gamma g] [--seed s] --out FILE\n\
       stats      --in FILE\n\
       bfs        --in FILE --algo NAME [--src v | --sources a,b,c] [--threads p] \
     [--validate] [--parents] [--trace [OUT.json]] [--histograms] [--hybrid] \
     [--alpha a] [--beta b] [--compaction] [--compact-density d]   \
     (--sources runs one batched multi-source traversal)\n\
       engine     --in FILE [--algo NAME] [--threads p] [--capacity c] [--queries n] \
     [--burst b] [--deadline-ms d] [--seed s] [--metrics-addr HOST:PORT] \
     [--stats-interval SECS] [--metrics-out FILE.json]   (closed-loop resilient query engine; \
     --metrics-addr serves GET /metrics live and needs the serve-http feature)\n\
       analyze    TRACE.json [--json]   (post-mortem profile of a recorded trace)\n\
       model      [--schedules n] [--steps n]   (bounded model check of the racy protocol cores)\n\
       components --in FILE [--threads p] [--algo NAME]\n\
       bipartite  --in FILE [--threads p]\n\
       bc         --in FILE [--samples k] [--seed s] [--top t]\n\
       convert    --in FILE --out FILE\n\
     formats by extension: .mtx/.mm Matrix Market, .el/.txt edge list, \
     .bin/.csr binary CSR\n\
     algorithms: sbfs BFS_C BFS_CL BFS_DL BFS_W BFS_WL BFS_WS BFS_WSL BFS_ECL"
        .to_string()
}

/// Parse and execute; returns the report to print.
pub fn dispatch(args: &[String]) -> Result<String, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    if cmd == "analyze" {
        // Takes a positional trace path, so it parses its own args.
        return cmd_analyze(rest);
    }
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "gen" => cmd_gen(&flags),
        "stats" => cmd_stats(&flags),
        "bfs" => cmd_bfs(&flags),
        "engine" => cmd_engine(&flags),
        "model" => cmd_model(&flags),
        "components" => cmd_components(&flags),
        "bipartite" => cmd_bipartite(&flags),
        "bc" => cmd_bc(&flags),
        "convert" => cmd_convert(&flags),
        "help" | "--help" | "-h" => Ok(usage() + "\n"),
        other => Err(format!("unknown command {other:?}")),
    }
}

/// `--flag value` pairs plus boolean `--flag` switches.
pub fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        let Some(name) = a.strip_prefix("--") else {
            return Err(format!("expected a --flag, got {a:?}"));
        };
        let value = match it.peek() {
            Some(v) if !v.starts_with("--") => it.next().unwrap().clone(),
            _ => "true".to_string(), // boolean switch
        };
        if out.insert(name.to_string(), value).is_some() {
            return Err(format!("duplicate flag --{name}"));
        }
    }
    Ok(out)
}

fn get<'a>(flags: &'a HashMap<String, String>, k: &str) -> Result<&'a str, String> {
    flags.get(k).map(|s| s.as_str()).ok_or_else(|| format!("missing required flag --{k}"))
}

fn get_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    k: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(k) {
        None => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad value {s:?} for --{k}")),
    }
}

fn has(flags: &HashMap<String, String>, k: &str) -> bool {
    flags.contains_key(k)
}

/// Load a graph, picking the format from the file extension.
pub fn load_graph(path: &str) -> Result<CsrGraph, String> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = std::fs::File::open(p).map_err(|e| format!("open {path}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    match ext {
        "mtx" | "mm" => io::read_matrix_market(reader).map_err(|e| e.to_string()),
        "el" | "txt" => io::read_edge_list(reader, None).map_err(|e| e.to_string()),
        "bin" | "csr" => io::read_binary_csr(&mut reader).map_err(|e| e.to_string()),
        other => Err(format!("unknown graph extension {other:?} (want mtx/mm/el/txt/bin/csr)")),
    }
}

/// Save a graph, picking the format from the file extension.
pub fn save_graph(path: &str, g: &CsrGraph) -> Result<(), String> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = std::fs::File::create(p).map_err(|e| format!("create {path}: {e}"))?;
    let mut w = std::io::BufWriter::new(file);
    match ext {
        "mtx" | "mm" => io::write_matrix_market(&mut w, g).map_err(|e| e.to_string()),
        "el" | "txt" => io::write_edge_list(&mut w, g).map_err(|e| e.to_string()),
        "bin" | "csr" => io::write_binary_csr(&mut w, g).map_err(|e| e.to_string()),
        other => Err(format!("unknown graph extension {other:?}")),
    }
}

fn cmd_gen(flags: &HashMap<String, String>) -> Result<String, String> {
    let model = get(flags, "model")?;
    let out = get(flags, "out")?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    let n: usize = get_num(flags, "n", 1 << 16)?;
    if n == 0 {
        return Err("--n must be at least 1".into());
    }
    let ef: usize = get_num(flags, "edge-factor", 16)?;
    let g = match model {
        "rmat" => {
            let scale = (usize::BITS - 1 - n.max(2).leading_zeros()).max(4);
            gen::rmat(scale, ef, gen::RmatParams::default(), seed)
        }
        "er" => gen::erdos_renyi(n, n * ef, seed),
        "ba" => gen::barabasi_albert(n, ef.clamp(1, n.saturating_sub(1).max(1)), seed),
        "chung-lu" => {
            let gamma: f64 = get_num(flags, "gamma", 2.3)?;
            gen::suite::scale_free_like(n, ef as f64, gamma, seed)
        }
        "grid" => {
            let side = (n as f64).sqrt().round().max(1.0) as usize;
            gen::grid2d(side, side)
        }
        "torus" => {
            let side = (n as f64).cbrt().round().max(2.0) as usize;
            gen::torus3d(side, side, side)
        }
        other => {
            if let Some(name) = other.strip_prefix("suite:") {
                let kind = gen::suite::PaperGraph::from_name(name)
                    .ok_or_else(|| format!("unknown suite graph {name:?}"))?;
                let divisor: u64 = get_num(flags, "divisor", 128)?;
                kind.generate(divisor, seed)
            } else {
                return Err(format!("unknown model {other:?}"));
            }
        }
    };
    save_graph(out, &g)?;
    Ok(format!(
        "wrote {out}: n={} m={} (model={model}, seed={seed})\n",
        g.num_vertices(),
        g.num_edges()
    ))
}

fn cmd_stats(flags: &HashMap<String, String>) -> Result<String, String> {
    let g = load_graph(get(flags, "in")?)?;
    let s = stats::summarize(&g);
    let mut out = String::new();
    let _ = writeln!(out, "vertices        : {}", s.n);
    let _ = writeln!(out, "edges           : {}", s.m);
    let _ = writeln!(out, "avg out-degree  : {:.2}", s.avg_degree);
    let _ = writeln!(out, "max out-degree  : {}", s.max_degree);
    let _ = writeln!(out, "bfs pseudo-diam : {}", s.pseudo_diameter);
    let _ = writeln!(out, "reached from v0 : {}", s.reached_from_0);
    let _ = writeln!(
        out,
        "power-law gamma : {}",
        s.power_law_gamma.map_or("n/a".to_string(), |x| format!("{x:.2}"))
    );
    Ok(out)
}

fn bfs_opts(flags: &HashMap<String, String>) -> Result<BfsOptions, String> {
    let threads: usize = get_num(flags, "threads", 4)?;
    if threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    // `--hybrid` enables the direction-optimizing driver; `--alpha` /
    // `--beta` tune Beamer's switch constants (defaults 14 / 24) and
    // imply `--hybrid`.
    let defaults = HybridPolicy::default();
    let alpha: u64 = get_num(flags, "alpha", defaults.alpha)?;
    let beta: u64 = get_num(flags, "beta", defaults.beta)?;
    if alpha == 0 || beta == 0 {
        return Err("--alpha and --beta must be at least 1".into());
    }
    let hybrid = (has(flags, "hybrid") || has(flags, "alpha") || has(flags, "beta"))
        .then(|| HybridPolicy::with_constants(alpha, beta));
    // `--compaction` enables prefix-sum frontier compaction for dense
    // top-down levels; `--compact-density d` tunes the density divisor
    // (compact when frontier >= n/d) and implies `--compaction`.
    let density: u64 = get_num(flags, "compact-density", CompactionPolicy::default().density_div)?;
    if density == 0 {
        return Err("--compact-density must be at least 1".into());
    }
    let compaction = (has(flags, "compaction") || has(flags, "compact-density"))
        .then_some(CompactionPolicy { density_div: density, force: None });
    Ok(BfsOptions {
        threads,
        record_parents: has(flags, "parents"),
        collect_level_stats: has(flags, "trace"),
        collect_histograms: has(flags, "histograms"),
        hybrid,
        compaction,
        ..BfsOptions::default()
    })
}

fn algo_flag(flags: &HashMap<String, String>, default: Algorithm) -> Result<Algorithm, String> {
    match flags.get("algo") {
        None => Ok(default),
        Some(s) => Algorithm::from_name(s).ok_or_else(|| format!("unknown algorithm {s:?}")),
    }
}

fn cmd_bfs(flags: &HashMap<String, String>) -> Result<String, String> {
    let g = load_graph(get(flags, "in")?)?;
    let algo = algo_flag(flags, Algorithm::Bfswsl)?;
    if let Some(list) = flags.get("sources") {
        if has(flags, "src") {
            return Err("--src and --sources are mutually exclusive".into());
        }
        return cmd_bfs_batch(&g, algo, list, flags);
    }
    let src: u32 = get_num(flags, "src", 0)?;
    if src as usize >= g.num_vertices() {
        return Err(format!("--src {src} out of range (n={})", g.num_vertices()));
    }
    let mut opts = bfs_opts(flags)?;
    // `--trace` alone prints the per-level table; `--trace OUT.json`
    // additionally arms the flight recorder and writes a
    // chrome://tracing file (needs the `trace` cargo feature to record).
    let trace_path = flags.get("trace").filter(|v| v.as_str() != "true");
    if trace_path.is_some() {
        opts.flight_recorder = Some(obfs_core::flight::DEFAULT_FLIGHT_CAPACITY);
    }
    let r = run_bfs(algo, &g, src, &opts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{algo} from {src}: reached {} of {} vertices, depth {}, {:.3} ms ({} threads)",
        r.reached(),
        g.num_vertices(),
        r.depth(),
        r.stats.traversal_time.as_secs_f64() * 1e3,
        opts.threads
    );
    let t = &r.stats.totals;
    let _ = writeln!(
        out,
        "explored={} edges-scanned={} discovered={} duplicates={} segments={} steals={}/{}",
        t.vertices_explored,
        t.edges_scanned,
        t.vertices_discovered,
        t.duplicate_explorations,
        t.segments_fetched,
        t.steal.success,
        t.steal.attempts
    );
    if opts.hybrid.is_some() {
        let dirs: Vec<&str> = r.stats.directions.iter().map(|d| d.label()).collect();
        let _ = writeln!(
            out,
            "hybrid directions: {} ({} switch(es))",
            dirs.join(","),
            r.stats.direction_switches
        );
    }
    if let Some(b) = r.stats.kernel_backend {
        let _ = writeln!(
            out,
            "kernel backend: {b}; compacted levels: {}",
            r.stats.compacted_levels
        );
    }
    if has(flags, "trace") {
        let _ = writeln!(out, "level  dir  cmp  frontier  discovered   time(us)");
        for e in &r.stats.level_stats {
            let _ = writeln!(
                out,
                "{:>5}  {:>3}  {:>3}  {:>8}  {:>10}  {:>9.1}",
                e.level,
                e.direction.label(),
                if e.compacted { "y" } else { "-" },
                e.frontier,
                e.discovered,
                e.duration.as_secs_f64() * 1e6
            );
        }
    }
    if has(flags, "histograms") {
        match &r.stats.hists {
            Some(h) => {
                let m = h.merged();
                let _ = writeln!(
                    out,
                    "latency histograms (us; merged across {} workers)",
                    h.workers.len()
                );
                let _ = writeln!(
                    out,
                    "{:<18} {:>9} {:>8} {:>8} {:>8} {:>10}",
                    "metric", "count", "p50", "p90", "p99", "max"
                );
                for (name, hist) in [
                    ("segment-fetch", &m.segment_fetch_us),
                    ("steal-attempt", &m.steal_us),
                    ("retry-burst (n)", &m.fetch_retry_burst),
                    ("barrier-wait", &m.barrier_wait_us),
                ] {
                    let _ = writeln!(
                        out,
                        "{:<18} {:>9} {:>8} {:>8} {:>8} {:>10}",
                        name,
                        hist.count(),
                        hist.percentile(0.50),
                        hist.percentile(0.90),
                        hist.percentile(0.99),
                        hist.max()
                    );
                }
            }
            None => {
                let _ = writeln!(out, "no histograms collected (serial run)");
            }
        }
    }
    if let Some(path) = trace_path {
        match &r.stats.flight {
            Some(rec) => {
                let json = obfs_core::flight::to_chrome_trace(rec);
                std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
                let _ = writeln!(
                    out,
                    "wrote trace {path}: {} events ({} dropped) across {} workers",
                    rec.total_events(),
                    rec.total_dropped(),
                    rec.workers.len()
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "no trace written: this build lacks the `trace` feature \
                     (rebuild with --features trace)"
                );
            }
        }
    }
    if has(flags, "validate") {
        let ser = serial_bfs(&g, src);
        obfs_core::validate::check_levels(&r, &ser.levels).map_err(|e| e.to_string())?;
        if r.parents.is_some() {
            obfs_core::validate::check_self_consistent(&g, src, &r)
                .map_err(|e| e.to_string())?;
        }
        let _ = writeln!(out, "validated against serial BFS: OK");
    }
    Ok(out)
}

/// `bfs --sources a,b,c`: one batched bit-parallel traversal answering
/// every listed source (up to 64; see `obfs_core::batch`), with the
/// same validation contract per query as a single-source run.
fn cmd_bfs_batch(
    g: &CsrGraph,
    algo: Algorithm,
    list: &str,
    flags: &HashMap<String, String>,
) -> Result<String, String> {
    let sources: Vec<u32> = list
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad source {s:?} in --sources")))
        .collect::<Result<_, _>>()?;
    if sources.is_empty() || sources.len() > obfs_core::MAX_BATCH {
        return Err(format!(
            "--sources takes 1..={} comma-separated vertices, got {}",
            obfs_core::MAX_BATCH,
            sources.len()
        ));
    }
    for &s in &sources {
        if s as usize >= g.num_vertices() {
            return Err(format!("source {s} out of range (n={})", g.num_vertices()));
        }
    }
    let opts = bfs_opts(flags)?;
    let b = obfs_core::run_batch(algo, g, &sources, &opts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{algo} batched x{}: {} union levels, {:.3} ms ({} threads)",
        sources.len(),
        b.stats.levels,
        b.stats.traversal_time.as_secs_f64() * 1e3,
        opts.threads
    );
    for q in &b.queries {
        let _ = writeln!(
            out,
            "  src {:>8}: reached {} of {}",
            q.source,
            q.reached(),
            g.num_vertices()
        );
    }
    if has(flags, "validate") {
        for q in &b.queries {
            let ser = serial_bfs(g, q.source);
            let r = q.as_bfs_result(&b.stats);
            obfs_core::validate::check_levels(&r, &ser.levels).map_err(|e| e.to_string())?;
            if r.parents.is_some() {
                obfs_core::validate::check_self_consistent(g, q.source, &r)
                    .map_err(|e| e.to_string())?;
            }
        }
        let _ = writeln!(out, "validated {} queries against serial BFS: OK", b.queries.len());
    }
    Ok(out)
}

/// `engine --in FILE ...`: drive a closed-loop batch of BFS queries
/// through the resilient multi-query engine (obfs-engine) and report
/// throughput, latency percentiles, and the shedding/retry counters.
/// Sources are drawn from a seeded PRNG so runs are reproducible;
/// queries are submitted in bursts of `--burst` so an undersized
/// `--capacity` demonstrably sheds the overflow instead of queueing it.
fn cmd_engine(flags: &HashMap<String, String>) -> Result<String, String> {
    use obfs_engine::{Engine, EngineConfig, Query, QueryStatus, SubmitError};
    let g = load_graph(get(flags, "in")?)?;
    let n = g.num_vertices() as u32;
    let algo = algo_flag(flags, Algorithm::Bfswsl)?;
    let threads: usize = get_num(flags, "threads", 4)?;
    let capacity: usize = get_num(flags, "capacity", 16)?;
    let queries: usize = get_num(flags, "queries", 32)?;
    let burst: usize = get_num(flags, "burst", capacity)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    let deadline_ms: u64 = get_num(flags, "deadline-ms", 0)?;
    let stats_interval: u64 = get_num(flags, "stats-interval", 0)?;
    if threads == 0 || capacity == 0 || queries == 0 || burst == 0 {
        return Err("--threads, --capacity, --queries and --burst must be at least 1".into());
    }
    let cfg = EngineConfig {
        threads,
        capacity,
        default_deadline: (deadline_ms > 0)
            .then(|| std::time::Duration::from_millis(deadline_ms)),
        seed,
        ..Default::default()
    };
    let engine = Engine::new(std::sync::Arc::new(g), cfg);
    #[cfg(feature = "serve-http")]
    let metrics_server = match flags.get("metrics-addr") {
        Some(addr) => {
            let srv = obfs_telemetry::MetricsServer::start(
                std::sync::Arc::clone(engine.telemetry().registry()),
                addr,
            )
            .map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
            eprintln!("metrics: serving GET /metrics and /metrics.json on http://{}", srv.addr());
            Some(srv)
        }
        None => None,
    };
    #[cfg(not(feature = "serve-http"))]
    if flags.contains_key("metrics-addr") {
        return Err(
            "--metrics-addr needs the `serve-http` feature; rebuild with \
             `cargo build --release --features serve-http` (the registry itself is always on: \
             --metrics-out FILE.json writes the final snapshot without the feature)"
                .into(),
        );
    }
    // Periodic stderr stats lines: a plain channel as the stop signal so
    // the reporter thread needs no atomics.
    let (stats_stop_tx, stats_stop_rx) = std::sync::mpsc::channel::<()>();
    let stats_thread = (stats_interval > 0).then(|| {
        let tele = std::sync::Arc::clone(engine.telemetry());
        std::thread::spawn(move || loop {
            use std::sync::mpsc::RecvTimeoutError;
            match stats_stop_rx.recv_timeout(std::time::Duration::from_secs(stats_interval)) {
                Ok(()) | Err(RecvTimeoutError::Disconnected) => return,
                Err(RecvTimeoutError::Timeout) => {
                    let st = tele.stats();
                    let snap = tele.registry().snapshot();
                    eprintln!(
                        "engine-stats: submitted={} completed={} degraded={} shed={} \
                         in-flight={} queue-depth={} retries={} rebuilds={}",
                        st.submitted,
                        st.completed,
                        st.degraded,
                        st.shed,
                        snap.gauge("obfs_engine_in_flight").unwrap_or(0),
                        snap.gauge("obfs_engine_queue_depth").unwrap_or(0),
                        st.retries,
                        st.pool_rebuilds
                    );
                }
            }
        })
    });
    let mut rng = obfs_util::Xoshiro256StarStar::new(seed);
    let mut lat_us = obfs_util::LogHistogram::new();
    let mut shed = 0u64;
    let clock = engine.config().clock.clone();
    let t0 = clock.now_ns();
    let mut submitted = 0usize;
    while submitted < queries {
        let want = burst.min(queries - submitted);
        let mut handles = Vec::with_capacity(want);
        for _ in 0..want {
            let src = (rng.next_u64() % u64::from(n)) as u32;
            match engine.submit(Query::new(algo, src)) {
                Ok(h) => handles.push(h),
                Err(SubmitError::Overloaded) => shed += 1,
                Err(e) => return Err(format!("engine rejected query: {e}")),
            }
            submitted += 1;
        }
        for h in handles {
            let resp = h.wait();
            lat_us.record(resp.total_ns / 1_000);
            if let QueryStatus::Failed(m) = &resp.status {
                return Err(format!("query {} failed: {m}", resp.id));
            }
        }
    }
    let elapsed_s = (clock.now_ns() - t0) as f64 / 1e9;
    drop(stats_stop_tx);
    if let Some(t) = stats_thread {
        let _ = t.join();
    }
    if let Some(path) = flags.get("metrics-out") {
        let json = engine.telemetry().registry().to_json().render();
        std::fs::write(path, json + "\n").map_err(|e| format!("write {path}: {e}"))?;
    }
    #[cfg(feature = "serve-http")]
    drop(metrics_server); // joins the responder thread before reporting
    let st = engine.stats();
    let done = st.completed + st.degraded + st.cancelled + st.deadline_exceeded;
    let qps = if elapsed_s > 0.0 { done as f64 / elapsed_s } else { 0.0 };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "engine: {algo} x{queries} queries (burst {burst}, capacity {capacity}, {threads} threads)"
    );
    let _ = writeln!(
        out,
        "completed={} degraded={} cancelled={} deadline-exceeded={} shed={} retries={} \
         pool-rebuilds={} batched-runs={} coalesced={}",
        st.completed,
        st.degraded,
        st.cancelled,
        st.deadline_exceeded,
        shed,
        st.retries,
        st.pool_rebuilds,
        st.batched_runs,
        st.queries_coalesced
    );
    let _ = writeln!(
        out,
        "throughput {qps:.1} queries/s; latency(us) p50={} p90={} p99={} max={}",
        lat_us.percentile(0.50),
        lat_us.percentile(0.90),
        lat_us.percentile(0.99),
        lat_us.max()
    );
    Ok(out)
}

fn cmd_components(flags: &HashMap<String, String>) -> Result<String, String> {
    let g = load_graph(get(flags, "in")?)?;
    let algo = algo_flag(flags, Algorithm::Bfscl)?;
    let opts = bfs_opts(flags)?;
    let c = obfs_apps::connected_components(&g, algo, &opts);
    let mut sizes = c.sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    let shown = sizes.len().min(10);
    Ok(format!(
        "{} component(s); largest {}; top sizes {:?}{}\n",
        c.count,
        c.giant_size(),
        &sizes[..shown],
        if sizes.len() > shown { " ..." } else { "" }
    ))
}

fn cmd_bipartite(flags: &HashMap<String, String>) -> Result<String, String> {
    let g = load_graph(get(flags, "in")?)?;
    let opts = bfs_opts(flags)?;
    match obfs_apps::bipartition(&g, Algorithm::Bfscl, &opts) {
        obfs_apps::Bipartition::Bipartite { side } => {
            let zeros = side.iter().filter(|&&s| s == 0).count();
            Ok(format!("bipartite: sides {} / {}\n", zeros, side.len() - zeros))
        }
        obfs_apps::Bipartition::OddCycle { u, v } => {
            Ok(format!("NOT bipartite: odd cycle through edge ({u}, {v})\n"))
        }
    }
}

fn cmd_bc(flags: &HashMap<String, String>) -> Result<String, String> {
    let g = load_graph(get(flags, "in")?)?;
    let samples: usize = get_num(flags, "samples", 16)?;
    let seed: u64 = get_num(flags, "seed", 1)?;
    let top: usize = get_num(flags, "top", 10)?;
    let bc = obfs_apps::betweenness_centrality(&g, samples, seed);
    let mut ranked: Vec<(usize, f64)> = bc.into_iter().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let mut out = format!("approximate betweenness centrality ({samples} pivots):\n");
    for (v, score) in ranked.into_iter().take(top) {
        let _ = writeln!(out, "  v{v:<8} {score:>14.1}  (degree {})", g.degree(v as u32));
    }
    Ok(out)
}

/// `analyze TRACE.json [--json]`: re-read an exported chrome-trace file
/// and print the deterministic post-mortem profile (human table by
/// default, machine JSON with `--json`). Works on any trace written by
/// `bfs --trace OUT.json` — same profile, byte-for-byte, on every
/// machine and every run.
fn cmd_analyze(rest: &[String]) -> Result<String, String> {
    let mut path: Option<&str> = None;
    let mut json = false;
    for a in rest {
        match a.as_str() {
            "--json" => json = true,
            other if !other.starts_with("--") && path.is_none() => path = Some(other),
            other => return Err(format!("analyze: unexpected argument {other:?}")),
        }
    }
    let path = path.ok_or("analyze: missing trace file argument")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let rec = obfs_core::flight::parse_chrome_trace(&text)?;
    let profile = obfs_core::flight::analysis::Profile::from_recording(&rec);
    if json {
        Ok(profile.to_json().render() + "\n")
    } else {
        Ok(profile.render_table())
    }
}

fn cmd_model(flags: &HashMap<String, String>) -> Result<String, String> {
    use obfs_core::model::{check_all, Explorer, DEFAULT_BOUNDS};
    let bounds = Explorer {
        max_schedules: get_num(flags, "schedules", DEFAULT_BOUNDS.max_schedules)?,
        max_steps: get_num(flags, "steps", DEFAULT_BOUNDS.max_steps)?,
    };
    let report = check_all(bounds);
    let rendered = report.render();
    if report.passed() {
        Ok(rendered)
    } else {
        // Nonzero exit: a protocol invariant broke or a seeded bug
        // escaped detection. The full report is the error message.
        Err(format!("model check failed\n{rendered}"))
    }
}

fn cmd_convert(flags: &HashMap<String, String>) -> Result<String, String> {
    let g = load_graph(get(flags, "in")?)?;
    let out = get(flags, "out")?;
    save_graph(out, &g)?;
    Ok(format!("converted to {out}: n={} m={}\n", g.num_vertices(), g.num_edges()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join(format!("obfs-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn parse_flags_mixed() {
        let f = parse_flags(&strs(&["--n", "100", "--validate", "--algo", "BFS_CL"])).unwrap();
        assert_eq!(f["n"], "100");
        assert_eq!(f["validate"], "true");
        assert_eq!(f["algo"], "BFS_CL");
    }

    #[test]
    fn parse_flags_rejects_bad_shape() {
        assert!(parse_flags(&strs(&["n", "100"])).is_err());
        assert!(parse_flags(&strs(&["--n", "1", "--n", "2"])).is_err());
    }

    #[test]
    fn gen_stats_bfs_roundtrip() {
        let path = tmp("g.bin");
        let rep = dispatch(&strs(&[
            "gen", "--model", "er", "--n", "500", "--edge-factor", "6", "--out", &path,
        ]))
        .unwrap();
        assert!(rep.contains("n=500"));
        let rep = dispatch(&strs(&["stats", "--in", &path])).unwrap();
        assert!(rep.contains("vertices        : 500"));
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--algo", "BFS_WSL", "--threads", "3", "--validate",
            "--parents", "--trace",
        ]))
        .unwrap();
        assert!(rep.contains("validated against serial BFS: OK"), "{rep}");
        assert!(rep.contains("level  dir  cmp  frontier"), "trace table missing: {rep}");
    }

    #[test]
    fn bfs_sources_flag_runs_a_validated_batch() {
        let path = tmp("batch.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "600", "--edge-factor", "7", "--out", &path,
        ]))
        .unwrap();
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--algo", "BFS_WSL", "--threads", "3", "--sources",
            "0,17,99,300", "--parents", "--validate",
        ]))
        .unwrap();
        assert!(rep.contains("batched x4"), "{rep}");
        assert!(rep.contains("validated 4 queries against serial BFS: OK"), "{rep}");
        // Errors: mixed flags, bad list entries, out-of-range sources.
        assert!(dispatch(&strs(&[
            "bfs", "--in", &path, "--src", "1", "--sources", "0,1",
        ]))
        .is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--sources", "0,zebra"])).is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--sources", "999999"])).is_err());
    }

    #[test]
    fn hybrid_flags_validate_and_report_directions() {
        let path = tmp("hyb.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "400", "--edge-factor", "20", "--out", &path,
        ]))
        .unwrap();
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--algo", "BFS_CL", "--threads", "2", "--hybrid",
            "--validate", "--parents", "--trace",
        ]))
        .unwrap();
        assert!(rep.contains("validated against serial BFS: OK"), "{rep}");
        assert!(rep.contains("hybrid directions:"), "{rep}");
        // Dense ER at edge-factor 20 must flip bottom-up at least once.
        assert!(rep.contains("bu"), "no bottom-up level reported: {rep}");
        // --alpha alone implies --hybrid.
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--threads", "2", "--alpha", "1000000", "--validate",
        ]))
        .unwrap();
        assert!(rep.contains("hybrid directions:"), "{rep}");
        // Bad knobs are rejected.
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--alpha", "0"])).is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--beta", "nope"])).is_err());
    }

    #[test]
    fn compaction_flags_validate_and_mark_levels() {
        let path = tmp("cmp.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "600", "--edge-factor", "8", "--out", &path,
        ]))
        .unwrap();
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--algo", "BFS_CL", "--threads", "3", "--compaction",
            "--validate", "--parents", "--trace",
        ]))
        .unwrap();
        assert!(rep.contains("validated against serial BFS: OK"), "{rep}");
        assert!(rep.contains("kernel backend: "), "{rep}");
        // Dense ER levels must actually compact, and the trace table
        // must mark them in the cmp column.
        let compacted: u64 = rep
            .split("compacted levels: ")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("compacted-levels counter in report");
        assert!(compacted > 0, "dense ER run should compact: {rep}");
        assert!(rep.lines().any(|l| l.contains("  y  ")), "no compacted row: {rep}");
        // --compact-density alone implies --compaction; an absurdly high
        // divisor compacts every non-empty level.
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--threads", "2", "--compact-density", "1000000",
            "--validate",
        ]))
        .unwrap();
        assert!(rep.contains("compacted levels: "), "{rep}");
        // Bad knobs are rejected.
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--compact-density", "0"])).is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--compact-density", "x"])).is_err());
    }

    #[test]
    fn bfs_trace_flag_with_path_writes_or_explains() {
        let path = tmp("tracegraph.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "300", "--edge-factor", "5", "--out", &path,
        ]))
        .unwrap();
        let trace = tmp("trace.json");
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--threads", "2", "--trace", &trace,
        ]))
        .unwrap();
        // The per-level table is printed either way.
        assert!(rep.contains("level  dir  cmp  frontier"), "{rep}");
        #[cfg(feature = "trace")]
        {
            assert!(rep.contains("wrote trace"), "{rep}");
            let body = std::fs::read_to_string(&trace).unwrap();
            assert!(body.starts_with("{\"displayTimeUnit\""), "not a chrome trace: {body:.40}");
            assert!(body.contains("\"traceEvents\""));
        }
        #[cfg(not(feature = "trace"))]
        assert!(rep.contains("no trace written"), "{rep}");
    }

    #[test]
    fn bfs_histograms_flag_prints_summary() {
        let path = tmp("hist.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "400", "--edge-factor", "8", "--out", &path,
        ]))
        .unwrap();
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--algo", "BFS_WSL", "--threads", "3", "--histograms",
            "--validate",
        ]))
        .unwrap();
        assert!(rep.contains("latency histograms"), "{rep}");
        assert!(rep.contains("segment-fetch"), "{rep}");
        assert!(rep.contains("barrier-wait"), "{rep}");
        assert!(rep.contains("validated against serial BFS: OK"), "{rep}");
        // Serial runs have no worker pool, hence no histograms.
        let rep = dispatch(&strs(&[
            "bfs", "--in", &path, "--algo", "sbfs", "--histograms",
        ]))
        .unwrap();
        assert!(rep.contains("no histograms collected"), "{rep}");
    }

    #[test]
    fn analyze_profiles_a_trace_deterministically() {
        // Hand-write a recording, export it, analyze it both ways.
        use obfs_core::flight::{kind, to_chrome_trace, FlightEvent, FlightRecording, RingDump};
        let ev = |ts_us, kind, level, a, b| FlightEvent { ts_us, kind, level, a, b };
        let rec = FlightRecording {
            workers: vec![RingDump {
                events: vec![
                    ev(0, kind::WORKER_BEGIN, 0, 0, 0),
                    ev(5, kind::LEVEL_START, 0, 0, 0),
                    ev(20, kind::SEGMENT_FETCH, 0, 0, 8),
                    ev(30, kind::LEVEL_END, 0, 0, 0),
                    ev(31, kind::BARRIER_ENTER, 0, 0, 0),
                    ev(40, kind::BARRIER_EXIT, 0, 1, 0),
                    ev(41, kind::WORKER_END, 0, 0, 0),
                ],
                dropped: 2,
            }],
        };
        let trace = tmp("analyze.json");
        std::fs::write(&trace, to_chrome_trace(&rec)).unwrap();
        let table = dispatch(&strs(&["analyze", &trace])).unwrap();
        assert!(table.contains("per-worker utilization"), "{table}");
        assert!(table.contains("dropped: 2"), "{table}");
        let j1 = dispatch(&strs(&["analyze", &trace, "--json"])).unwrap();
        let j2 = dispatch(&strs(&["analyze", &trace, "--json"])).unwrap();
        assert_eq!(j1, j2, "profile must be byte-identical across runs");
        assert!(j1.contains("\"schema\":\"obfs-profile-v1\""), "{j1}");
        // Errors: missing file, missing arg, stray flag.
        assert!(dispatch(&strs(&["analyze"])).is_err());
        assert!(dispatch(&strs(&["analyze", "/nonexistent.json"])).is_err());
        assert!(dispatch(&strs(&["analyze", &trace, "--bogus"])).is_err());
    }

    #[test]
    fn components_and_bipartite_commands() {
        let path = tmp("grid.mtx");
        dispatch(&strs(&["gen", "--model", "grid", "--n", "100", "--out", &path])).unwrap();
        let rep = dispatch(&strs(&["components", "--in", &path])).unwrap();
        assert!(rep.contains("1 component(s)"), "{rep}");
        let rep = dispatch(&strs(&["bipartite", "--in", &path])).unwrap();
        assert!(rep.starts_with("bipartite"), "{rep}");
    }

    #[test]
    fn bc_command_ranks_hub_first() {
        let path = tmp("star.el");
        // A star via the suite path is overkill; write an edge list.
        let g = gen::star(50);
        save_graph(&path, &g).unwrap();
        let rep = dispatch(&strs(&["bc", "--in", &path, "--samples", "10", "--top", "1"]))
            .unwrap();
        assert!(rep.contains("v0"), "hub must rank first: {rep}");
    }

    #[test]
    fn convert_between_formats() {
        let a = tmp("conv.el");
        let b = tmp("conv.mtx");
        dispatch(&strs(&["gen", "--model", "torus", "--n", "64", "--out", &a])).unwrap();
        let rep = dispatch(&strs(&["convert", "--in", &a, "--out", &b])).unwrap();
        assert!(rep.contains("converted"));
        let g1 = load_graph(&a).unwrap();
        let g2 = load_graph(&b).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn suite_model_and_errors() {
        let path = tmp("wiki.bin");
        let rep = dispatch(&strs(&[
            "gen", "--model", "suite:wikipedia", "--divisor", "512", "--out", &path,
        ]))
        .unwrap();
        assert!(rep.contains("wrote"));
        assert!(dispatch(&strs(&["gen", "--model", "bogus", "--out", &path])).is_err());
        assert!(dispatch(&strs(&["gen", "--model", "er", "--n", "0", "--out", &path])).is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--threads", "0"])).is_err());
        assert!(dispatch(&strs(&["bogus-command"])).is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--algo", "nope"])).is_err());
        assert!(dispatch(&strs(&["bfs", "--in", &path, "--src", "999999999"])).is_err());
        assert!(dispatch(&[]).is_err());
    }

    #[test]
    fn engine_command_runs_a_batch() {
        let path = tmp("engine.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "400", "--edge-factor", "6", "--out", &path,
        ]))
        .unwrap();
        let rep = dispatch(&strs(&[
            "engine", "--in", &path, "--algo", "BFS_CL", "--threads", "2", "--queries", "6",
            "--capacity", "4", "--seed", "7",
        ]))
        .unwrap();
        assert!(rep.contains("engine: BFS_CL x6 queries"), "{rep}");
        assert!(rep.contains("completed=6"), "{rep}");
        assert!(rep.contains("shed=0"), "{rep}");
        assert!(rep.contains("throughput"), "{rep}");
        // Bad knobs are rejected.
        assert!(dispatch(&strs(&["engine", "--in", &path, "--capacity", "0"])).is_err());
        assert!(dispatch(&strs(&["engine", "--in", &path, "--queries", "0"])).is_err());
    }

    #[test]
    fn engine_command_sheds_bursts_beyond_capacity() {
        let path = tmp("engine-shed.bin");
        dispatch(&strs(&[
            "gen", "--model", "er", "--n", "300", "--edge-factor", "5", "--out", &path,
        ]))
        .unwrap();
        // Burst 8 into capacity 2: at least 6 of the first burst must be
        // shed at the door (the gate never queues beyond capacity).
        let rep = dispatch(&strs(&[
            "engine", "--in", &path, "--threads", "2", "--queries", "8", "--capacity", "2",
            "--burst", "8",
        ]))
        .unwrap();
        let shed: u64 = rep
            .split("shed=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .expect("shed counter in report");
        assert!(shed >= 6, "capacity 2 must shed most of a burst of 8: {rep}");
    }

    #[test]
    fn help_prints_usage() {
        let rep = dispatch(&strs(&["help"])).unwrap();
        assert!(rep.contains("usage: obfs"));
    }
}
