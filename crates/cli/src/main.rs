//! `obfs` — command-line front end for the optimistic-BFS library.
//!
//! ```text
//! obfs gen   --model rmat --n 65536 --edge-factor 16 --out g.bin
//! obfs stats --in g.bin
//! obfs bfs   --in g.bin --algo BFS_WSL --src 0 --threads 8 --validate
//! obfs components --in g.bin --threads 4
//! obfs bipartite  --in g.bin
//! obfs bc    --in g.bin --samples 16
//! obfs convert --in g.mtx --out g.bin
//! ```

use obfs_cli::{dispatch, usage};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dispatch(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("{}", usage());
            std::process::exit(2);
        }
    }
}
