//! Resilient multi-query BFS engine (`obfs-engine`).
//!
//! The paper's algorithms run one traversal and exit; a service-shaped
//! deployment needs queries that can be **cancelled**, **deadlined**,
//! **shed** under overload, and **retried** when a worker panic poisons
//! the pool. This crate is that layer — admission control and scheduling
//! only, no sockets (a future wire protocol plugs into [`Engine`]).
//!
//! Architecture (DESIGN.md §10):
//!
//! * [`Engine::submit`] is the admission gate: a bounded in-flight count
//!   (queued + running) with reject-beyond-capacity semantics
//!   ([`SubmitError::Overloaded`]) — load is shed at the door, never
//!   queued unboundedly.
//! * One **scheduler thread** owns a [`obfs_runtime::PoolManager`] and
//!   drains the queue earliest-deadline-first. Pool ownership never
//!   crosses threads, so the scheduler needs no locking around the pool
//!   and a panic-poisoned pool is rebuilt transparently (counted in
//!   [`EngineStats::pool_rebuilds`]).
//! * Every query gets a [`obfs_sync::CancelToken`] carrying its absolute
//!   deadline on the engine's [`Clock`]; the token is polled by the BFS
//!   workers at dispatch granularity and by the scheduler at pop time
//!   (an expired or cancelled query that never started is resolved
//!   without running at all).
//! * Queries that lose their slot to a pool rebuild (and optionally to a
//!   degraded level) are retried with seeded-jitter exponential backoff,
//!   bounded by [`EngineConfig::max_retries`] and the query's deadline.
//! * Every engine carries an always-on [`EngineTelemetry`]: an
//!   `obfs-telemetry` [`MetricsRegistry`] of lifetime counters, live
//!   gauges, and windowed latency histograms, plus a bounded per-query
//!   span log whose transitions are mirrored as `SPAN` flight events on
//!   the scheduler thread (DESIGN.md §13). [`Engine::stats`] is a
//!   read-through view of the registry — one source of truth.
//!
//! [`MetricsRegistry`]: obfs_telemetry::MetricsRegistry

#![warn(missing_docs)]

use obfs_core::{Algorithm, BfsOptions, BfsResult, Outcome};
use obfs_graph::{CsrGraph, VertexId};
use obfs_runtime::PoolManager;
use obfs_sync::flight::{self, RingDump};
use obfs_sync::{CancelToken, ChaosConfig, Clock};
use obfs_telemetry::span::stage;
use obfs_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, RunTelemetry, SpanDump, SpanLog};
use obfs_util::Xoshiro256StarStar;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Engine-wide configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads per traversal (the managed pool's width).
    pub threads: usize,
    /// Maximum in-flight queries (queued + running); submits beyond this
    /// are shed with [`SubmitError::Overloaded`].
    pub capacity: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Retry budget for queries that hit a pool failure (worker panic)
    /// or — with [`EngineConfig::retry_degraded`] — a degraded run.
    pub max_retries: u32,
    /// Base of the exponential retry backoff; attempt `k` waits
    /// `backoff_base * 2^k` plus up to 50% seeded jitter.
    pub backoff_base: Duration,
    /// Also retry queries whose run came back [`Outcome::Degraded`]
    /// (the watchdog swept at least one level). Off by default: a
    /// degraded result is complete, just slower.
    pub retry_degraded: bool,
    /// Maximum queries coalesced into one batched traversal (clamped to
    /// [`obfs_core::MAX_BATCH`]; 1 disables coalescing). When the EDF
    /// pop yields a deadline-free, chaos-free query, every compatible
    /// queued query (same algorithm, same `record_parents`, also
    /// deadline- and chaos-free) joins it in a single batched run — one
    /// traversal answers the whole set (see `obfs_core::batch`).
    pub max_batch: usize,
    /// Seed for the backoff jitter (deterministic across reruns).
    pub seed: u64,
    /// Time source for deadlines and latency accounting; inject
    /// [`Clock::manual`] to make deadline tests fully deterministic.
    pub clock: Clock,
    /// Decay window for the telemetry latency histograms: a live p99
    /// reflects the last one-to-two windows, never the whole process
    /// (`Duration::ZERO` disables decay; see `obfs-telemetry`).
    pub metrics_window: Duration,
    /// Bound on the per-query span log (transitions, not queries; the
    /// oldest are overwritten and counted once exceeded).
    pub span_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            capacity: 16,
            default_deadline: None,
            max_retries: 2,
            backoff_base: Duration::from_millis(1),
            retry_degraded: false,
            max_batch: obfs_core::MAX_BATCH,
            seed: 0x0E46,
            clock: Clock::default(),
            metrics_window: obfs_telemetry::registry::DEFAULT_WINDOW,
            span_capacity: 1 << 16,
        }
    }
}

/// One BFS query.
#[derive(Debug, Clone)]
pub struct Query {
    /// Algorithm to run.
    pub algo: Algorithm,
    /// Source vertex.
    pub src: VertexId,
    /// Per-query deadline (overrides
    /// [`EngineConfig::default_deadline`]).
    pub deadline: Option<Duration>,
    /// Record BFS-tree parents in the result.
    pub record_parents: bool,
    /// Per-query fault-injection plan (tests; needs the `chaos`
    /// feature to actually fire).
    pub chaos: Option<ChaosConfig>,
}

impl Query {
    /// A plain query with no deadline override.
    pub fn new(algo: Algorithm, src: VertexId) -> Self {
        Self { algo, src, deadline: None, record_parents: false, chaos: None }
    }

    /// Builder: set a per-query deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }
}

/// Why a submit was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The in-flight count is at [`EngineConfig::capacity`]; the query
    /// was shed, not queued.
    Overloaded,
    /// The engine is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "engine at capacity: query shed"),
            SubmitError::ShuttingDown => write!(f, "engine shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Terminal status of a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStatus {
    /// Full traversal, no degradation.
    Complete,
    /// Full traversal; the watchdog swept at least one level.
    Degraded,
    /// Cancelled via [`QueryHandle::cancel`]; the result (if the run
    /// had started) is partial.
    Cancelled,
    /// The deadline passed (queued too long, or mid-run — mid-run
    /// responses carry the partial result).
    DeadlineExceeded,
    /// The run failed and the retry budget is exhausted (carries the
    /// last pool error).
    Failed(String),
}

/// Terminal response for one query.
#[derive(Debug)]
pub struct QueryResponse {
    /// The id [`Engine::submit`] assigned.
    pub id: u64,
    /// How the query ended.
    pub status: QueryStatus,
    /// The traversal result; `None` when the query never ran (shed at
    /// pop time, or failed before producing anything). Partial for
    /// `Cancelled` / `DeadlineExceeded` mid-run responses.
    pub result: Option<BfsResult>,
    /// Times the query was re-run (pool failure / degraded retry).
    pub retries: u32,
    /// Queue wait before the first run attempt, in clock ticks.
    pub wait_ns: u64,
    /// Submit-to-response latency, in clock ticks.
    pub total_ns: u64,
}

/// Caller-side handle to an in-flight query.
pub struct QueryHandle {
    id: u64,
    token: CancelToken,
    rx: mpsc::Receiver<QueryResponse>,
}

impl QueryHandle {
    /// The engine-assigned query id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Ask the query to stop (idempotent). A queued query resolves at
    /// pop time without running; a running query quiesces at the next
    /// level barrier and returns its partial state.
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The query's cancel token (clone to share).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }

    /// Block until the query resolves.
    pub fn wait(self) -> QueryResponse {
        self.rx.recv().unwrap_or_else(|_| QueryResponse {
            id: self.id,
            status: QueryStatus::Failed("engine dropped without responding".into()),
            result: None,
            retries: 0,
            wait_ns: 0,
            total_ns: 0,
        })
    }
}

/// Counters over the engine's lifetime (all monotonically increasing).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Queries admitted past the capacity gate.
    pub submitted: u64,
    /// Queries that ended [`QueryStatus::Complete`].
    pub completed: u64,
    /// Submits rejected with [`SubmitError::Overloaded`].
    pub shed: u64,
    /// Queries that ended [`QueryStatus::Cancelled`].
    pub cancelled: u64,
    /// Queries that ended [`QueryStatus::DeadlineExceeded`].
    pub deadline_exceeded: u64,
    /// Queries that ended [`QueryStatus::Degraded`].
    pub degraded: u64,
    /// Queries that ended [`QueryStatus::Failed`].
    pub failed: u64,
    /// Total re-run attempts across all queries.
    pub retries: u64,
    /// Panic-poisoned pools replaced by the scheduler's
    /// [`PoolManager`].
    pub pool_rebuilds: u64,
    /// Batched traversals executed (each answered ≥ 2 queries).
    pub batched_runs: u64,
    /// Queries answered by batched traversals (sum of batch sizes over
    /// [`EngineStats::batched_runs`]).
    pub queries_coalesced: u64,
}

/// The engine's always-on telemetry: a metrics registry (counters,
/// gauges, windowed latency histograms), the per-query span log, and —
/// in `trace` builds — the scheduler thread's drained flight ring.
///
/// All counter updates are relaxed RMWs into sharded slots; none of
/// them publishes other state. The one read-your-writes guarantee the
/// engine makes — a caller returning from [`QueryHandle::wait`]
/// observes its own query in [`Engine::stats`] — rides the response
/// channel's send/recv happens-before edge, because every terminal
/// counter is incremented *before* the response is sent. Cross-counter
/// conservation (`submitted == terminals + in-flight`) holds at
/// quiescence, which is when the bench validator checks it; a live
/// scrape may observe a transiently inconsistent cut.
pub struct EngineTelemetry {
    registry: Arc<MetricsRegistry>,
    spans: SpanLog,
    /// The scheduler thread's flight ring, parked here when the
    /// scheduler exits so `SPAN` events outlive the engine (`trace`
    /// builds only; `None` otherwise).
    sched_trace: Mutex<Option<RingDump>>,
    run: Arc<RunTelemetry>,
    submitted: Counter,
    completed: Counter,
    shed: Counter,
    cancelled: Counter,
    deadline_exceeded: Counter,
    degraded: Counter,
    failed: Counter,
    retries: Counter,
    pool_rebuilds: Counter,
    batched_runs: Counter,
    queries_coalesced: Counter,
    queue_depth: Gauge,
    running: Gauge,
    in_flight: Gauge,
    wait_us: Histogram,
    total_us: Histogram,
    batch_occupancy: Histogram,
}

impl EngineTelemetry {
    fn new(clock: &Clock, window: Duration, span_capacity: usize) -> Arc<Self> {
        let registry = MetricsRegistry::with_window(clock.clone(), window);
        let r = &registry;
        let c = |name: &str, help: &str| r.counter(name, help);
        Arc::new(EngineTelemetry {
            spans: SpanLog::new(clock.clone(), span_capacity),
            sched_trace: Mutex::new(None),
            run: RunTelemetry::register(r),
            submitted: c("obfs_engine_queries_submitted_total", "Queries admitted past the capacity gate."),
            completed: c("obfs_engine_queries_completed_total", "Queries that ended Complete."),
            shed: c("obfs_engine_queries_shed_total", "Submits rejected at the admission gate."),
            cancelled: c("obfs_engine_queries_cancelled_total", "Queries that ended Cancelled."),
            deadline_exceeded: c("obfs_engine_queries_deadline_exceeded_total", "Queries that ended DeadlineExceeded."),
            degraded: c("obfs_engine_queries_degraded_total", "Queries that ended Degraded."),
            failed: c("obfs_engine_queries_failed_total", "Queries that ended Failed."),
            retries: c("obfs_engine_retries_total", "Re-run attempts across all queries."),
            pool_rebuilds: c("obfs_engine_pool_rebuilds_total", "Panic-poisoned pools replaced by the scheduler."),
            batched_runs: c("obfs_engine_batched_runs_total", "Batched traversals executed."),
            queries_coalesced: c("obfs_engine_queries_coalesced_total", "Queries answered by batched traversals."),
            queue_depth: r.gauge("obfs_engine_queue_depth", "Jobs waiting in the EDF queue."),
            running: r.gauge("obfs_engine_running", "Queries on the pool right now."),
            in_flight: r.gauge("obfs_engine_in_flight", "Queued + running queries (the capacity gate's count)."),
            wait_us: r.histogram("obfs_engine_wait_us", "Queue wait before the first run attempt (us)."),
            total_us: r.histogram("obfs_engine_total_us", "Submit-to-terminal latency (us)."),
            batch_occupancy: r.histogram("obfs_engine_batch_occupancy", "Queries answered per batched run."),
            registry,
        })
    }

    /// The underlying registry (scrape it, serve it over HTTP, embed
    /// it in a report).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Read-through [`EngineStats`] assembled from the registry
    /// counters — the same numbers a scrape sees.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            submitted: self.submitted.value(),
            completed: self.completed.value(),
            shed: self.shed.value(),
            cancelled: self.cancelled.value(),
            deadline_exceeded: self.deadline_exceeded.value(),
            degraded: self.degraded.value(),
            failed: self.failed.value(),
            retries: self.retries.value(),
            pool_rebuilds: self.pool_rebuilds.value(),
            batched_runs: self.batched_runs.value(),
            queries_coalesced: self.queries_coalesced.value(),
        }
    }

    /// A copy of the per-query span log (non-draining; callers keeping
    /// an `Arc<EngineTelemetry>` can read it after the engine drops).
    pub fn spans(&self) -> SpanDump {
        self.spans.snapshot()
    }

    /// The scheduler thread's flight ring, available after the engine
    /// shut down (`trace` builds; `None` otherwise or while running).
    pub fn scheduler_trace(&self) -> Option<RingDump> {
        self.sched_trace.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// The per-run driver telemetry threaded into every query's
    /// `BfsOptions` (level/frontier/direction gauges, `obfs_run_*`).
    pub fn run_telemetry(&self) -> &Arc<RunTelemetry> {
        &self.run
    }

    /// Record a span transition and mirror it as a `SPAN` flight event
    /// (the mirror lands in the calling thread's ring, so scheduler-side
    /// transitions interleave with worker traces; the span log is the
    /// authoritative, feature-free record).
    fn span(&self, id: u64, st: u64, info: u64) {
        self.spans.record(id, st, info);
        flight::record(flight::kind::SPAN, 0, id, obfs_telemetry::span::encode_flight(st, info));
    }
}

impl std::fmt::Debug for EngineTelemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineTelemetry").field("stats", &self.stats()).finish()
    }
}

struct Job {
    id: u64,
    query: Query,
    token: CancelToken,
    /// Absolute deadline in clock ticks (EDF key; `None` sorts last).
    deadline_abs: Option<u64>,
    tx: mpsc::Sender<QueryResponse>,
    submitted_ns: u64,
}

struct EngineState {
    queue: VecDeque<Job>,
    /// Queued + running queries (the capacity gate's count).
    in_flight: usize,
    shutdown: bool,
    next_id: u64,
}

struct Shared {
    state: Mutex<EngineState>,
    work: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, EngineState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// The multi-query BFS engine: admission gate + EDF scheduler over one
/// shared graph and one managed worker pool.
pub struct Engine {
    shared: Arc<Shared>,
    cfg: EngineConfig,
    graph: Arc<CsrGraph>,
    tele: Arc<EngineTelemetry>,
    scheduler: Option<std::thread::JoinHandle<()>>,
}

impl Engine {
    /// Start an engine serving queries over `graph`.
    pub fn new(graph: Arc<CsrGraph>, cfg: EngineConfig) -> Self {
        assert!(cfg.threads >= 1, "engine needs at least one worker");
        assert!(cfg.capacity >= 1, "capacity 0 would shed everything");
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                queue: VecDeque::new(),
                in_flight: 0,
                shutdown: false,
                next_id: 0,
            }),
            work: Condvar::new(),
        });
        let tele = EngineTelemetry::new(&cfg.clock, cfg.metrics_window, cfg.span_capacity);
        let scheduler = {
            let shared = Arc::clone(&shared);
            let graph = Arc::clone(&graph);
            let cfg = cfg.clone();
            let tele = Arc::clone(&tele);
            std::thread::Builder::new()
                .name("obfs-engine-sched".into())
                .spawn(move || scheduler_loop(&shared, &graph, &cfg, &tele))
                .expect("failed to spawn engine scheduler")
        };
        Self { shared, cfg, graph, tele, scheduler: Some(scheduler) }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The graph every query traverses.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Submit a query. Sheds with [`SubmitError::Overloaded`] when
    /// [`EngineConfig::capacity`] queries are already in flight — the
    /// queue never grows beyond capacity.
    pub fn submit(&self, query: Query) -> Result<QueryHandle, SubmitError> {
        let mut st = self.shared.lock();
        if st.shutdown {
            return Err(SubmitError::ShuttingDown);
        }
        let id = st.next_id;
        st.next_id += 1;
        if st.in_flight >= self.cfg.capacity {
            self.tele.shed.inc();
            self.tele.span(id, stage::SHED, st.in_flight as u64);
            return Err(SubmitError::Overloaded);
        }
        let deadline = query.deadline.or(self.cfg.default_deadline);
        let deadline_abs = deadline.map(|d| self.cfg.clock.deadline_after(d));
        let token = match deadline_abs {
            Some(at) => CancelToken::with_deadline_at(&self.cfg.clock, at),
            None => CancelToken::new(&self.cfg.clock),
        };
        let (tx, rx) = mpsc::channel();
        let src = query.src;
        st.queue.push_back(Job {
            id,
            query,
            token: token.clone(),
            deadline_abs,
            tx,
            submitted_ns: self.cfg.clock.now_ns(),
        });
        st.in_flight += 1;
        self.tele.submitted.inc();
        self.tele.queue_depth.set(st.queue.len() as i64);
        self.tele.in_flight.set(st.in_flight as i64);
        self.tele.span(id, stage::SUBMITTED, u64::from(src));
        drop(st);
        self.shared.work.notify_one();
        Ok(QueryHandle { id, token, rx })
    }

    /// Snapshot of the lifetime counters (a read-through view of the
    /// telemetry registry — the same numbers a `/metrics` scrape sees).
    pub fn stats(&self) -> EngineStats {
        self.tele.stats()
    }

    /// The engine's live telemetry: registry, span log, run gauges.
    /// Clone the `Arc` to keep scraping after the engine drops.
    pub fn telemetry(&self) -> &Arc<EngineTelemetry> {
        &self.tele
    }

    /// Queued + running queries right now.
    pub fn in_flight(&self) -> usize {
        self.shared.lock().in_flight
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(h) = self.scheduler.take() {
            let _ = h.join();
        }
    }
}

/// Pop the earliest-deadline job (ties and no-deadline jobs by id, so
/// FIFO among equals). The queue is capacity-bounded, so a linear scan
/// is fine.
fn pop_edf(queue: &mut VecDeque<Job>) -> Option<Job> {
    let best = queue
        .iter()
        .enumerate()
        .min_by_key(|(_, j)| (j.deadline_abs.unwrap_or(u64::MAX), j.id))
        .map(|(i, _)| i)?;
    queue.remove(best)
}

/// True when a query may join a batched run: deadline-free (a batch has
/// no shared deadline to honor) and chaos-free (fault plans stay
/// attributable to one query).
fn coalescible(job: &Job) -> bool {
    job.deadline_abs.is_none() && job.query.chaos.is_none()
}

/// Extract every queued job compatible with `leader` (same algorithm,
/// same parent recording, itself coalescible), up to `extra` of them.
fn extract_members(queue: &mut VecDeque<Job>, leader: &Job, extra: usize) -> Vec<Job> {
    let mut members = Vec::new();
    let mut i = 0;
    while i < queue.len() && members.len() < extra {
        let j = &queue[i];
        if coalescible(j)
            && j.query.algo == leader.query.algo
            && j.query.record_parents == leader.query.record_parents
        {
            members.push(queue.remove(i).expect("index in bounds"));
        } else {
            i += 1;
        }
    }
    members
}

/// Book-keep and send one query's terminal response. Counters and the
/// terminal span are recorded BEFORE responding: a caller returning
/// from `wait()` must observe its own query in the stats, and the
/// channel's send/recv pair is the happens-before edge that makes the
/// relaxed counter increments visible to it.
#[allow(clippy::too_many_arguments)]
fn respond(
    shared: &Shared,
    cfg: &EngineConfig,
    tele: &EngineTelemetry,
    job: Job,
    status: QueryStatus,
    result: Option<BfsResult>,
    retries: u32,
    wait_ns: u64,
) {
    let total_ns = cfg.clock.now_ns().saturating_sub(job.submitted_ns);
    let response =
        QueryResponse { id: job.id, status: status.clone(), result, retries, wait_ns, total_ns };
    {
        let mut st = shared.lock();
        st.in_flight -= 1;
        tele.in_flight.set(st.in_flight as i64);
    }
    tele.retries.add(u64::from(retries));
    tele.wait_us.record(wait_ns / 1_000);
    tele.total_us.record(total_ns / 1_000);
    let (counter, terminal) = match status {
        QueryStatus::Complete => (&tele.completed, stage::COMPLETE),
        QueryStatus::Degraded => (&tele.degraded, stage::DEGRADED),
        QueryStatus::Cancelled => (&tele.cancelled, stage::CANCELLED),
        QueryStatus::DeadlineExceeded => (&tele.deadline_exceeded, stage::DEADLINE_EXCEEDED),
        QueryStatus::Failed(_) => (&tele.failed, stage::FAILED),
    };
    counter.inc();
    tele.span(job.id, terminal, u64::from(retries));
    let _ = job.tx.send(response);
}

fn pop_status(cause: obfs_sync::CancelCause) -> QueryStatus {
    match cause {
        obfs_sync::CancelCause::Cancelled => QueryStatus::Cancelled,
        obfs_sync::CancelCause::DeadlineExceeded => QueryStatus::DeadlineExceeded,
    }
}

/// Fold any pool rebuilds since the last sync into the registry
/// counter. Called BEFORE the affected responses go out so a waiter
/// reading `stats()` after `wait()` sees the rebuilds its query caused.
fn sync_rebuilds(tele: &EngineTelemetry, seen: &mut u64, now: u64) {
    tele.pool_rebuilds.add(now.saturating_sub(*seen));
    *seen = now;
}

fn scheduler_loop(shared: &Shared, graph: &CsrGraph, cfg: &EngineConfig, tele: &EngineTelemetry) {
    // In trace builds the scheduler carries its own flight ring so the
    // SPAN mirrors interleave with worker traces; it is parked in the
    // telemetry object at shutdown. No-op (None at exit) otherwise.
    flight::install(4096, std::time::Instant::now());
    let mut pm = PoolManager::new(cfg.threads);
    let mut rng = Xoshiro256StarStar::new(cfg.seed);
    let mut seen_rebuilds = 0u64;
    let max_batch = cfg.max_batch.clamp(1, obfs_core::MAX_BATCH);
    loop {
        let job = {
            let mut st = shared.lock();
            loop {
                if let Some(job) = pop_edf(&mut st.queue) {
                    tele.queue_depth.set(st.queue.len() as i64);
                    break job;
                }
                if st.shutdown {
                    *tele.sched_trace.lock().unwrap_or_else(PoisonError::into_inner) =
                        flight::uninstall();
                    return;
                }
                st = shared.work.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let wait_ns = cfg.clock.now_ns().saturating_sub(job.submitted_ns);
        tele.span(job.id, stage::POPPED, shared.lock().queue.len() as u64);
        if let Some(cause) = job.token.check() {
            // Resolved at pop time: the query never runs (a cancelled or
            // expired queue slot costs no pool time at all).
            respond(shared, cfg, tele, job, pop_status(cause), None, 0, wait_ns);
            continue;
        }
        // Coalesce: a deadline-free leader adopts every compatible
        // queued query into one batched traversal.
        let members = if max_batch > 1 && coalescible(&job) {
            let mut st = shared.lock();
            let members = extract_members(&mut st.queue, &job, max_batch - 1);
            tele.queue_depth.set(st.queue.len() as i64);
            members
        } else {
            Vec::new()
        };
        let mut live = Vec::new();
        for m in members {
            let w = cfg.clock.now_ns().saturating_sub(m.submitted_ns);
            tele.span(m.id, stage::COALESCED, job.id);
            match m.token.check() {
                // Same pop-time resolution as a solo pop.
                Some(cause) => respond(shared, cfg, tele, m, pop_status(cause), None, 0, w),
                None => live.push((m, w)),
            }
        }
        if live.is_empty() {
            tele.span(job.id, stage::RUN_START, 1);
            tele.running.set(1);
            let (status, result, retries) = run_with_retry(&job, graph, cfg, &mut pm, &mut rng, tele);
            tele.running.set(0);
            sync_rebuilds(tele, &mut seen_rebuilds, pm.rebuilds());
            respond(shared, cfg, tele, job, status, result, retries, wait_ns);
        } else {
            run_batch_coalesced(
                shared,
                graph,
                cfg,
                &mut pm,
                &mut rng,
                tele,
                &mut seen_rebuilds,
                job,
                live,
                wait_ns,
            );
        }
    }
}

/// Run the leader plus its adopted members as one batched traversal and
/// fan the per-query results back out. A coalesced run carries no cancel
/// token (members are deadline-free by construction; a cancel arriving
/// mid-run missed its pop window and is honored only if the pool fails
/// and the retry loop re-checks). Pool failures retry the whole batch.
#[allow(clippy::too_many_arguments)]
fn run_batch_coalesced(
    shared: &Shared,
    graph: &CsrGraph,
    cfg: &EngineConfig,
    pm: &mut PoolManager,
    rng: &mut Xoshiro256StarStar,
    tele: &EngineTelemetry,
    seen_rebuilds: &mut u64,
    leader: Job,
    members: Vec<(Job, u64)>,
    leader_wait_ns: u64,
) {
    let opts = BfsOptions {
        threads: cfg.threads,
        record_parents: leader.query.record_parents,
        clock: cfg.clock.clone(),
        telemetry: Some(Arc::clone(&tele.run)),
        ..Default::default()
    };
    // Duplicate sources share one kernel column: hot-key workloads
    // (many queries for a few popular sources) collapse to one traversal
    // slot per *distinct* source, while the batch still answers every
    // adopted query. `col[i]` maps query `i` to its column in `distinct`.
    let k = 1 + members.len();
    let mut distinct: Vec<VertexId> = Vec::with_capacity(k);
    let col: Vec<usize> = std::iter::once(leader.query.src)
        .chain(members.iter().map(|(m, _)| m.query.src))
        .map(|s| {
            distinct.iter().position(|&d| d == s).unwrap_or_else(|| {
                distinct.push(s);
                distinct.len() - 1
            })
        })
        .collect();
    tele.span(leader.id, stage::RUN_START, k as u64);
    for (m, _) in &members {
        tele.span(m.id, stage::RUN_START, k as u64);
    }
    tele.running.set(k as i64);
    let mut attempt = 0u32;
    let run = loop {
        match obfs_core::driver::try_run_batch_on_pool(
            leader.query.algo,
            graph,
            &distinct,
            &opts,
            pm.pool(),
        ) {
            Ok(b) => break Ok(b),
            Err(_) if attempt < cfg.max_retries => {
                attempt += 1;
                tele.span(leader.id, stage::RETRY, u64::from(attempt));
                std::thread::sleep(cfg.backoff_base.saturating_mul(1 << (attempt - 1).min(16)));
                let _ = rng.next_f64(); // keep the jitter stream aligned
            }
            Err(e) => break Err(e),
        }
    };
    tele.running.set(0);
    sync_rebuilds(tele, seen_rebuilds, pm.rebuilds());
    tele.batched_runs.inc();
    tele.queries_coalesced.add(k as u64);
    tele.batch_occupancy.record(k as u64);
    let jobs = std::iter::once((leader, leader_wait_ns)).chain(members);
    match run {
        Ok(b) => {
            let status = match b.stats.outcome {
                Outcome::Degraded => QueryStatus::Degraded,
                _ => QueryStatus::Complete,
            };
            // Fan the per-column results back out: the last query on a
            // column moves the label arrays, earlier duplicates clone.
            let mut remaining = vec![0usize; distinct.len()];
            for &c in &col {
                remaining[c] += 1;
            }
            let mut columns: Vec<Option<_>> = b.queries.into_iter().map(Some).collect();
            for ((j, w), c) in jobs.zip(col) {
                remaining[c] -= 1;
                let q = if remaining[c] == 0 {
                    columns[c].take().expect("column responded early")
                } else {
                    columns[c].clone().expect("column responded early")
                };
                let result = Some(q.into_bfs_result(&b.stats));
                respond(shared, cfg, tele, j, status.clone(), result, attempt, w);
            }
        }
        Err(e) => {
            let msg = e.to_string();
            for (j, w) in jobs {
                respond(shared, cfg, tele, j, QueryStatus::Failed(msg.clone()), None, attempt, w);
            }
        }
    }
}

/// Run one admitted query, retrying pool failures (and optionally
/// degraded runs) with seeded-jitter exponential backoff. Returns the
/// terminal status, the result if any, and the retry count.
fn run_with_retry(
    job: &Job,
    graph: &CsrGraph,
    cfg: &EngineConfig,
    pm: &mut PoolManager,
    rng: &mut Xoshiro256StarStar,
    tele: &EngineTelemetry,
) -> (QueryStatus, Option<BfsResult>, u32) {
    let opts = BfsOptions {
        threads: cfg.threads,
        record_parents: job.query.record_parents,
        chaos: job.query.chaos,
        clock: cfg.clock.clone(),
        cancel: Some(job.token.clone()),
        telemetry: Some(Arc::clone(&tele.run)),
        ..Default::default()
    };
    let mut attempt = 0u32;
    loop {
        let run = obfs_core::driver::try_run_on_pool(
            job.query.algo,
            graph,
            job.query.src,
            &opts,
            pm.pool(),
        );
        match run {
            Ok(r) => match r.stats.outcome {
                Outcome::Cancelled => return (QueryStatus::Cancelled, Some(r), attempt),
                Outcome::DeadlineExceeded => {
                    return (QueryStatus::DeadlineExceeded, Some(r), attempt)
                }
                Outcome::Degraded if cfg.retry_degraded && attempt < cfg.max_retries => {
                    attempt += 1;
                    tele.span(job.id, stage::RETRY, u64::from(attempt));
                    if let Some(s) = backoff(job, cfg, rng, attempt) {
                        return s;
                    }
                }
                Outcome::Degraded => return (QueryStatus::Degraded, Some(r), attempt),
                Outcome::Complete => return (QueryStatus::Complete, Some(r), attempt),
            },
            Err(e) if attempt < cfg.max_retries => {
                attempt += 1;
                let _ = e;
                tele.span(job.id, stage::RETRY, u64::from(attempt));
                if let Some(s) = backoff(job, cfg, rng, attempt) {
                    return s;
                }
            }
            Err(e) => return (QueryStatus::Failed(e.to_string()), None, attempt),
        }
    }
}

/// Sleep `backoff_base * 2^(attempt-1)` plus up to 50% seeded jitter, in
/// small chunks so a cancel/deadline interrupts the wait. Returns the
/// terminal status if the token fired during the wait.
fn backoff(
    job: &Job,
    cfg: &EngineConfig,
    rng: &mut Xoshiro256StarStar,
    attempt: u32,
) -> Option<(QueryStatus, Option<BfsResult>, u32)> {
    let base = cfg.backoff_base.saturating_mul(1 << (attempt - 1).min(16));
    let jitter = base.mul_f64(rng.next_f64() * 0.5);
    let mut left = base + jitter;
    let chunk = Duration::from_micros(200);
    while !left.is_zero() {
        if let Some(cause) = job.token.check() {
            let status = match cause {
                obfs_sync::CancelCause::Cancelled => QueryStatus::Cancelled,
                obfs_sync::CancelCause::DeadlineExceeded => QueryStatus::DeadlineExceeded,
            };
            // The last completed attempt's state was consumed by the
            // retry decision; respond without a result.
            return Some((status, None, attempt));
        }
        let step = chunk.min(left);
        std::thread::sleep(step);
        left -= step;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::gen;

    fn engine(cfg: EngineConfig) -> Engine {
        Engine::new(Arc::new(gen::erdos_renyi(500, 3000, 5)), cfg)
    }

    #[test]
    fn query_runs_to_completion() {
        let e = engine(EngineConfig { threads: 2, ..Default::default() });
        let h = e.submit(Query::new(Algorithm::Bfscl, 0)).unwrap();
        let resp = h.wait();
        assert_eq!(resp.status, QueryStatus::Complete);
        let r = resp.result.expect("complete query carries a result");
        assert!(!r.stats.partial);
        assert!(r.reached() > 1);
        let st = e.stats();
        assert_eq!((st.submitted, st.completed, st.shed), (1, 1, 0));
    }

    #[test]
    fn sequential_queries_reuse_the_engine() {
        let e = engine(EngineConfig { threads: 3, ..Default::default() });
        let mut reached = None;
        for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
            let resp = e.submit(Query::new(algo, 0)).unwrap().wait();
            assert_eq!(resp.status, QueryStatus::Complete, "{algo}");
            let got = resp.result.unwrap().reached();
            assert_eq!(*reached.get_or_insert(got), got, "{algo}: reach must agree");
        }
        assert_eq!(e.stats().completed, 4);
        assert_eq!(e.stats().pool_rebuilds, 0);
    }

    #[test]
    fn overload_is_shed_never_queued() {
        // A capacity-1 engine whose only slot is held by a query that
        // waits on a token we control: the next submit must be shed
        // immediately (not queued), and the slot frees after cancel.
        let (clock, _hand) = Clock::manual();
        let e = Engine::new(
            Arc::new(gen::path(50_000)), // long thin graph: many levels
            EngineConfig { threads: 2, capacity: 1, clock, ..Default::default() },
        );
        let h1 = e.submit(Query::new(Algorithm::Bfscl, 0)).unwrap();
        // Whether or not q1 finished yet, capacity 1 means: as long as
        // it is in flight, a second submit is shed. Race-free check:
        // submit until either shed (expected while running) or accepted
        // (q1 already done — then stats.shed may be 0; force the
        // invariant instead on a fresh engine below).
        match e.submit(Query::new(Algorithm::Bfscl, 0)) {
            Err(SubmitError::Overloaded) => {
                assert_eq!(e.stats().shed, 1);
            }
            Ok(h2) => {
                // q1 resolved before our second submit; fine — the gate
                // still never exceeded capacity.
                let _ = h2.wait();
            }
            Err(other) => panic!("unexpected: {other}"),
        }
        let _ = h1.wait();
        assert!(e.in_flight() <= 1);
    }

    #[test]
    fn cancelled_queued_query_resolves_without_running() {
        let e = engine(EngineConfig { threads: 2, ..Default::default() });
        let h = e.submit(Query::new(Algorithm::Bfscl, 0)).unwrap();
        h.cancel();
        let resp = h.wait();
        // Either the scheduler popped it before our cancel (Complete)
        // or after (Cancelled, no result). Both are valid; what matters
        // is that a pre-cancelled *pop* never runs.
        match resp.status {
            QueryStatus::Cancelled => assert!(resp.result.is_none() || resp.result.is_some()),
            QueryStatus::Complete => {}
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn expired_deadline_on_manual_clock_is_deterministic() {
        let (clock, hand) = Clock::manual();
        hand.set_ns(1_000_000);
        let e = engine(EngineConfig { threads: 2, clock, ..Default::default() });
        // Deadline of zero: already expired at submit time on the
        // frozen clock, so the pop-time check resolves it unrun.
        let h = e
            .submit(Query::new(Algorithm::Bfscl, 0).with_deadline(Duration::ZERO))
            .unwrap();
        let resp = h.wait();
        assert_eq!(resp.status, QueryStatus::DeadlineExceeded);
        assert!(resp.result.is_none(), "expired before running: no result");
        assert_eq!(e.stats().deadline_exceeded, 1);
    }

    #[test]
    fn shutdown_rejects_new_queries() {
        let e = engine(EngineConfig::default());
        let resp = e.submit(Query::new(Algorithm::Bfswl, 3)).unwrap().wait();
        assert_eq!(resp.status, QueryStatus::Complete);
        drop(e); // must join the scheduler without hanging
    }

    #[test]
    fn edf_pops_earliest_deadline_first() {
        let mk = |id, dl: Option<u64>| Job {
            id,
            query: Query::new(Algorithm::Bfscl, 0),
            token: CancelToken::new(&Clock::wall()),
            deadline_abs: dl,
            tx: mpsc::channel().0,
            submitted_ns: 0,
        };
        let mut q = VecDeque::from([mk(0, None), mk(1, Some(500)), mk(2, Some(100))]);
        assert_eq!(pop_edf(&mut q).unwrap().id, 2);
        assert_eq!(pop_edf(&mut q).unwrap().id, 1);
        assert_eq!(pop_edf(&mut q).unwrap().id, 0, "no deadline sorts last");
        assert!(pop_edf(&mut q).is_none());
    }

    /// Compatible queries that pile up behind a running query must be
    /// coalesced into batched traversals, each answer must still be the
    /// exact per-source BFS, and the coalescing counters must surface
    /// it. (A burst of `n` submits behind a busy scheduler can drain in
    /// at most a handful of pops once batching works; per-round retries
    /// absorb the scheduling race.)
    #[test]
    fn compatible_queued_queries_coalesce_into_batched_runs() {
        let g = Arc::new(gen::erdos_renyi(20_000, 120_000, 77));
        let serial0 = obfs_core::serial::serial_bfs(&g, 0).reached();
        let e = Engine::new(
            Arc::clone(&g),
            EngineConfig { threads: 2, capacity: 128, ..Default::default() },
        );
        for round in 0..5 {
            // Query 0 is popped alone; the rest queue while it runs and
            // must ride batched runs.
            let handles: Vec<QueryHandle> = (0..48u32)
                .map(|i| e.submit(Query::new(Algorithm::Bfscl, i % 100)).unwrap())
                .collect();
            for (i, h) in handles.into_iter().enumerate() {
                let resp = h.wait();
                assert_eq!(resp.status, QueryStatus::Complete, "query {i}");
                let r = resp.result.expect("complete query carries a result");
                assert!(!r.stats.partial, "query {i}");
                if i == 0 {
                    assert_eq!(r.reached(), serial0, "query 0 reach differs from serial");
                }
            }
            let st = e.stats();
            if st.batched_runs >= 1 {
                assert!(
                    st.queries_coalesced >= 2,
                    "a batched run must answer at least two queries"
                );
                assert_eq!(st.completed, 48 * (round + 1), "all queries still complete");
                return;
            }
        }
        panic!("48-query bursts never coalesced in 5 rounds");
    }

    /// Deadlined and chaos-carrying queries never join a batch: the
    /// compatibility predicate excludes them.
    #[test]
    fn deadlined_queries_do_not_coalesce() {
        let mk = |id, deadline_abs, chaos| Job {
            id,
            query: Query { chaos, ..Query::new(Algorithm::Bfscl, 0) },
            token: CancelToken::new(&Clock::wall()),
            deadline_abs,
            tx: mpsc::channel().0,
            submitted_ns: 0,
        };
        let leader = mk(0, None, None);
        let mut q = VecDeque::from([
            mk(1, Some(500), None),                         // deadlined: solo
            mk(2, None, None),                              // compatible
            mk(3, None, Some(ChaosConfig::store_buffer(1))), // chaos: solo
            mk(4, None, None),                              // compatible
        ]);
        let members = extract_members(&mut q, &leader, 63);
        assert_eq!(members.iter().map(|j| j.id).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(q.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 3]);
        assert!(!coalescible(&mk(5, Some(1), None)));
        assert!(coalescible(&mk(6, None, None)));
    }

    /// Worker panic mid-query: the query retries on a rebuilt pool and
    /// succeeds; `pool_rebuilds` surfaces the replacement. (The panic
    /// plan only fires with the `chaos` feature, so gate the test.)
    #[cfg(feature = "chaos")]
    #[test]
    fn worker_panic_retries_on_rebuilt_pool() {
        let e = engine(EngineConfig { threads: 3, max_retries: 2, ..Default::default() });
        let mut q = Query::new(Algorithm::Bfscl, 0);
        q.chaos = Some(ChaosConfig::panic_at(11, 40));
        let resp = e.submit(q).unwrap().wait();
        // The chaos plan is reinstalled on every attempt, so every
        // retry panics again: the query exhausts its budget and fails —
        // but each attempt consumed (and rebuilt) one pool.
        assert!(matches!(resp.status, QueryStatus::Failed(ref m) if m.contains("panic")));
        assert_eq!(resp.retries, 2);
        let st = e.stats();
        assert_eq!(st.failed, 1);
        assert_eq!(st.retries, 2);
        assert!(st.pool_rebuilds >= 2, "each panicked attempt poisons a pool");
        // And the engine still serves clean queries afterwards.
        let ok = e.submit(Query::new(Algorithm::Bfscl, 0)).unwrap().wait();
        assert_eq!(ok.status, QueryStatus::Complete);
    }
}
