//! Per-query lifecycle spans for the serve engine.
//!
//! Every query the engine touches walks a small state machine:
//!
//! ```text
//!   SUBMITTED ──► POPPED ────────────► RUN_START ─► RETRY* ─► terminal
//!       │             │  (solo/leader)     ▲
//!       │             └────────────► terminal (resolved at pop time)
//!       │
//!       ├───────► COALESCED(leader) ─► RUN_START ──────────► terminal
//!       │             │  (batch member)
//!       │             └────────────► terminal (resolved at pop time)
//!       │
//!   SHED (terminal: rejected at the admission gate)
//! ```
//!
//! where *terminal* is one of `COMPLETE`, `DEGRADED`, `CANCELLED`,
//! `DEADLINE_EXCEEDED`, `FAILED`. The engine records each transition in
//! an always-on bounded [`SpanLog`] (authoritative, feature-free) and
//! mirrors it as a `SPAN` flight event (`obfs_sync::flight::kind::SPAN`)
//! so query timelines interleave with worker traces in `trace` builds —
//! a coalesced query's `COALESCED` span names its batch leader, whose
//! own timeline carries the shared `RUN_START`.
//!
//! [`validate`] replays a span stream against the state machine and is
//! what the acceptance test uses to prove the engine emitted a complete,
//! legal lifecycle for *every* query, batched or not.

use obfs_sync::Clock;
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Span stage codes (the `a`-independent payload of a `SPAN` flight
/// event's low byte; see [`encode_flight`]).
pub mod stage {
    /// Admitted past the capacity gate (`info` = source vertex).
    pub const SUBMITTED: u64 = 1;
    /// Rejected at the admission gate; terminal (`info` = jobs in
    /// flight at the time).
    pub const SHED: u64 = 2;
    /// Dequeued by the scheduler in EDF order (`info` = queue depth
    /// left behind).
    pub const POPPED: u64 = 3;
    /// Extracted from the queue into another query's batch (`info` =
    /// leader query id).
    pub const COALESCED: u64 = 4;
    /// Handed to the pool (`info` = batch size, 1 for a solo run).
    pub const RUN_START: u64 = 5;
    /// The run failed transiently and is being retried (`info` = next
    /// attempt number, recorded on the solo query or the batch leader).
    pub const RETRY: u64 = 6;
    /// Terminal: completed exactly.
    pub const COMPLETE: u64 = 7;
    /// Terminal: completed under watchdog degradation (`info` = retries).
    pub const DEGRADED: u64 = 8;
    /// Terminal: cancelled by its token (`info` = retries).
    pub const CANCELLED: u64 = 9;
    /// Terminal: deadline passed (`info` = retries).
    pub const DEADLINE_EXCEEDED: u64 = 10;
    /// Terminal: retries exhausted or worker panic (`info` = retries).
    pub const FAILED: u64 = 11;

    /// Human-readable stage name.
    pub fn name(s: u64) -> &'static str {
        match s {
            SUBMITTED => "submitted",
            SHED => "shed",
            POPPED => "popped",
            COALESCED => "coalesced",
            RUN_START => "run-start",
            RETRY => "retry",
            COMPLETE => "complete",
            DEGRADED => "degraded",
            CANCELLED => "cancelled",
            DEADLINE_EXCEEDED => "deadline-exceeded",
            FAILED => "failed",
            _ => "unknown",
        }
    }

    /// Whether `s` ends a lifecycle.
    pub fn is_terminal(s: u64) -> bool {
        matches!(s, SHED | COMPLETE | DEGRADED | CANCELLED | DEADLINE_EXCEEDED | FAILED)
    }
}

/// Pack a span transition into the `b` payload of a `SPAN` flight event
/// (`a` carries the query id): stage code in the low byte, stage `info`
/// in the high 56 bits (truncating — the mirror is for correlation, the
/// [`SpanLog`] is the exact record).
pub fn encode_flight(stage: u64, info: u64) -> u64 {
    stage | (info << 8)
}

/// Invert [`encode_flight`] into `(stage, info)`.
pub fn decode_flight(b: u64) -> (u64, u64) {
    (b & 0xff, b >> 8)
}

/// One recorded transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Engine-clock timestamp.
    pub ts_ns: u64,
    /// Query id.
    pub id: u64,
    /// Stage code ([`stage`]).
    pub stage: u64,
    /// Stage-specific payload.
    pub info: u64,
}

/// A drained or copied span log: events oldest-first plus the count of
/// events the bounded ring overwrote.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanDump {
    /// Events, oldest first.
    pub events: Vec<SpanEvent>,
    /// Events overwritten because the ring was full.
    pub dropped: u64,
}

struct SpanBuf {
    buf: Vec<SpanEvent>,
    head: usize,
    wrapped: bool,
    dropped: u64,
}

/// A bounded, shared, always-on span ring. Unlike the flight recorder
/// this is written from two threads (the submitting client and the
/// scheduler), so it takes a `Mutex` — transitions happen at query
/// granularity, far off any per-edge hot path, and the lock is never
/// held across a clock read or an allocation beyond the ring itself.
pub struct SpanLog {
    clock: Clock,
    capacity: usize,
    inner: Mutex<SpanBuf>,
}

impl SpanLog {
    /// A ring with room for `capacity` transitions (clamped to >= 1).
    pub fn new(clock: Clock, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanLog {
            clock,
            capacity,
            inner: Mutex::new(SpanBuf {
                buf: Vec::new(),
                head: 0,
                wrapped: false,
                dropped: 0,
            }),
        }
    }

    /// Record a transition for query `id`.
    pub fn record(&self, id: u64, stage: u64, info: u64) {
        let ts_ns = self.clock.now_ns();
        let ev = SpanEvent { ts_ns, id, stage, info };
        let mut b = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if b.buf.len() < self.capacity {
            b.buf.push(ev);
        } else {
            let head = b.head;
            b.buf[head] = ev;
            b.head = (head + 1) % self.capacity;
            b.wrapped = true;
            b.dropped += 1;
        }
    }

    /// A copy of the current contents, oldest first (non-draining, so a
    /// mid-run scrape never disturbs the record).
    pub fn snapshot(&self) -> SpanDump {
        let b = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut events = Vec::with_capacity(b.buf.len());
        if b.wrapped {
            events.extend_from_slice(&b.buf[b.head..]);
            events.extend_from_slice(&b.buf[..b.head]);
        } else {
            events.extend_from_slice(&b.buf);
        }
        SpanDump { events, dropped: b.dropped }
    }
}

impl std::fmt::Debug for SpanLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        f.debug_struct("SpanLog")
            .field("events", &b.buf.len())
            .field("dropped", &b.dropped)
            .finish()
    }
}

/// A validated per-query lifecycle.
#[derive(Debug, Clone)]
pub struct Lifecycle {
    /// This query's transitions, in order.
    pub events: Vec<SpanEvent>,
    /// The terminal stage code.
    pub terminal: u64,
    /// `Some(leader)` when the query ran as a member of `leader`'s
    /// coalesced batch.
    pub coalesced_into: Option<u64>,
    /// The `info` of the `RUN_START` transition (batch size), if the
    /// query reached the pool.
    pub batch_size: Option<u64>,
}

/// Group a span stream by query id (order-preserving within an id).
pub fn lifecycles(events: &[SpanEvent]) -> BTreeMap<u64, Vec<SpanEvent>> {
    let mut map: BTreeMap<u64, Vec<SpanEvent>> = BTreeMap::new();
    for &e in events {
        map.entry(e.id).or_default().push(e);
    }
    map
}

/// Replay a span stream against the lifecycle state machine. Every
/// query id must walk a legal path ending in exactly one terminal
/// stage, timestamps must be non-decreasing within an id, and every
/// `COALESCED` transition must name a leader id that exists and reached
/// the pool. Returns the validated lifecycles keyed by id.
pub fn validate(events: &[SpanEvent]) -> Result<BTreeMap<u64, Lifecycle>, String> {
    let grouped = lifecycles(events);
    let mut out = BTreeMap::new();
    for (&id, evs) in &grouped {
        out.insert(id, validate_one(id, evs)?);
    }
    // Cross-query check: members point at real leaders that ran.
    let keys: Vec<u64> = out.keys().copied().collect();
    for id in keys {
        let Some(leader) = out[&id].coalesced_into else { continue };
        let lc = out
            .get(&leader)
            .ok_or_else(|| format!("query {id}: coalesced into unknown leader {leader}"))?;
        if lc.coalesced_into.is_some() {
            return Err(format!("query {id}: leader {leader} is itself a batch member"));
        }
        if lc.batch_size.is_none() {
            return Err(format!("query {id}: leader {leader} never reached RUN_START"));
        }
    }
    Ok(out)
}

fn validate_one(id: u64, evs: &[SpanEvent]) -> Result<Lifecycle, String> {
    #[derive(PartialEq)]
    enum S {
        Start,
        Admitted,
        Dispatched,
        Running,
        Done,
    }
    let mut s = S::Start;
    let mut coalesced_into = None;
    let mut batch_size = None;
    let mut terminal = 0;
    let mut last_ts = 0u64;
    for e in evs {
        if e.ts_ns < last_ts {
            return Err(format!("query {id}: timestamps regress at {}", stage::name(e.stage)));
        }
        last_ts = e.ts_ns;
        s = match (s, e.stage) {
            (S::Start, stage::SUBMITTED) => S::Admitted,
            (S::Start, stage::SHED) => {
                terminal = stage::SHED;
                S::Done
            }
            (S::Admitted, stage::POPPED) => S::Dispatched,
            (S::Admitted, stage::COALESCED) => {
                coalesced_into = Some(e.info);
                S::Dispatched
            }
            (S::Dispatched, stage::RUN_START) => {
                batch_size = Some(e.info);
                S::Running
            }
            // Resolved at pop time without touching the pool: only the
            // token-driven terminals are legal here.
            (S::Dispatched, t @ (stage::CANCELLED | stage::DEADLINE_EXCEEDED)) => {
                terminal = t;
                S::Done
            }
            (S::Running, stage::RETRY) => S::Running,
            (S::Running, t) if stage::is_terminal(t) && t != stage::SHED => {
                terminal = t;
                S::Done
            }
            (_, st) => {
                return Err(format!(
                    "query {id}: illegal transition to {} in {:?}",
                    stage::name(st),
                    evs.iter().map(|e| stage::name(e.stage)).collect::<Vec<_>>()
                ));
            }
        };
    }
    if s != S::Done {
        return Err(format!(
            "query {id}: lifecycle never reached a terminal stage: {:?}",
            evs.iter().map(|e| stage::name(e.stage)).collect::<Vec<_>>()
        ));
    }
    Ok(Lifecycle { events: evs.to_vec(), terminal, coalesced_into, batch_size })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(id: u64, st: u64, info: u64) -> SpanEvent {
        SpanEvent { ts_ns: 0, id, stage: st, info }
    }

    #[test]
    fn flight_payload_roundtrips() {
        for (st, info) in [(stage::SUBMITTED, 0), (stage::COALESCED, 123), (stage::FAILED, 7)] {
            assert_eq!(decode_flight(encode_flight(st, info)), (st, info));
        }
    }

    #[test]
    fn span_log_bounds_and_orders() {
        let (clock, hand) = Clock::manual();
        let log = SpanLog::new(clock, 4);
        for i in 0..6u64 {
            hand.set_ns(i * 10);
            log.record(i, stage::SUBMITTED, 0);
        }
        let d = log.snapshot();
        assert_eq!(d.events.len(), 4);
        assert_eq!(d.dropped, 2);
        let ids: Vec<u64> = d.events.iter().map(|e| e.id).collect();
        assert_eq!(ids, vec![2, 3, 4, 5], "most recent transitions survive, in order");
        // Snapshot is non-draining.
        assert_eq!(log.snapshot().events.len(), 4);
    }

    #[test]
    fn legal_lifecycles_validate() {
        let events = vec![
            // Solo query with one retry.
            ev(1, stage::SUBMITTED, 0),
            ev(1, stage::POPPED, 0),
            ev(1, stage::RUN_START, 1),
            ev(1, stage::RETRY, 1),
            ev(1, stage::COMPLETE, 1),
            // Shed at the gate.
            ev(2, stage::SHED, 4),
            // Batch leader + member.
            ev(3, stage::SUBMITTED, 0),
            ev(4, stage::SUBMITTED, 0),
            ev(3, stage::POPPED, 1),
            ev(4, stage::COALESCED, 3),
            ev(3, stage::RUN_START, 2),
            ev(4, stage::RUN_START, 2),
            ev(3, stage::COMPLETE, 0),
            ev(4, stage::COMPLETE, 0),
            // Resolved at pop time.
            ev(5, stage::SUBMITTED, 0),
            ev(5, stage::POPPED, 0),
            ev(5, stage::DEADLINE_EXCEEDED, 0),
        ];
        let lcs = validate(&events).unwrap();
        assert_eq!(lcs.len(), 5);
        assert_eq!(lcs[&1].terminal, stage::COMPLETE);
        assert_eq!(lcs[&2].terminal, stage::SHED);
        assert_eq!(lcs[&4].coalesced_into, Some(3));
        assert_eq!(lcs[&3].batch_size, Some(2));
        assert_eq!(lcs[&5].terminal, stage::DEADLINE_EXCEEDED);
    }

    #[test]
    fn illegal_lifecycles_are_rejected() {
        // Terminal without RUN_START by a non-token cause.
        let bad = vec![ev(1, stage::SUBMITTED, 0), ev(1, stage::POPPED, 0), ev(1, stage::COMPLETE, 0)];
        assert!(validate(&bad).is_err());
        // Never reaches a terminal.
        let bad = vec![ev(1, stage::SUBMITTED, 0), ev(1, stage::POPPED, 0)];
        assert!(validate(&bad).unwrap_err().contains("never reached"));
        // Member pointing at a leader that never ran.
        let bad = vec![
            ev(1, stage::SUBMITTED, 0),
            ev(1, stage::POPPED, 0),
            ev(1, stage::CANCELLED, 0),
            ev(2, stage::SUBMITTED, 0),
            ev(2, stage::COALESCED, 1),
            ev(2, stage::RUN_START, 2),
            ev(2, stage::COMPLETE, 0),
        ];
        assert!(validate(&bad).unwrap_err().contains("never reached RUN_START"));
        // Member pointing at a nonexistent leader.
        let bad = vec![
            ev(2, stage::SUBMITTED, 0),
            ev(2, stage::COALESCED, 99),
            ev(2, stage::RUN_START, 2),
            ev(2, stage::COMPLETE, 0),
        ];
        assert!(validate(&bad).unwrap_err().contains("unknown leader"));
        // Double terminal.
        let bad = vec![ev(1, stage::SHED, 0), ev(1, stage::SUBMITTED, 0)];
        assert!(validate(&bad).is_err());
    }
}
