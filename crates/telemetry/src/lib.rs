//! Live telemetry for the optimistic BFS engine (DESIGN.md §13).
//!
//! Everything observable so far — the flight recorder, `obfs analyze`,
//! the per-worker latency histograms — speaks only *after* a run ends.
//! This crate adds the always-on counterpart: a [`MetricsRegistry`] of
//! sharded relaxed counters, gauges, and two-window decayed
//! [`LogHistogram`]s that a serve engine or long traversal updates on
//! its hot paths and that an operator can scrape *while* the run is in
//! flight, as Prometheus text exposition or JSON.
//!
//! # Memory-model discipline
//!
//! The registry follows the same rules as `obfs-sync::flight` and the
//! worker histograms (DESIGN.md §8): hot-path updates are relaxed
//! RMWs/stores into cache-padded shards so no two threads contend on a
//! line in the common case, and no update is ever used to *publish*
//! other data — readers (scrapes) only need each counter to be
//! individually atomic and monotone, never a consistent cut across
//! counters. Where a caller does need read-your-writes (an engine
//! client observing its own terminal query in `EngineStats`), the edge
//! is provided by an existing channel send/recv pair, not by the
//! counters themselves.
//!
//! # Zero cost when off
//!
//! Nothing here is process-global: a registry only exists where a
//! caller constructs one, and the driver-side hooks in [`worker`] are a
//! thread-local `Cell` check when no run telemetry is installed — no
//! clock reads, no allocation, no atomics.
//!
//! [`LogHistogram`]: obfs_util::LogHistogram

pub mod registry;
pub mod span;
pub mod worker;

#[cfg(feature = "serve-http")]
pub mod http;

pub use registry::{Counter, Gauge, Histogram, MetricsRegistry, Snapshot};
pub use span::{stage, SpanDump, SpanEvent, SpanLog};
pub use worker::RunTelemetry;

#[cfg(feature = "serve-http")]
pub use http::MetricsServer;

/// Parse a Prometheus text exposition back into `name{labels} -> value`
/// pairs, preserving document order. This is the "curl-equivalent" used
/// by `bombard --metrics-addr` and CI to validate a live scrape without
/// external tooling: `# HELP` / `# TYPE` comment lines are checked for
/// shape and skipped, every sample line must parse as `name value` or
/// `name{labels} value`.
pub fn parse_exposition(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if !(rest.starts_with("HELP ") || rest.starts_with("TYPE ")) {
                return Err(format!("line {}: unknown comment {line:?}", lineno + 1));
            }
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value in {line:?}", lineno + 1))?;
        let v: f64 = value
            .parse()
            .map_err(|_| format!("line {}: bad value {value:?}", lineno + 1))?;
        let bare = name.split('{').next().unwrap_or(name);
        if bare.is_empty()
            || !bare
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {}: bad metric name {name:?}", lineno + 1));
        }
        out.push((name.to_string(), v));
    }
    Ok(out)
}

/// Look up a plain (label-free) sample in [`parse_exposition`] output.
pub fn sample(parsed: &[(String, f64)], name: &str) -> Option<f64> {
    parsed.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parser_roundtrips_samples() {
        let text = "# HELP a_total help text\n# TYPE a_total counter\na_total 3\n\
                    q{quantile=\"0.5\"} 12\nq_sum 99.5\n";
        let parsed = parse_exposition(text).unwrap();
        assert_eq!(sample(&parsed, "a_total"), Some(3.0));
        assert_eq!(sample(&parsed, "q_sum"), Some(99.5));
        assert_eq!(sample(&parsed, "q{quantile=\"0.5\"}"), Some(12.0));
    }

    #[test]
    fn exposition_parser_rejects_garbage() {
        assert!(parse_exposition("no-value-here\n").is_err());
        assert!(parse_exposition("name not_a_number\n").is_err());
        assert!(parse_exposition("# BOGUS comment\n").is_err());
        assert!(parse_exposition("bad name! 3\n").is_err());
    }
}
