//! Minimal std-only `/metrics` HTTP responder (`serve-http` feature).
//!
//! One accept-loop thread on a `TcpListener`, speaking just enough
//! HTTP/1.0 for a scraper: `GET /metrics` returns the Prometheus text
//! exposition, `GET /metrics.json` the JSON snapshot, anything else
//! 404. Every response closes its connection, so there is no keep-alive
//! state to manage and the responder can never hold more than one
//! socket per scrape. This is deliberately not a web server — it is the
//! smallest observable surface that lets `curl`/Prometheus watch a run,
//! and the first stepping stone toward the ROADMAP wire-protocol item.
//!
//! Shutdown uses the standard self-connect trick: `accept` has no
//! portable timeout, so [`MetricsServer::drop`] sets a stop flag and
//! dials its own listener to unblock the loop. The `AtomicBool` lives
//! outside `crates/sync` and is carried by the lint allowlist — it is
//! control-plane-only (one store at shutdown, one load per accept) and
//! publishes nothing.

use crate::registry::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Per-connection I/O timeout: a stuck scraper must not wedge the
/// accept loop.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running `/metrics` responder. Dropping it stops the listener.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9464`, port 0 for an ephemeral
    /// port — read it back with [`addr`](Self::addr)) and start serving
    /// snapshots of `registry`.
    pub fn start(registry: Arc<MetricsRegistry>, addr: &str) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let loop_stop = Arc::clone(&stop);
        let handle = thread::Builder::new().name("obfs-metrics-http".into()).spawn(move || {
            for conn in listener.incoming() {
                if loop_stop.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    let _ = serve_one(&registry, stream);
                }
            }
        })?;
        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock accept(); an error just means the listener died first.
        let _ = TcpStream::connect_timeout(&self.addr, IO_TIMEOUT);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(registry: &MetricsRegistry, mut stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    // Read the request head (we only need the request line; HTTP GET
    // has no body). Bounded so a hostile peer cannot grow the buffer.
    let mut head = Vec::with_capacity(256);
    let mut chunk = [0u8; 256];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") && head.len() < 4096 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
        // A bare request line + one newline is enough to route.
        if head.windows(2).any(|w| w == b"\r\n") && head.starts_with(b"GET ") {
            break;
        }
    }
    let line = String::from_utf8_lossy(&head);
    let path = line.strip_prefix("GET ").and_then(|r| r.split_whitespace().next());
    let (status, ctype, body) = match path {
        Some("/metrics") => ("200 OK", "text/plain; version=0.0.4", registry.render_text()),
        Some("/metrics.json") => ("200 OK", "application/json", registry.to_json().render()),
        _ => ("404 Not Found", "text/plain; version=0.0.4", "not found\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(resp.as_bytes())?;
    stream.flush()
}

/// Curl-equivalent std scraper: `GET path` from `addr`, returning the
/// response body on a 200 and an error otherwise. Used by
/// `bombard --metrics-addr`, CI, and the tests — validating a live
/// endpoint needs no external tooling.
pub fn scrape(addr: impl ToSocketAddrs, path: &str) -> io::Result<String> {
    let addr = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"))?;
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: obfs\r\n\r\n").as_bytes())?;
    let mut resp = String::new();
    stream.read_to_string(&mut resp)?;
    let (headers, body) = resp
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let status_line = headers.lines().next().unwrap_or("");
    if !status_line.contains(" 200 ") {
        return Err(io::Error::other(format!("scrape {path}: {status_line}")));
    }
    Ok(body.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_sync::Clock;

    #[test]
    fn serves_text_and_json_and_404s() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::new(clock);
        reg.counter("t_total", "test").add(3);
        let srv = MetricsServer::start(Arc::clone(&reg), "127.0.0.1:0").unwrap();
        let addr = srv.addr();

        let text = scrape(addr, "/metrics").unwrap();
        let parsed = crate::parse_exposition(&text).unwrap();
        assert_eq!(crate::sample(&parsed, "t_total"), Some(3.0));

        let json = scrape(addr, "/metrics.json").unwrap();
        let j = obfs_util::Json::parse(&json).unwrap();
        let arr = j.get("metrics").and_then(obfs_util::Json::as_arr).unwrap();
        assert_eq!(arr[0].get("value").and_then(obfs_util::Json::as_u64), Some(3));

        assert!(scrape(addr, "/nope").is_err());

        // Scrapes observe live updates.
        reg.counter("t_total", "test").add(2);
        let text = scrape(addr, "/metrics").unwrap();
        let parsed = crate::parse_exposition(&text).unwrap();
        assert_eq!(crate::sample(&parsed, "t_total"), Some(5.0));
        drop(srv); // clean shutdown joins the accept thread
    }
}
