//! The metrics registry: named counters, gauges, and windowed
//! histograms with deterministic snapshot/exposition forms.
//!
//! # Hot-path cost and memory model
//!
//! [`Counter`] is a fixed array of cache-padded `AtomicU64` shards; an
//! update is one relaxed `fetch_add` into the shard assigned to the
//! calling thread, so concurrent writers do not share a cache line in
//! the common case (more threads than shards degrade gracefully to a
//! shared shard — still correct, relaxed RMWs never lose increments).
//! [`Gauge`] is a single relaxed `AtomicI64`: gauges are leader- or
//! scheduler-written, never contended. [`Histogram`] takes a `Mutex`
//! per record — it is meant for *query*-granularity events (admission
//! latencies, batch occupancy), never per-edge work; the per-edge path
//! stays on the thread-owned `obfs-sync::metrics` histograms and only
//! flushes aggregates here at level granularity (see [`crate::worker`]).
//!
//! Readers (scrapes) see each counter atomically but no consistent cut
//! across counters: a snapshot taken mid-update can observe, say, a
//! terminal-status increment before the matching gauge decrement.
//! Conservation invariants therefore hold at quiescence (all responses
//! delivered), which is exactly when the bench validator checks them;
//! live scrapes only rely on per-counter monotonicity.
//!
//! # Two-window decay
//!
//! Each histogram keeps three `LogHistogram`s: `live` (the current
//! window), `prev` (the window before it), and `total` (never reset).
//! Every record/read first rotates: once the window length `W` elapses,
//! `live` moves to `prev` and restarts; after two idle windows both are
//! cleared. The *windowed* view is `prev + live`, so a live p99 always
//! reflects between `W` and `2W` seconds of history — stale samples age
//! out without ever zeroing the visible view at a rotation edge.
//! `total` backs Prometheus `_sum`/`_count` (cumulative, as the format
//! expects) and whole-run percentiles.

use obfs_sync::{CachePadded, Clock};
use obfs_util::{Json, LogHistogram};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Duration;

/// Counter shard count. 16 padded shards cover every pool size the
/// drivers use; beyond that threads share shards (correct, just closer).
const SHARDS: usize = 16;

/// Default histogram decay window.
pub const DEFAULT_WINDOW: Duration = Duration::from_secs(10);

/// The shard a thread's counter increments land in: assigned round-robin
/// on first use, then cached in a thread-local `Cell` (no atomics on the
/// fast path after the first increment).
fn shard_index() -> usize {
    thread_local! {
        static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    SHARD.with(|s| {
        let mut i = s.get();
        if i == usize::MAX {
            static NEXT: AtomicUsize = AtomicUsize::new(0);
            i = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
            s.set(i);
        }
        i
    })
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking scraper must not wedge the writers (same recovery
    // idiom as the engine's state lock).
    m.lock().unwrap_or_else(|p| p.into_inner())
}

struct CounterCore {
    shards: [CachePadded<AtomicU64>; SHARDS],
}

/// A monotone counter. Cloning hands out another handle to the same
/// underlying shards.
#[derive(Clone)]
pub struct Counter(Arc<CounterCore>);

impl Counter {
    fn new() -> Self {
        Counter(Arc::new(CounterCore {
            shards: std::array::from_fn(|_| CachePadded::new(AtomicU64::new(0))),
        }))
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n` (relaxed RMW into this thread's shard).
    #[inline]
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.0.shards[shard_index()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Sum of all shards (relaxed loads; monotone but not a cut).
    pub fn value(&self) -> u64 {
        self.0.shards.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Counter").field(&self.value()).finish()
    }
}

/// A last-write-wins instantaneous value (queue depth, current level).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value (relaxed store).
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value (relaxed RMW).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value (relaxed load).
    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Gauge").field(&self.value()).finish()
    }
}

struct WindowState {
    live: LogHistogram,
    prev: LogHistogram,
    total: LogHistogram,
    /// Start of the `live` window on the registry clock.
    epoch_ns: u64,
}

impl WindowState {
    /// Advance the window machinery to `now_ns`. At most one generation
    /// survives a rotation (`live` → `prev`); two or more elapsed
    /// windows clear both, re-anchoring the epoch on the window grid so
    /// rotation points are deterministic under a manual clock.
    fn rotate(&mut self, now_ns: u64, window_ns: u64) {
        if window_ns == 0 {
            return; // decay disabled: windowed view == total view
        }
        let behind = now_ns.saturating_sub(self.epoch_ns) / window_ns;
        match behind {
            0 => {}
            1 => {
                self.prev = std::mem::replace(&mut self.live, LogHistogram::new());
                self.epoch_ns += window_ns;
            }
            _ => {
                self.prev = LogHistogram::new();
                self.live = LogHistogram::new();
                self.epoch_ns = now_ns - (now_ns - self.epoch_ns) % window_ns;
            }
        }
    }
}

struct HistCore {
    clock: Clock,
    window_ns: u64,
    state: Mutex<WindowState>,
}

/// A windowed log-scale histogram (see module docs for the two-window
/// decay scheme). Record at query/level granularity, not per edge.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    fn new(clock: Clock, window: Duration) -> Self {
        let epoch_ns = clock.now_ns();
        Histogram(Arc::new(HistCore {
            clock,
            window_ns: window.as_nanos().min(u64::MAX as u128) as u64,
            state: Mutex::new(WindowState {
                live: LogHistogram::new(),
                prev: LogHistogram::new(),
                total: LogHistogram::new(),
                epoch_ns,
            }),
        }))
    }

    /// Record one sample into the live window and the cumulative total.
    pub fn record(&self, v: u64) {
        let now = self.0.clock.now_ns();
        let mut st = lock(&self.0.state);
        st.rotate(now, self.0.window_ns);
        st.live.record(v);
        st.total.record(v);
    }

    /// The decayed view: everything recorded in the last one-to-two
    /// windows. This is what live quantiles are computed from.
    pub fn windowed(&self) -> LogHistogram {
        let now = self.0.clock.now_ns();
        let mut st = lock(&self.0.state);
        st.rotate(now, self.0.window_ns);
        if self.0.window_ns == 0 {
            return st.total.clone();
        }
        let mut view = st.prev.clone();
        view.merge(&st.live);
        view
    }

    /// The cumulative (never-reset) histogram.
    pub fn total(&self) -> LogHistogram {
        lock(&self.0.state).total.clone()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Histogram").field(&self.total().count()).finish()
    }
}

enum Family {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Family {
    fn kind(&self) -> &'static str {
        match self {
            Family::Counter(_) => "counter",
            Family::Gauge(_) => "gauge",
            Family::Histogram(_) => "summary",
        }
    }
}

struct Entry {
    help: String,
    family: Family,
}

/// A named collection of metrics with deterministic iteration order
/// (sorted by name) and Prometheus-text / JSON snapshot forms.
///
/// Registration hands out cheap cloneable handles; the registry mutex
/// guards only the name table, never a hot-path update.
pub struct MetricsRegistry {
    clock: Clock,
    window: Duration,
    metrics: Mutex<BTreeMap<String, Entry>>,
}

impl MetricsRegistry {
    /// A registry on `clock` with the default 10 s histogram window.
    pub fn new(clock: Clock) -> Arc<Self> {
        Self::with_window(clock, DEFAULT_WINDOW)
    }

    /// A registry with an explicit histogram decay window. A zero
    /// window disables decay (windowed view == cumulative view).
    pub fn with_window(clock: Clock, window: Duration) -> Arc<Self> {
        Arc::new(MetricsRegistry { clock, window, metrics: Mutex::new(BTreeMap::new()) })
    }

    /// The clock snapshots and histogram rotation run on.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn register(&self, name: &str, help: &str, make: impl FnOnce() -> Family) -> Family {
        let mut m = lock(&self.metrics);
        let entry = m
            .entry(name.to_string())
            .or_insert_with(|| Entry { help: help.to_string(), family: make() });
        match &entry.family {
            Family::Counter(c) => Family::Counter(c.clone()),
            Family::Gauge(g) => Family::Gauge(g.clone()),
            Family::Histogram(h) => Family::Histogram(h.clone()),
        }
    }

    /// Get-or-register a counter. Panics if `name` is already a
    /// different metric kind (a programming error, not a runtime state).
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        match self.register(name, help, || Family::Counter(Counter::new())) {
            Family::Counter(c) => c,
            f => panic!("metric {name:?} already registered as {}", f.kind()),
        }
    }

    /// Get-or-register a gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        match self.register(name, help, || Family::Gauge(Gauge(Arc::new(AtomicI64::new(0))))) {
            Family::Gauge(g) => g,
            f => panic!("metric {name:?} already registered as {}", f.kind()),
        }
    }

    /// Get-or-register a windowed histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        let make = || Family::Histogram(Histogram::new(self.clock.clone(), self.window));
        match self.register(name, help, make) {
            Family::Histogram(h) => h,
            f => panic!("metric {name:?} already registered as {}", f.kind()),
        }
    }

    /// A point-in-time copy of every metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let m = lock(&self.metrics);
        let metrics = m
            .iter()
            .map(|(name, e)| {
                let value = match &e.family {
                    Family::Counter(c) => MetricValue::Counter(c.value()),
                    Family::Gauge(g) => MetricValue::Gauge(g.value()),
                    Family::Histogram(h) => {
                        MetricValue::Summary { window: h.windowed(), total: h.total() }
                    }
                };
                MetricSnapshot { name: name.clone(), help: e.help.clone(), value }
            })
            .collect();
        Snapshot { metrics }
    }

    /// Prometheus text exposition of a fresh snapshot.
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }

    /// JSON form of a fresh snapshot.
    pub fn to_json(&self) -> Json {
        self.snapshot().to_json()
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = lock(&self.metrics).len();
        f.debug_struct("MetricsRegistry").field("metrics", &n).finish()
    }
}

/// One metric in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Registered name (`obfs_engine_queries_submitted_total`, ...).
    pub name: String,
    /// Registered help text.
    pub help: String,
    /// The captured value.
    pub value: MetricValue,
}

/// A captured metric value.
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Monotone counter total.
    Counter(u64),
    /// Instantaneous gauge value.
    Gauge(i64),
    /// Histogram views: the decayed window and the cumulative total.
    Summary {
        /// Last one-to-two decay windows (live quantiles).
        window: LogHistogram,
        /// Never-reset total (`_sum`/`_count`, whole-run quantiles).
        total: LogHistogram,
    },
}

/// A deterministic point-in-time view of a registry, sorted by name.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// All metrics, sorted by name.
    pub metrics: Vec<MetricSnapshot>,
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

impl Snapshot {
    /// Find a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|m| m.name == name).map(|m| &m.value)
    }

    /// A counter's value, if `name` is a registered counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a registered gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// Prometheus text exposition format, version 0.0.4: `# HELP` /
    /// `# TYPE` per family, counters and gauges as single samples,
    /// histograms as summaries (windowed quantiles, cumulative
    /// `_sum`/`_count`). Byte-deterministic for a given snapshot.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let kind = match &m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Summary { .. } => "summary",
            };
            out.push_str(&format!("# HELP {} {}\n", m.name, escape_help(&m.help)));
            out.push_str(&format!("# TYPE {} {}\n", m.name, kind));
            match &m.value {
                MetricValue::Counter(v) => out.push_str(&format!("{} {v}\n", m.name)),
                MetricValue::Gauge(v) => out.push_str(&format!("{} {v}\n", m.name)),
                MetricValue::Summary { window, total } => {
                    for (q, label) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{}{{quantile=\"{label}\"}} {}\n",
                            m.name,
                            window.percentile(q)
                        ));
                    }
                    let sum = (total.mean() * total.count() as f64).round() as u64;
                    out.push_str(&format!("{}_sum {sum}\n", m.name));
                    out.push_str(&format!("{}_count {}\n", m.name, total.count()));
                }
            }
        }
        out
    }

    /// JSON snapshot: `{"metrics": [{name, type, help, ...}, ...]}` in
    /// name order, histograms carrying both views in full
    /// (`LogHistogram::to_json` sparse-bucket form).
    pub fn to_json(&self) -> Json {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                let mut obj = vec![
                    ("name".into(), Json::Str(m.name.clone())),
                    ("help".into(), Json::Str(m.help.clone())),
                ];
                match &m.value {
                    MetricValue::Counter(v) => {
                        obj.push(("type".into(), Json::Str("counter".into())));
                        obj.push(("value".into(), Json::Num(*v as f64)));
                    }
                    MetricValue::Gauge(v) => {
                        obj.push(("type".into(), Json::Str("gauge".into())));
                        obj.push(("value".into(), Json::Num(*v as f64)));
                    }
                    MetricValue::Summary { window, total } => {
                        obj.push(("type".into(), Json::Str("summary".into())));
                        obj.push(("window".into(), window.to_json()));
                        obj.push(("total".into(), total.to_json()));
                    }
                }
                Json::Obj(obj)
            })
            .collect();
        Json::Obj(vec![("metrics".into(), Json::Arr(metrics))])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn counter_sums_across_threads() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::new(clock);
        let c = reg.counter("c_total", "test counter");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.value(), 80_000, "relaxed RMWs never lose increments");
    }

    #[test]
    fn reregistration_returns_the_same_metric() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::new(clock);
        let a = reg.counter("x_total", "first");
        let b = reg.counter("x_total", "second help ignored");
        a.add(3);
        assert_eq!(b.value(), 3);
        assert_eq!(reg.snapshot().metrics[0].help, "first");
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_clash_panics() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::new(clock);
        let _ = reg.counter("x", "as counter");
        let _ = reg.gauge("x", "as gauge");
    }

    #[test]
    fn window_rotation_ages_out_old_samples() {
        let (clock, hand) = Clock::manual();
        let reg = MetricsRegistry::with_window(clock, Duration::from_secs(1));
        let h = reg.histogram("lat", "latency");
        h.record(100);
        // Still inside the first window: visible.
        assert_eq!(h.windowed().count(), 1);
        // One window later the sample moved to `prev` but stays in view.
        hand.advance(Duration::from_millis(1_100));
        h.record(200);
        assert_eq!(h.windowed().count(), 2, "prev + live are both in view");
        // Two more idle windows: only the total retains the history.
        hand.advance(Duration::from_millis(2_500));
        assert_eq!(h.windowed().count(), 0, "stale windows age out");
        assert_eq!(h.total().count(), 2, "cumulative view never resets");
    }

    #[test]
    fn zero_window_disables_decay() {
        let (clock, hand) = Clock::manual();
        let reg = MetricsRegistry::with_window(clock, Duration::ZERO);
        let h = reg.histogram("lat", "latency");
        h.record(7);
        hand.advance(Duration::from_secs(3600));
        assert_eq!(h.windowed().count(), 1);
    }

    #[test]
    fn exposition_is_byte_stable_under_a_manual_clock() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::with_window(clock, Duration::from_secs(10));
        reg.counter("obfs_demo_queries_total", "Queries processed.").add(5);
        reg.gauge("obfs_demo_queue_depth", "Jobs waiting.").set(-2);
        let h = reg.histogram("obfs_demo_wait_us", "Queue wait (us).");
        for v in [10, 20, 40, 80] {
            h.record(v);
        }
        let golden = "\
# HELP obfs_demo_queries_total Queries processed.
# TYPE obfs_demo_queries_total counter
obfs_demo_queries_total 5
# HELP obfs_demo_queue_depth Jobs waiting.
# TYPE obfs_demo_queue_depth gauge
obfs_demo_queue_depth -2
# HELP obfs_demo_wait_us Queue wait (us).
# TYPE obfs_demo_wait_us summary
obfs_demo_wait_us{quantile=\"0.5\"} 21
obfs_demo_wait_us{quantile=\"0.9\"} 80
obfs_demo_wait_us{quantile=\"0.99\"} 80
obfs_demo_wait_us_sum 150
obfs_demo_wait_us_count 4
";
        assert_eq!(reg.render_text(), golden);
        // And the same snapshot parses with the exposition parser.
        let parsed = crate::parse_exposition(&reg.render_text()).unwrap();
        assert_eq!(crate::sample(&parsed, "obfs_demo_queries_total"), Some(5.0));
        assert_eq!(crate::sample(&parsed, "obfs_demo_wait_us_count"), Some(4.0));
    }

    #[test]
    fn json_snapshot_has_both_histogram_views() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::new(clock);
        reg.counter("c_total", "c").inc();
        reg.histogram("h", "h").record(42);
        let j = reg.to_json();
        let arr = j.get("metrics").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        let h = &arr[1];
        assert_eq!(h.get("type").and_then(Json::as_str), Some("summary"));
        assert!(h.get("window").is_some() && h.get("total").is_some());
        // Round-trips through the hand-rolled parser.
        let text = j.render();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }
}
