//! Driver-side telemetry: per-run gauges plus thread-local worker hooks.
//!
//! A long-running traversal becomes observable mid-flight through
//! [`RunTelemetry`]: the barrier leader updates the level/frontier/
//! direction gauges inside its serial section (already exclusive, so
//! plain relaxed stores suffice), and each worker flushes its
//! edge-scan aggregate once per level through a thread-local handle
//! installed next to the existing chaos/flight/metrics hooks.
//!
//! # Zero cost when off
//!
//! The per-worker hook mirrors `obfs-sync::metrics`: an `ACTIVE`
//! `Cell<bool>` guards the fast path, so with no telemetry installed
//! [`flush_edges`] is a thread-local boolean load — no clock reads, no
//! allocation, no atomics. Installation happens only when a run's
//! `BfsOptions` carries a telemetry handle.
//!
//! # Panic safety
//!
//! Like every other thread-local hook, the installed handle must be
//! torn down on the worker-panic path (`obfs-runtime` calls
//! [`uninstall`] next to the chaos/flight/metrics uninstalls) so a
//! rebuilt pool's OS threads never start with a stale run's handle.

use crate::registry::{Counter, Gauge, MetricsRegistry};
use std::cell::{Cell, RefCell};
use std::sync::Arc;

/// Gauges and counters describing the traversal currently on the pool,
/// all registered under `obfs_run_*` in one registry.
#[derive(Debug, Clone)]
pub struct RunTelemetry {
    /// Traversals started (counter).
    pub traversals: Counter,
    /// Levels completed across all traversals (counter).
    pub levels: Counter,
    /// Edges scanned across all traversals (counter, worker-flushed
    /// once per level).
    pub edges: Counter,
    /// Levels whose frontier was materialized by prefix-sum compaction
    /// (counter).
    pub compacted_levels: Counter,
    /// Current BFS level (gauge).
    pub level: Gauge,
    /// Current frontier size (gauge).
    pub frontier: Gauge,
    /// Current traversal direction: 0 top-down, 1 bottom-up (gauge,
    /// matching the `DIR_*` flight payload codes).
    pub direction: Gauge,
}

impl RunTelemetry {
    /// Register (or re-attach to) the `obfs_run_*` family in `reg`.
    pub fn register(reg: &MetricsRegistry) -> Arc<Self> {
        Arc::new(RunTelemetry {
            traversals: reg.counter("obfs_run_traversals_total", "BFS traversals started."),
            levels: reg.counter("obfs_run_levels_total", "BFS levels completed."),
            edges: reg.counter("obfs_run_edges_scanned_total", "Edges scanned by BFS workers."),
            compacted_levels: reg.counter(
                "obfs_run_compacted_levels_total",
                "Levels materialized by prefix-sum frontier compaction.",
            ),
            level: reg.gauge("obfs_run_level", "Current BFS level of the running traversal."),
            frontier: reg.gauge("obfs_run_frontier", "Vertices in the current frontier."),
            direction: reg
                .gauge("obfs_run_direction", "Traversal direction: 0 top-down, 1 bottom-up."),
        })
    }
}

struct WorkerCtx {
    run: Arc<RunTelemetry>,
    /// Cumulative edges already flushed by this worker for this run, so
    /// each per-level flush adds only the delta.
    flushed_edges: u64,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static CTX: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// Install a worker-side handle on the current thread. Replaces any
/// previous handle (a fresh run restarts the flush baseline).
pub fn install(run: Arc<RunTelemetry>) {
    CTX.with(|c| *c.borrow_mut() = Some(WorkerCtx { run, flushed_edges: 0 }));
    ACTIVE.with(|a| a.set(true));
}

/// Remove the current thread's handle. Returns whether one was
/// installed — the panic-path test leans on this to prove a rebuilt
/// pool starts clean.
pub fn uninstall() -> bool {
    ACTIVE.with(|a| a.set(false));
    CTX.with(|c| c.borrow_mut().take()).is_some()
}

/// Whether the current thread has an installed handle.
pub fn is_active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Flush this worker's cumulative edge-scan count (called once per
/// level with the worker's running total; only the delta since the
/// last flush is added to the shared counter). A thread-local boolean
/// load when no handle is installed.
#[inline]
pub fn flush_edges(cumulative: u64) {
    if !is_active() {
        return;
    }
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            let delta = cumulative.saturating_sub(ctx.flushed_edges);
            ctx.flushed_edges = cumulative;
            ctx.run.edges.add(delta);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_sync::Clock;

    #[test]
    fn flush_is_inert_without_an_installed_handle() {
        assert!(!is_active());
        flush_edges(1_000); // must not panic, must not record anywhere
        assert!(!uninstall(), "nothing to uninstall");
    }

    #[test]
    fn flush_adds_deltas_and_uninstall_clears() {
        let (clock, _hand) = Clock::manual();
        let reg = MetricsRegistry::new(clock);
        let run = RunTelemetry::register(&reg);
        install(Arc::clone(&run));
        assert!(is_active());
        flush_edges(100);
        flush_edges(250);
        assert_eq!(run.edges.value(), 250, "cumulative flushes add deltas");
        assert!(uninstall());
        assert!(!is_active());
        flush_edges(10_000);
        assert_eq!(run.edges.value(), 250, "flushes after uninstall are dropped");
        // Reinstall restarts the baseline.
        install(Arc::clone(&run));
        flush_edges(50);
        assert_eq!(run.edges.value(), 300);
        assert!(uninstall());
    }
}
