//! Shared utilities for the `obfs` workspace.
//!
//! Everything here is deliberately dependency-free so the whole workspace
//! stays reproducible: the PRNGs are seedable and deterministic, the timers
//! are thin wrappers over [`std::time::Instant`], and the numeric helpers
//! are the handful of integer routines the graph generators and the BFS
//! dispatchers share.

#![warn(missing_docs)]

pub mod hist;
pub mod json;
pub mod prng;
pub mod stats;
pub mod timing;

pub use hist::LogHistogram;
pub use json::Json;
pub use prng::{SplitMix64, Xoshiro256StarStar};
pub use stats::{OnlineStats, Summary};
pub use timing::Stopwatch;

/// Integer ceiling division `ceil(a / b)` for `b > 0`.
///
/// ```
/// assert_eq!(obfs_util::div_ceil(7, 3), 3);
/// assert_eq!(obfs_util::div_ceil(6, 3), 2);
/// assert_eq!(obfs_util::div_ceil(0, 3), 0);
/// ```
#[inline]
pub const fn div_ceil(a: usize, b: usize) -> usize {
    if a == 0 {
        0
    } else {
        1 + (a - 1) / b
    }
}

/// `ceil(log2(n))` for `n >= 1`; returns 0 for `n <= 1`.
///
/// Used for the `c * p * log(p)` retry bounds in the work-stealing
/// algorithms (balls-and-bins argument, paper §IV-A3 / §IV-B1).
///
/// ```
/// assert_eq!(obfs_util::ceil_log2(1), 0);
/// assert_eq!(obfs_util::ceil_log2(2), 1);
/// assert_eq!(obfs_util::ceil_log2(3), 2);
/// assert_eq!(obfs_util::ceil_log2(32), 5);
/// assert_eq!(obfs_util::ceil_log2(33), 6);
/// ```
#[inline]
pub const fn ceil_log2(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Number of retry attempts `c * k * ceil(log2(k))`, clamped to at least
/// `min`, as used by the decentralized queue-pool search and the
/// work-stealing victim search. `k = 1` yields `min`.
#[inline]
pub fn retry_budget(c: usize, k: usize, min: usize) -> usize {
    let tries = c * k * (ceil_log2(k).max(1) as usize);
    tries.max(min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn div_ceil_edge_cases() {
        assert_eq!(div_ceil(0, 1), 0);
        assert_eq!(div_ceil(1, 1), 1);
        assert_eq!(div_ceil(1, 100), 1);
        assert_eq!(div_ceil(100, 1), 100);
        assert_eq!(div_ceil(usize::MAX, usize::MAX), 1);
    }

    #[test]
    fn ceil_log2_powers_and_neighbours() {
        for k in 1..20u32 {
            let n = 1usize << k;
            assert_eq!(ceil_log2(n), k, "exact power 2^{k}");
            assert_eq!(ceil_log2(n + 1), k + 1, "just above 2^{k}");
            assert_eq!(ceil_log2(n - 1), if k == 1 { 0 } else { k }, "just below 2^{k}");
        }
    }

    #[test]
    fn retry_budget_monotone_in_k() {
        let mut prev = 0;
        for k in 1..100 {
            let b = retry_budget(2, k, 4);
            assert!(b >= prev, "retry budget must not shrink as k grows");
            assert!(b >= 4);
            prev = b;
        }
    }

    #[test]
    fn retry_budget_respects_min() {
        assert_eq!(retry_budget(1, 1, 8), 8);
        assert_eq!(retry_budget(0, 64, 3), 3);
    }
}
