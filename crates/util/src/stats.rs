//! Streaming summary statistics for benchmark measurements.

/// Welford's online algorithm for mean/variance plus min/max tracking.
///
/// Numerically stable for long measurement streams; used by the bench
/// harness to summarize per-source BFS times (the paper averages over 1000
/// random sources per graph).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty summary.
    pub fn new() -> Self {
        Self { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Fold one observation into the summary.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another summary into this one (parallel Welford combine).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); NaN for fewer than 2 samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Snapshot the summary into a plain value type.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A finished, copyable statistics snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Observation count.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} max={:.3}",
            self.count, self.mean, self.stddev, self.min, self.max
        )
    }
}

/// Geometric mean of a slice of positive values; NaN if empty.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_match_closed_form() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // population variance is 4.0; sample variance = 32/7
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        for &x in &xs[..37] {
            left.push(x);
        }
        for &x in &xs[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn empty_stats_are_nan() {
        let s = OnlineStats::new();
        assert!(s.mean().is_nan());
        assert!(s.variance().is_nan());
        assert!(s.min().is_nan());
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert!(geomean(&[]).is_nan());
    }
}
