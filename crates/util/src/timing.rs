//! Wall-clock measurement helpers used by the benchmark harness.

use std::time::{Duration, Instant};

/// A restartable stopwatch that accumulates elapsed wall time.
///
/// ```
/// use obfs_util::Stopwatch;
/// let mut sw = Stopwatch::new_started();
/// // ... work ...
/// let d = sw.lap();
/// assert!(d >= std::time::Duration::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Option<Instant>,
    accumulated: Duration,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// A stopped stopwatch with zero accumulated time.
    pub fn new() -> Self {
        Self { start: None, accumulated: Duration::ZERO }
    }

    /// A stopwatch that is already running.
    pub fn new_started() -> Self {
        Self { start: Some(Instant::now()), accumulated: Duration::ZERO }
    }

    /// Start (or restart) the clock. No-op if already running.
    pub fn start(&mut self) {
        if self.start.is_none() {
            self.start = Some(Instant::now());
        }
    }

    /// Stop the clock, folding the running span into the accumulated total.
    pub fn stop(&mut self) {
        if let Some(s) = self.start.take() {
            self.accumulated += s.elapsed();
        }
    }

    /// Total accumulated time, including the currently running span.
    pub fn elapsed(&self) -> Duration {
        self.accumulated + self.start.map_or(Duration::ZERO, |s| s.elapsed())
    }

    /// Return the elapsed time and reset to zero, keeping the run state.
    pub fn lap(&mut self) -> Duration {
        let e = self.elapsed();
        self.accumulated = Duration::ZERO;
        if self.start.is_some() {
            self.start = Some(Instant::now());
        }
        e
    }

    /// Whether the stopwatch is currently running.
    pub fn is_running(&self) -> bool {
        self.start.is_some()
    }
}

/// Time a closure, returning `(result, wall_time)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Convert a duration to fractional milliseconds.
#[inline]
pub fn as_millis_f64(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn stopwatch_accumulates_across_stop_start() {
        let mut sw = Stopwatch::new();
        assert!(!sw.is_running());
        sw.start();
        sleep(Duration::from_millis(2));
        sw.stop();
        let a = sw.elapsed();
        assert!(a >= Duration::from_millis(2));
        sleep(Duration::from_millis(2));
        // stopped: elapsed must not grow
        assert_eq!(sw.elapsed(), a);
        sw.start();
        sleep(Duration::from_millis(2));
        assert!(sw.elapsed() > a);
    }

    #[test]
    fn lap_resets_total() {
        let mut sw = Stopwatch::new_started();
        sleep(Duration::from_millis(1));
        let first = sw.lap();
        assert!(first >= Duration::from_millis(1));
        let second = sw.lap();
        assert!(second < first + Duration::from_millis(1));
    }

    #[test]
    fn time_returns_result() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn double_start_is_noop() {
        let mut sw = Stopwatch::new_started();
        sw.start(); // must not reset the running span
        sleep(Duration::from_millis(1));
        assert!(sw.elapsed() >= Duration::from_millis(1));
    }
}
