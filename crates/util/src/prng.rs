//! Deterministic, seedable pseudo-random number generators.
//!
//! The workspace does not use the `rand` crate: every experiment in the
//! paper reproduction must be replayable from a single `u64` seed, and the
//! two tiny generators here (SplitMix64 for seeding/stateless hashing,
//! xoshiro256** for bulk streams) are the standard pairing for that job.
//! Both match the reference implementations by Blackman & Vigna.

/// SplitMix64: a tiny, fast, full-period 64-bit generator.
///
/// Primarily used to expand a single user seed into the larger state of
/// [`Xoshiro256StarStar`], and as a cheap stateless mix function
/// ([`SplitMix64::mix`]) for per-thread seed derivation.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Every seed is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        Self::finalize(self.state)
    }

    /// Stateless mix: maps `x` to a well-distributed 64-bit value.
    /// `mix(a) != mix(b)` whenever `a != b` (it is a bijection).
    #[inline]
    pub fn mix(x: u64) -> u64 {
        Self::finalize(x.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }

    #[inline]
    fn finalize(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the general-purpose generator used for all workload
/// generation and victim selection in the workspace.
///
/// Period 2^256 - 1; passes BigCrush. Seeded via SplitMix64 so that any
/// `u64` seed (including 0) produces a valid, well-mixed state.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Create a generator from a single seed, expanding it with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self { s }
    }

    /// Derive an independent stream for worker `index` from a base seed.
    /// Streams for different indices are decorrelated by double-mixing.
    pub fn for_stream(seed: u64, index: u64) -> Self {
        Self::new(SplitMix64::mix(seed) ^ SplitMix64::mix(index.wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Next 32 uniformly distributed bits (upper half of `next_u64`).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, bound)` using Lemire's multiply-shift rejection
    /// method (unbiased). `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        // Lemire 2019: unbiased bounded generation with one multiply in the
        // common case.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below_usize(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` (k <= n), in random order.
    /// Uses Floyd's algorithm: O(k) expected work, no O(n) allocation.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from a universe of {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below_usize(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        self.shuffle(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c reference implementation.
        let mut sm = SplitMix64::new(1234567);
        let got: Vec<u64> = (0..3).map(|_| sm.next_u64()).collect();
        assert_eq!(got[0], 6457827717110365317);
        assert_eq!(got[1], 3203168211198807973);
        assert_eq!(got[2], 9817491932198370423);
    }

    #[test]
    fn xoshiro_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut g = Xoshiro256StarStar::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut g = Xoshiro256StarStar::new(42);
            (0..16).map(|_| g.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut g = Xoshiro256StarStar::new(43);
            (0..16).map(|_| g.next_u64()).collect()
        };
        assert_eq!(a, b, "same seed must give same stream");
        assert_ne!(a, c, "different seeds must give different streams");
    }

    #[test]
    fn below_is_in_range_and_hits_all_values() {
        let mut g = Xoshiro256StarStar::new(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let v = g.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear in 10k draws");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut g = Xoshiro256StarStar::new(99);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Xoshiro256StarStar::new(5);
        let mut v: Vec<u32> = (0..100).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut g = Xoshiro256StarStar::new(11);
        for &(n, k) in &[(10usize, 10usize), (100, 7), (1, 1), (5, 0)] {
            let s = g.sample_indices(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "samples must be distinct");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let mut g0 = Xoshiro256StarStar::for_stream(42, 0);
        let mut g1 = Xoshiro256StarStar::for_stream(42, 1);
        let a: Vec<u64> = (0..8).map(|_| g0.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| g1.next_u64()).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut g = Xoshiro256StarStar::new(3);
        assert!((0..100).all(|_| !g.chance(0.0)));
        assert!((0..100).all(|_| g.chance(1.0)));
    }
}
