//! Log-linear (HDR-style) latency histogram, std-only.
//!
//! The recorder side of the post-mortem profiler: workers record
//! microsecond latencies (segment fetches, steal attempts, barrier
//! waits) and small counts (sanity-check retries per fetch) with plain
//! stores into thread-owned histograms — the same memory-model argument
//! as the flight rings in `obfs-sync::flight`: each histogram is written
//! by exactly one thread and only read after that thread has passed a
//! barrier, so no atomics are needed.
//!
//! Layout: values below [`LogHistogram::SUB_BUCKETS`] get exact unit
//! buckets; above that, each power-of-two octave is split into
//! `SUB_BUCKETS` equal sub-buckets, so relative error is bounded by
//! `1/SUB_BUCKETS` everywhere. Values at or above 2^40 land in a single
//! saturation bucket (2^40 µs ≈ 13 days — nothing we time gets there).

use crate::json::Json;

/// Number of value bits above which values saturate into the overflow
/// bucket.
const MAX_BITS: u32 = 40;

/// Log-linear histogram of `u64` values with bounded relative error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Sub-buckets per power-of-two octave (3 bits of precision:
    /// relative bucket width is at most 1/8).
    pub const SUB_BUCKETS: u64 = 8;
    const PRECISION_BITS: u32 = 3;
    /// Regular (non-overflow) bucket count for the fixed layout.
    const REGULAR: usize = ((MAX_BITS - Self::PRECISION_BITS) as usize + 1) * 8;
    /// First value that saturates into the overflow bucket.
    pub const SATURATION: u64 = 1 << MAX_BITS;

    /// An empty histogram (fixed ~2.4 KiB of buckets).
    pub fn new() -> Self {
        Self {
            buckets: vec![0; Self::REGULAR + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value (the overflow bucket for saturating
    /// values). Exposed so tests and the chaos assertions can reason
    /// about exactly which bucket a latency must land in.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        if v < Self::SUB_BUCKETS {
            v as usize
        } else if v >= Self::SATURATION {
            Self::REGULAR
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - Self::PRECISION_BITS;
            (((msb - Self::PRECISION_BITS + 1) as usize) << Self::PRECISION_BITS)
                + ((v >> shift) & (Self::SUB_BUCKETS - 1)) as usize
        }
    }

    /// Half-open value range `[lo, hi)` covered by bucket `i`; the
    /// overflow bucket reports `[SATURATION, u64::MAX)`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i < Self::SUB_BUCKETS as usize {
            (i as u64, i as u64 + 1)
        } else if i >= Self::REGULAR {
            (Self::SATURATION, u64::MAX)
        } else {
            let g = (i >> Self::PRECISION_BITS) as u32; // octave group, >= 1
            let sub = (i as u64) & (Self::SUB_BUCKETS - 1);
            let lo = (Self::SUB_BUCKETS + sub) << (g - 1);
            (lo, lo + (1 << (g - 1)))
        }
    }

    /// Record one observation.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` observations of the same value.
    #[inline]
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (bucket-wise add; exact).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value (exact, tracked outside the buckets).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations that saturated into the overflow bucket.
    pub fn saturated(&self) -> u64 {
        self.buckets[Self::REGULAR]
    }

    /// Value at or below which at least `q` (0..=1) of observations
    /// fall, reported as the containing bucket's inclusive upper edge
    /// clamped to the exact recorded max. 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                if i >= Self::REGULAR {
                    // Overflow bucket: the exact tracked max is the only
                    // honest upper edge.
                    return self.max;
                }
                let (_, hi) = Self::bucket_bounds(i);
                return (hi - 1).min(self.max);
            }
        }
        self.max
    }

    /// Non-empty buckets as `(lo, hi, count)` with `[lo, hi)` value
    /// ranges, in ascending value order.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| {
            let (lo, hi) = Self::bucket_bounds(i);
            (lo, hi, c)
        })
    }

    /// Deterministic JSON form: summary scalars plus the sparse bucket
    /// list (`[lo, count]` pairs in ascending order).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("count".into(), Json::Num(self.count as f64)),
            ("min".into(), Json::Num(self.min() as f64)),
            ("max".into(), Json::Num(self.max as f64)),
            ("mean".into(), Json::Num(self.mean())),
            ("p50".into(), Json::Num(self.percentile(0.50) as f64)),
            ("p90".into(), Json::Num(self.percentile(0.90) as f64)),
            ("p99".into(), Json::Num(self.percentile(0.99) as f64)),
            ("saturated".into(), Json::Num(self.saturated() as f64)),
            (
                "buckets".into(),
                Json::Arr(
                    self.iter_nonzero()
                        .map(|(lo, _, c)| {
                            Json::Arr(vec![Json::Num(lo as f64), Json::Num(c as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_below_sub_bucket_count() {
        for v in 0..LogHistogram::SUB_BUCKETS {
            assert_eq!(LogHistogram::bucket_index(v), v as usize);
            assert_eq!(LogHistogram::bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        // Deterministic value sweep: powers of two, their neighbours,
        // and a multiplicative ramp across the whole trackable range.
        let mut values = vec![0u64, 1, 7, 8, 9, 15, 16, 17];
        for k in 3..MAX_BITS {
            let p = 1u64 << k;
            values.extend([p - 1, p, p + 1, p + p / 3]);
        }
        values.extend([LogHistogram::SATURATION - 1, LogHistogram::SATURATION, u64::MAX]);
        for v in values {
            let i = LogHistogram::bucket_index(v);
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            assert!(
                lo <= v && (v < hi || (i == LogHistogram::bucket_index(u64::MAX) && v == u64::MAX)),
                "value {v} not in bucket {i} = [{lo},{hi})"
            );
        }
    }

    #[test]
    fn buckets_partition_the_trackable_range() {
        // Consecutive buckets tile the value space with no gaps or
        // overlaps up to the saturation point.
        let last = LogHistogram::bucket_index(LogHistogram::SATURATION - 1);
        let mut expect_lo = 0u64;
        for i in 0..=last {
            let (lo, hi) = LogHistogram::bucket_bounds(i);
            assert_eq!(lo, expect_lo, "gap/overlap before bucket {i}");
            assert!(hi > lo);
            expect_lo = hi;
        }
        assert_eq!(expect_lo, LogHistogram::SATURATION);
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 999, 12_345, 1 << 20, (1 << 30) + 12_321] {
            let (lo, hi) = LogHistogram::bucket_bounds(LogHistogram::bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 1.0 / 8.0 + 1e-9, "bucket too wide at {v}");
        }
    }

    #[test]
    fn record_tracks_exact_summary_scalars() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        for v in [3u64, 1000, 17, 3] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), 3);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.mean(), (3.0 + 1000.0 + 17.0 + 3.0) / 4.0);
        assert_eq!(h.percentile(0.5), 3);
        // p100 is clamped to the exact max even though the containing
        // bucket's upper edge is coarser.
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            for &v in vals {
                h.record(v);
            }
            h
        };
        let a = mk(&[1, 5, 900, 1 << 22]);
        let b = mk(&[0, 5, 5, u64::MAX]);
        let c = mk(&[123_456, 7]);

        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);

        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);

        let mut ba = b.clone();
        ba.merge(&a);
        let mut ba_c = ba.clone();
        ba_c.merge(&c);

        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, ba_c);
        assert_eq!(ab_c.count(), 10);
    }

    #[test]
    fn saturation_counts_overflow_values() {
        let mut h = LogHistogram::new();
        h.record(LogHistogram::SATURATION - 1);
        assert_eq!(h.saturated(), 0);
        h.record(LogHistogram::SATURATION);
        h.record(u64::MAX);
        assert_eq!(h.saturated(), 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        // The saturated observations are still in the distribution.
        assert_eq!(h.percentile(1.0), u64::MAX);
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        a.record_n(42, 5);
        a.record_n(7, 0); // no-op
        for _ in 0..5 {
            b.record(42);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn json_form_is_deterministic_and_sparse() {
        let mut h = LogHistogram::new();
        h.record_n(4, 3);
        h.record(100);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("buckets").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(h.to_json().render(), j.render());
    }

    #[test]
    fn percentiles_walk_cumulative_counts() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p90 = h.percentile(0.9);
        let p99 = h.percentile(0.99);
        // Bucket upper edges over-approximate by at most 1/8 relative.
        assert!((50..=57).contains(&p50), "p50 = {p50}");
        assert!((90..=104).contains(&p90), "p90 = {p90}");
        assert!((99..=112).contains(&p99), "p99 = {p99}");
        assert!(p50 <= p90 && p90 <= p99);
    }
}
