//! Hand-rolled JSON value type, parser, and compact serializer.
//!
//! The workspace is dependency-free (see DESIGN.md dependency policy),
//! so JSON support is implemented here once and shared: the benchmark
//! pipeline (`obfs-bench::json`) builds `BENCH_*.json` reports on top of
//! it, and the trace profiler (`obfs-core::flight::analysis`) uses the
//! parser to re-read exported chrome-trace files for offline analysis.
//! Objects keep insertion order so every emitted document is
//! deterministic byte-for-byte.

/// A JSON value. Objects keep insertion order (Vec of pairs) so emitted
/// files are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64; integers survive to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact serialization (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => render_num(*x, out),
            Json::Str(s) => render_str(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_str(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_num(x: f64, out: &mut String) {
    use std::fmt::Write as _;
    if !x.is_finite() {
        out.push_str("null"); // JSON has no NaN/Inf
    } else if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) {
        let _ = write!(out, "{}", x as i64);
    } else {
        let _ = write!(out, "{x}");
    }
}

fn render_str(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => parse_str(b, pos).map(Json::Str),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_str(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1)?;
                        *pos += 4;
                        let cp = if (0xD800..0xDC00).contains(&hi) {
                            // surrogate pair: expect \uXXXX low half
                            if b.get(*pos + 1) != Some(&b'\\') || b.get(*pos + 2) != Some(&b'u') {
                                return Err("lone high surrogate".into());
                            }
                            let lo = parse_hex4(b, *pos + 3)?;
                            *pos += 6;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err("bad low surrogate".into());
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| "bad \\u escape".to_string())?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 char (input is a valid &str).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Result<u32, String> {
    let chunk = b.get(at..at + 4).ok_or("truncated \\u escape")?;
    let s = std::str::from_utf8(chunk).map_err(|e| e.to_string())?;
    u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape {s:?}"))
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(out));
    }
    loop {
        out.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(out));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut out = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(out));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_str(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        out.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(out));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_scalars_and_nesting() {
        let text = r#"{"a": [1, -2.5, 1e3, true, false, null], "b": {"c": "x"}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 6);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(-2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(1000.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        // Serialize → reparse → identical tree.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_string_escapes() {
        let v = Json::parse(r#""a\"b\\c\ndA😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA\u{1F600}"));
        // Round-trip through the serializer too.
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "1 2", "{\"a\":1,}",
            "\"unterminated", "{'a':1}", "[1]]",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }

    #[test]
    fn integers_render_without_decimal_point() {
        assert_eq!(Json::Num(42.0).render(), "42");
        assert_eq!(Json::Num(-7.0).render(), "-7");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
