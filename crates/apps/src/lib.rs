//! Applications built on the optimistic parallel BFS.
//!
//! The paper motivates BFS as "a building block for several other
//! important algorithms such as finding shortest paths and connected
//! components, graph clustering, community structure discovery, max-flow
//! computation and the betweenness centrality problem" (§I). This crate
//! implements that downstream layer on top of [`obfs_core`]:
//!
//! * [`sssp`] — unweighted single-/multi-source shortest paths, path
//!   extraction, st-connectivity;
//! * [`components`] — (weakly) connected components via BFS sweeps;
//! * [`bipartite`] — bipartiteness testing / 2-coloring from BFS parity;
//! * [`clustering`] — BFS-ball graph clustering (the deterministic
//!   clustering primitive of the paper's ref. \[8\]);
//! * [`betweenness`] — Brandes' betweenness centrality with sampled
//!   sources (paper ref. \[17\]);
//! * [`maxflow`] — Edmonds–Karp max-flow, whose augmenting-path search is
//!   a BFS on the residual network.

#![warn(missing_docs)]

pub mod betweenness;
pub mod bipartite;
pub mod clustering;
pub mod components;
pub mod maxflow;
pub mod sssp;

pub use betweenness::betweenness_centrality;
pub use bipartite::{bipartition, Bipartition};
pub use clustering::bfs_ball_clustering;
pub use components::{connected_components, Components};
pub use maxflow::{max_flow, FlowNetwork};
pub use sssp::{multi_source_distances, shortest_path, st_connected, ShortestPath};
