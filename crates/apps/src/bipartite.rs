//! Bipartiteness testing via BFS level parity.

use obfs_core::{run_bfs, Algorithm, BfsOptions, BfsRunner, UNVISITED};
use obfs_graph::{CsrGraph, VertexId};

/// A 2-coloring certificate, or the odd-cycle edge that refutes it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bipartition {
    /// `side[v]` ∈ {0, 1}; every edge crosses sides.
    Bipartite {
        /// `side[v]` ∈ {0, 1}.
        side: Vec<u8>,
    },
    /// An edge joining two same-parity vertices (both endpoints reached
    /// at the same BFS depth parity — an odd cycle exists through it).
    OddCycle {
        /// One endpoint of the violating edge.
        u: VertexId,
        /// The other endpoint.
        v: VertexId,
    },
}

/// Test whether an undirected (symmetric) graph is bipartite. Colors come
/// from BFS level parity per component; any edge within one parity class
/// of the same component certifies an odd cycle.
pub fn bipartition(graph: &CsrGraph, algo: Algorithm, opts: &BfsOptions) -> Bipartition {
    let n = graph.num_vertices();
    let mut side = vec![2u8; n]; // 2 = unassigned
    if n == 0 {
        return Bipartite::bipartite(side);
    }
    let runner = (algo != Algorithm::Serial).then(|| BfsRunner::new(opts.threads));
    for v in 0..n as VertexId {
        if side[v as usize] != 2 {
            continue;
        }
        let r = match &runner {
            Some(run) => run.run(algo, graph, v, opts),
            None => run_bfs(Algorithm::Serial, graph, v, opts),
        };
        for (u, &l) in r.levels.iter().enumerate() {
            if l != UNVISITED && side[u] == 2 {
                side[u] = (l % 2) as u8;
            }
        }
    }
    // Verify every edge crosses; the first violation is the certificate.
    for (u, v) in graph.edges() {
        if u != v && side[u as usize] == side[v as usize] {
            return Bipartition::OddCycle { u, v };
        }
        if u == v {
            return Bipartition::OddCycle { u, v }; // self-loop: odd cycle of length 1
        }
    }
    Bipartite::bipartite(side)
}

/// Internal helper namespace (keeps the enum construction in one place).
struct Bipartite;

impl Bipartite {
    fn bipartite(mut side: Vec<u8>) -> Bipartition {
        // Unreached isolated vertices default to side 0.
        for s in &mut side {
            if *s == 2 {
                *s = 0;
            }
        }
        Bipartition::Bipartite { side }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::{gen, GraphBuilder};

    fn opts() -> BfsOptions {
        BfsOptions { threads: 3, ..Default::default() }
    }

    #[test]
    fn even_cycle_is_bipartite() {
        let g = gen::cycle(10);
        match bipartition(&g, Algorithm::Bfscl, &opts()) {
            Bipartition::Bipartite { side } => {
                for (u, v) in g.edges() {
                    assert_ne!(side[u as usize], side[v as usize]);
                }
            }
            other => panic!("C10 must be bipartite, got {other:?}"),
        }
    }

    #[test]
    fn odd_cycle_is_not() {
        let g = gen::cycle(9);
        assert!(matches!(
            bipartition(&g, Algorithm::Bfswl, &opts()),
            Bipartition::OddCycle { .. }
        ));
    }

    #[test]
    fn trees_and_grids_are_bipartite() {
        for g in [gen::binary_tree(127), gen::grid2d(7, 11), gen::star(20), gen::path(30)] {
            assert!(matches!(
                bipartition(&g, Algorithm::Bfswsl, &opts()),
                Bipartition::Bipartite { .. }
            ));
        }
    }

    #[test]
    fn triangle_plus_disjoint_edge() {
        let mut b = GraphBuilder::new(5).symmetrize(true);
        b.extend([(0, 1), (1, 2), (2, 0), (3, 4)]);
        let g = b.build();
        match bipartition(&g, Algorithm::Serial, &opts()) {
            Bipartition::OddCycle { u, v } => {
                assert!(u < 3 && v < 3, "certificate must point into the triangle");
            }
            other => panic!("triangle makes it non-bipartite, got {other:?}"),
        }
    }

    #[test]
    fn self_loop_is_an_odd_cycle() {
        let mut b = GraphBuilder::new(2).allow_self_loops(true).symmetrize(true);
        b.extend([(0, 0), (0, 1)]);
        let g = b.build();
        assert!(matches!(
            bipartition(&g, Algorithm::Serial, &opts()),
            Bipartition::OddCycle { .. }
        ));
    }

    #[test]
    fn empty_and_isolated() {
        let g = CsrGraph::from_edges(3, &[]);
        match bipartition(&g, Algorithm::Serial, &opts()) {
            Bipartition::Bipartite { side } => assert_eq!(side, vec![0, 0, 0]),
            other => panic!("edgeless graph is bipartite, got {other:?}"),
        }
    }
}
