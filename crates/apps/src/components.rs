//! Connected components via BFS sweeps.

use obfs_core::{run_bfs, Algorithm, BfsOptions, BfsRunner, UNVISITED};
use obfs_graph::{CsrGraph, VertexId};

/// A component labelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = component id in `[0, count)`.
    pub label: Vec<u32>,
    /// Number of components.
    pub count: u32,
}

impl Components {
    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count as usize];
        for &l in &self.label {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty graph).
    pub fn giant_size(&self) -> usize {
        self.sizes().into_iter().max().unwrap_or(0)
    }

    /// Whether two vertices share a component.
    pub fn same_component(&self, a: VertexId, b: VertexId) -> bool {
        self.label[a as usize] == self.label[b as usize]
    }
}

/// Connected components of an undirected (symmetric) graph: repeated
/// parallel BFS from the first unlabelled vertex. For a directed graph
/// this computes *reachability components of the given orientation*;
/// symmetrize first (e.g. `GraphBuilder::symmetrize`) for weak
/// components.
///
/// The sweep is sequential over components but each BFS is parallel —
/// the right trade for real-world graphs whose giant component dominates.
pub fn connected_components(graph: &CsrGraph, algo: Algorithm, opts: &BfsOptions) -> Components {
    let n = graph.num_vertices();
    let mut label = vec![u32::MAX; n];
    let mut count = 0u32;
    if n == 0 {
        return Components { label, count };
    }
    let runner = (algo != Algorithm::Serial).then(|| BfsRunner::new(opts.threads));
    for v in 0..n as VertexId {
        if label[v as usize] != u32::MAX {
            continue;
        }
        let r = match &runner {
            Some(run) => run.run(algo, graph, v, opts),
            None => run_bfs(Algorithm::Serial, graph, v, opts),
        };
        for (u, &l) in r.levels.iter().enumerate() {
            if l != UNVISITED && label[u] == u32::MAX {
                label[u] = count;
            }
        }
        count += 1;
    }
    Components { label, count }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::{gen, GraphBuilder};

    fn opts() -> BfsOptions {
        BfsOptions { threads: 3, ..Default::default() }
    }

    #[test]
    fn single_component_graphs() {
        for g in [gen::cycle(40), gen::grid2d(8, 9), gen::star(30)] {
            let c = connected_components(&g, Algorithm::Bfscl, &opts());
            assert_eq!(c.count, 1);
            assert_eq!(c.giant_size(), g.num_vertices());
        }
    }

    #[test]
    fn island_graph() {
        // Three disjoint triangles + two isolated vertices.
        let mut b = GraphBuilder::new(11).symmetrize(true);
        for base in [0u32, 3, 6] {
            b.add_edge(base, base + 1);
            b.add_edge(base + 1, base + 2);
            b.add_edge(base + 2, base);
        }
        let g = b.build();
        let c = connected_components(&g, Algorithm::Bfswl, &opts());
        assert_eq!(c.count, 5);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 3, 3, 3]);
        assert!(c.same_component(0, 2));
        assert!(!c.same_component(0, 3));
        assert!(!c.same_component(9, 10));
    }

    #[test]
    fn labels_are_dense_and_stable() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (1, 0), (4, 5), (5, 4)]);
        let c = connected_components(&g, Algorithm::Serial, &opts());
        assert_eq!(c.count, 4); // {0,1}, {2}, {3}, {4,5}
        assert!(c.label.iter().all(|&l| l < c.count));
        // First-seen order: component ids increase with the smallest
        // member vertex.
        assert_eq!(c.label[0], 0);
        assert_eq!(c.label[2], 1);
        assert_eq!(c.label[3], 2);
        assert_eq!(c.label[4], 3);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let mut b = GraphBuilder::new(500).symmetrize(true);
        // Two random blobs, disconnected.
        let blob1 = gen::erdos_renyi(250, 1000, 3);
        b.extend(blob1.edges());
        let blob2 = gen::erdos_renyi(250, 1000, 4);
        b.extend(blob2.edges().map(|(u, v)| (u + 250, v + 250)));
        let g = b.build();
        let serial = connected_components(&g, Algorithm::Serial, &opts());
        let parallel = connected_components(&g, Algorithm::Bfswsl, &opts());
        assert_eq!(serial.label, parallel.label);
        assert_eq!(serial.count, parallel.count);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::from_edges(0, &[]);
        let c = connected_components(&g, Algorithm::Serial, &opts());
        assert_eq!(c.count, 0);
        assert_eq!(c.giant_size(), 0);
    }
}
