//! Betweenness centrality via Brandes' algorithm (BFS-based).
//!
//! The paper cites the betweenness centrality problem as a major BFS
//! consumer (§I, ref. \[17\] is a NUMA-aware BC system). Brandes'
//! algorithm runs one BFS per source that counts shortest paths
//! (`sigma`), then accumulates pair dependencies walking the BFS DAG
//! backwards. Exact BC uses all `n` sources; this implementation
//! supports the standard sampled approximation (`sources = k` random
//! pivots, extrapolated by `n / k`).

use obfs_graph::{stats::sample_sources, CsrGraph, VertexId};

/// Exact betweenness centrality (all sources). O(n·m) — use only on
/// small graphs.
pub fn betweenness_centrality_exact(graph: &CsrGraph) -> Vec<f64> {
    let sources: Vec<VertexId> = (0..graph.num_vertices() as VertexId).collect();
    brandes(graph, &sources, 1.0)
}

/// Sampled betweenness centrality: `samples` random pivot sources,
/// extrapolated. `seed` fixes the pivots.
pub fn betweenness_centrality(graph: &CsrGraph, samples: usize, seed: u64) -> Vec<f64> {
    let n = graph.num_vertices();
    if n == 0 || graph.num_edges() == 0 {
        return vec![0.0; n];
    }
    let samples = samples.clamp(1, n);
    let sources = sample_sources(graph, samples, seed);
    brandes(graph, &sources, n as f64 / samples as f64)
}

/// Brandes' accumulation over the given sources, scaling each source's
/// dependency contribution by `scale`.
fn brandes(graph: &CsrGraph, sources: &[VertexId], scale: f64) -> Vec<f64> {
    let n = graph.num_vertices();
    let mut bc = vec![0.0f64; n];
    // Reused per-source workspaces.
    let mut dist = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue: std::collections::VecDeque<VertexId> = std::collections::VecDeque::new();

    for &s in sources {
        // --- forward BFS counting shortest paths ---
        for v in 0..n {
            dist[v] = i64::MAX;
            sigma[v] = 0.0;
            delta[v] = 0.0;
        }
        order.clear();
        queue.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push_back(s);
        while let Some(u) = queue.pop_front() {
            order.push(u);
            let du = dist[u as usize];
            for &w in graph.neighbors(u) {
                if dist[w as usize] == i64::MAX {
                    dist[w as usize] = du + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == du + 1 {
                    sigma[w as usize] += sigma[u as usize];
                }
            }
        }
        // --- backward dependency accumulation ---
        for &u in order.iter().rev() {
            let du = dist[u as usize];
            for &w in graph.neighbors(u) {
                if dist[w as usize] == du + 1 {
                    delta[u as usize] +=
                        sigma[u as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                }
            }
            if u != s {
                bc[u as usize] += scale * delta[u as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::{gen, GraphBuilder};

    #[test]
    fn path_centrality_peaks_in_middle() {
        // Undirected path 0-1-2-3-4: BC (directed pairs both ways) is
        // 2 * [0, 3, 4, 3, 0].
        let g = gen::path(5);
        let bc = betweenness_centrality_exact(&g);
        let expect = [0.0, 6.0, 8.0, 6.0, 0.0];
        for (v, (&got, &want)) in bc.iter().zip(&expect).enumerate() {
            assert!((got - want).abs() < 1e-9, "bc[{v}] = {got}, want {want}");
        }
    }

    #[test]
    fn star_center_carries_everything() {
        // Star K1,4: all 4*3 = 12 ordered leaf pairs route via the hub.
        let g = gen::star(5);
        let bc = betweenness_centrality_exact(&g);
        assert!((bc[0] - 12.0).abs() < 1e-9, "hub bc = {}", bc[0]);
        for leaf_bc in &bc[1..5] {
            assert!(leaf_bc.abs() < 1e-9);
        }
    }

    #[test]
    fn cycle_is_uniform() {
        let g = gen::cycle(8);
        let bc = betweenness_centrality_exact(&g);
        for w in bc.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "cycle BC must be uniform: {bc:?}");
        }
        assert!(bc[0] > 0.0);
    }

    #[test]
    fn shortest_path_multiplicity_split() {
        // Diamond 0-{1,2}-3 is the 4-cycle: each opposite pair has two
        // equal shortest paths, each intermediate carries half per
        // direction, so every vertex ends at BC exactly 1.0.
        let mut b = GraphBuilder::new(4).symmetrize(true);
        b.extend([(0, 1), (0, 2), (1, 3), (2, 3)]);
        let g = b.build();
        let bc = betweenness_centrality_exact(&g);
        for (v, &x) in bc.iter().enumerate() {
            assert!((x - 1.0).abs() < 1e-9, "bc[{v}] = {x}, want 1.0 (C4 symmetry)");
        }
    }

    #[test]
    fn sampled_all_sources_equals_exact() {
        let g = gen::barabasi_albert(100, 2, 5);
        let exact = betweenness_centrality_exact(&g);
        // samples = n with every vertex having degree > 0 means the
        // sampled estimate uses real pivots and scale 1... pivots are
        // sampled WITH replacement, so compare only statistically: the
        // top vertex should match.
        let sampled = betweenness_centrality(&g, 100, 7);
        let argmax = |v: &[f64]| {
            v.iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0
        };
        let (te, ts) = (argmax(&exact), argmax(&sampled));
        // Hubs dominate in BA graphs; both must point at a top-5 hub.
        let mut ranked: Vec<usize> = (0..100).collect();
        ranked.sort_by(|&a, &b| exact[b].partial_cmp(&exact[a]).unwrap());
        assert!(ranked[..5].contains(&te));
        assert!(ranked[..8].contains(&ts), "sampled argmax {ts} not near top");
    }

    #[test]
    fn empty_and_edgeless() {
        let g = obfs_graph::CsrGraph::from_edges(4, &[]);
        assert_eq!(betweenness_centrality(&g, 3, 1), vec![0.0; 4]);
        let g0 = obfs_graph::CsrGraph::from_edges(0, &[]);
        assert!(betweenness_centrality(&g0, 3, 1).is_empty());
    }
}
