//! Unweighted shortest paths on top of the parallel BFS.

use obfs_core::{run_bfs, Algorithm, BfsOptions, UNVISITED};
use obfs_graph::{CsrGraph, GraphBuilder, VertexId, INVALID_VERTEX};

/// A concrete shortest path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortestPath {
    /// Vertices from source to destination inclusive.
    pub vertices: Vec<VertexId>,
}

impl ShortestPath {
    /// Number of edges on the path.
    pub fn hops(&self) -> usize {
        self.vertices.len().saturating_sub(1)
    }
}

/// Shortest path from `src` to `dst` (unweighted), or `None` if
/// unreachable. Runs the configured parallel BFS once and walks the
/// parent chain.
pub fn shortest_path(
    graph: &CsrGraph,
    src: VertexId,
    dst: VertexId,
    algo: Algorithm,
    opts: &BfsOptions,
) -> Option<ShortestPath> {
    let opts = BfsOptions { record_parents: true, ..opts.clone() };
    let r = run_bfs(algo, graph, src, &opts);
    if r.levels[dst as usize] == UNVISITED {
        return None;
    }
    let parents = r.parents.as_ref().expect("record_parents was set");
    let mut vertices = vec![dst];
    let mut cur = dst;
    while cur != src {
        cur = parents[cur as usize];
        debug_assert_ne!(cur, INVALID_VERTEX);
        vertices.push(cur);
    }
    vertices.reverse();
    debug_assert_eq!(vertices.len() as u32, r.levels[dst as usize] + 1);
    Some(ShortestPath { vertices })
}

/// Whether `dst` is reachable from `src` (st-connectivity, one of the
/// paper's §I building-block problems).
pub fn st_connected(
    graph: &CsrGraph,
    src: VertexId,
    dst: VertexId,
    algo: Algorithm,
    opts: &BfsOptions,
) -> bool {
    run_bfs(algo, graph, src, opts).levels[dst as usize] != UNVISITED
}

/// Multi-source BFS distances: `dist[v]` = hops to the nearest seed
/// ([`UNVISITED`] if unreachable from every seed).
///
/// Implemented with the standard virtual-super-source construction (a
/// fresh vertex with an edge to every seed), so the parallel BFS runs
/// unmodified; the super source's extra hop is subtracted afterwards.
pub fn multi_source_distances(
    graph: &CsrGraph,
    seeds: &[VertexId],
    algo: Algorithm,
    opts: &BfsOptions,
) -> Vec<u32> {
    assert!(!seeds.is_empty(), "need at least one seed");
    let n = graph.num_vertices();
    let super_src = n as VertexId;
    let mut b = GraphBuilder::new(n + 1).dedup(false).allow_self_loops(true);
    b.reserve(graph.num_edges() as usize + seeds.len());
    b.extend(graph.edges());
    for &s in seeds {
        assert!((s as usize) < n, "seed {s} out of range");
        b.add_edge(super_src, s);
    }
    let aug = b.build();
    let r = run_bfs(algo, &aug, super_src, opts);
    (0..n)
        .map(|v| {
            let l = r.levels[v];
            if l == UNVISITED {
                UNVISITED
            } else {
                l - 1
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::gen;

    fn opts() -> BfsOptions {
        BfsOptions { threads: 4, ..Default::default() }
    }

    #[test]
    fn path_on_grid_has_manhattan_length() {
        let g = gen::grid2d(10, 10);
        let p = shortest_path(&g, 0, 99, Algorithm::Bfswl, &opts()).unwrap();
        assert_eq!(p.hops(), 18); // (9 + 9)
        // Consecutive vertices must be adjacent.
        for w in p.vertices.windows(2) {
            assert!(g.neighbors(w[0]).contains(&w[1]));
        }
    }

    #[test]
    fn unreachable_returns_none() {
        let g = CsrGraph::from_edges(4, &[(0, 1)]);
        assert!(shortest_path(&g, 0, 3, Algorithm::Bfscl, &opts()).is_none());
        assert!(!st_connected(&g, 0, 3, Algorithm::Bfscl, &opts()));
        assert!(st_connected(&g, 0, 1, Algorithm::Bfscl, &opts()));
    }

    #[test]
    fn trivial_path_src_equals_dst() {
        let g = gen::cycle(5);
        let p = shortest_path(&g, 2, 2, Algorithm::Bfswsl, &opts()).unwrap();
        assert_eq!(p.vertices, vec![2]);
        assert_eq!(p.hops(), 0);
    }

    #[test]
    fn directed_respects_edge_orientation() {
        let g = CsrGraph::from_edges(3, &[(0, 1), (1, 2)]);
        assert!(st_connected(&g, 0, 2, Algorithm::Bfscl, &opts()));
        assert!(!st_connected(&g, 2, 0, Algorithm::Bfscl, &opts()));
    }

    #[test]
    fn multi_source_matches_min_of_single_sources() {
        let g = gen::erdos_renyi(300, 1500, 5);
        let seeds = [3u32, 77, 200];
        let multi = multi_source_distances(&g, &seeds, Algorithm::Bfscl, &opts());
        let singles: Vec<Vec<u32>> = seeds
            .iter()
            .map(|&s| run_bfs(Algorithm::Serial, &g, s, &opts()).levels)
            .collect();
        for v in 0..300 {
            let expect = singles.iter().map(|l| l[v]).min().unwrap();
            assert_eq!(multi[v], expect, "vertex {v}");
        }
    }

    #[test]
    fn multi_source_single_seed_is_plain_bfs() {
        let g = gen::binary_tree(127);
        let multi = multi_source_distances(&g, &[0], Algorithm::Bfswl, &opts());
        let single = run_bfs(Algorithm::Serial, &g, 0, &opts()).levels;
        assert_eq!(multi, single);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_rejected() {
        let g = gen::path(3);
        let _ = multi_source_distances(&g, &[], Algorithm::Bfscl, &opts());
    }
}
