//! Edmonds–Karp maximum flow: BFS-driven augmenting paths on a residual
//! network (the "max-flow computation" building block of the paper's §I).

use obfs_graph::VertexId;

/// A capacitated flow network with explicit residual arcs.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    /// Arc target vertex.
    to: Vec<VertexId>,
    /// Residual capacity of each arc. Arc `2i+1` is the reverse of `2i`.
    cap: Vec<i64>,
    /// Per-vertex arc index lists.
    adj: Vec<Vec<u32>>,
}

impl FlowNetwork {
    /// An empty network on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self { to: Vec::new(), cap: Vec::new(), adj: vec![Vec::new(); n] }
    }

    /// Vertex count of the network.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Add a directed arc `u -> v` with capacity `cap >= 0` (its residual
    /// reverse arc starts at 0).
    pub fn add_edge(&mut self, u: VertexId, v: VertexId, cap: i64) {
        assert!(cap >= 0, "negative capacity");
        assert!((u as usize) < self.adj.len() && (v as usize) < self.adj.len());
        let idx = self.to.len() as u32;
        self.to.push(v);
        self.cap.push(cap);
        self.to.push(u);
        self.cap.push(0);
        self.adj[u as usize].push(idx);
        self.adj[v as usize].push(idx + 1);
    }

    /// Current residual capacity of the `i`-th added forward arc.
    pub fn residual(&self, i: usize) -> i64 {
        self.cap[2 * i]
    }

    /// Flow currently routed on the `i`-th added forward arc.
    pub fn flow(&self, i: usize) -> i64 {
        self.cap[2 * i + 1]
    }
}

/// Edmonds–Karp: repeatedly find a shortest augmenting path by BFS on the
/// residual network and saturate it. Mutates the network's residual
/// capacities; returns the max-flow value.
///
/// O(V · E²) worst case; the BFS here is the serial reference (flow
/// networks in the paper's motivating applications are preprocessing-
/// scale, and the residual graph changes every iteration, which defeats
/// the static-CSR parallel traversals).
pub fn max_flow(net: &mut FlowNetwork, s: VertexId, t: VertexId) -> i64 {
    let n = net.num_vertices();
    assert!((s as usize) < n && (t as usize) < n, "terminal out of range");
    assert_ne!(s, t, "source equals sink");
    let mut total = 0i64;
    let mut pred_arc = vec![u32::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    loop {
        // --- BFS for the shortest augmenting path ---
        for p in pred_arc.iter_mut() {
            *p = u32::MAX;
        }
        queue.clear();
        queue.push_back(s);
        let mut found = false;
        'bfs: while let Some(u) = queue.pop_front() {
            for &a in &net.adj[u as usize] {
                let v = net.to[a as usize];
                if net.cap[a as usize] > 0 && pred_arc[v as usize] == u32::MAX && v != s {
                    pred_arc[v as usize] = a;
                    if v == t {
                        found = true;
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !found {
            return total;
        }
        // --- bottleneck along the path ---
        let mut bottleneck = i64::MAX;
        let mut v = t;
        while v != s {
            let a = pred_arc[v as usize] as usize;
            bottleneck = bottleneck.min(net.cap[a]);
            v = net.to[a ^ 1];
        }
        // --- augment ---
        let mut v = t;
        while v != s {
            let a = pred_arc[v as usize] as usize;
            net.cap[a] -= bottleneck;
            net.cap[a ^ 1] += bottleneck;
            v = net.to[a ^ 1];
        }
        total += bottleneck;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 7);
        assert_eq!(max_flow(&mut net, 0, 1), 7);
        assert_eq!(net.flow(0), 7);
        assert_eq!(net.residual(0), 0);
    }

    #[test]
    fn classic_clrs_network() {
        // CLRS figure 26.1 network: max flow 23.
        let mut net = FlowNetwork::new(6);
        let (s, v1, v2, v3, v4, t) = (0, 1, 2, 3, 4, 5);
        net.add_edge(s, v1, 16);
        net.add_edge(s, v2, 13);
        net.add_edge(v1, v3, 12);
        net.add_edge(v2, v1, 4);
        net.add_edge(v2, v4, 14);
        net.add_edge(v3, v2, 9);
        net.add_edge(v3, t, 20);
        net.add_edge(v4, v3, 7);
        net.add_edge(v4, t, 4);
        assert_eq!(max_flow(&mut net, s, t), 23);
    }

    #[test]
    fn parallel_paths_sum() {
        // Two disjoint unit paths s->a->t and s->b->t.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1);
        net.add_edge(1, 3, 1);
        net.add_edge(0, 2, 1);
        net.add_edge(2, 3, 1);
        assert_eq!(max_flow(&mut net, 0, 3), 2);
    }

    #[test]
    fn bottleneck_limits_flow() {
        // s -> a (100) -> t (1): flow 1.
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 100);
        net.add_edge(1, 2, 1);
        assert_eq!(max_flow(&mut net, 0, 2), 1);
    }

    #[test]
    fn requires_residual_back_edges() {
        // The classic case where a greedy path must be partially undone:
        //   s->a:1, s->b:1, a->b:1, a->t:1, b->t:1 ... max flow 2 but a
        //   first path s->a->b->t forces flow back over a->b.
        let mut net = FlowNetwork::new(4);
        let (s, a, b, t) = (0, 1, 2, 3);
        net.add_edge(s, a, 1);
        net.add_edge(s, b, 1);
        net.add_edge(a, b, 1);
        net.add_edge(a, t, 1);
        net.add_edge(b, t, 1);
        assert_eq!(max_flow(&mut net, s, t), 2);
    }

    #[test]
    fn disconnected_sink_zero_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 5);
        assert_eq!(max_flow(&mut net, 0, 3), 0);
    }

    #[test]
    fn flow_conservation_holds() {
        let mut net = FlowNetwork::new(5);
        let arcs = [(0u32, 1u32, 10i64), (0, 2, 5), (1, 2, 15), (1, 3, 9), (2, 3, 10), (3, 4, 12), (2, 4, 3)];
        for &(u, v, c) in &arcs {
            net.add_edge(u, v, c);
        }
        let f = max_flow(&mut net, 0, 4);
        assert!(f > 0);
        // Net flow into each internal vertex is zero.
        let mut balance = [0i64; 5];
        for (i, &(u, v, _)) in arcs.iter().enumerate() {
            let fl = net.flow(i);
            balance[u as usize] -= fl;
            balance[v as usize] += fl;
        }
        assert_eq!(balance[0], -f);
        assert_eq!(balance[4], f);
        #[allow(clippy::needless_range_loop)] // v is the vertex id in the message
        for v in 1..4 {
            assert_eq!(balance[v], 0, "conservation violated at {v}");
        }
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn same_terminals_rejected() {
        let mut net = FlowNetwork::new(2);
        let _ = max_flow(&mut net, 1, 1);
    }
}
