//! BFS-ball graph clustering.
//!
//! The deterministic clustering primitive behind the paper's ref. \[8\]
//! (Beckmann & Meyer, *Deterministic graph-clustering in external memory
//! with applications to breadth-first search*): repeatedly pick the
//! smallest unclustered vertex and claim its unclustered BFS ball of a
//! fixed radius as one cluster. Produces clusters whose internal
//! diameter is at most `2 * radius`, the property the downstream BFS
//! applications rely on.

use obfs_core::UNVISITED;
use obfs_graph::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// A clustering: `cluster[v]` = cluster id, plus the cluster centers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    /// `cluster[v]` = cluster id.
    pub cluster: Vec<u32>,
    /// Ball centers, indexed by cluster id.
    pub centers: Vec<VertexId>,
}

impl Clustering {
    /// Number of clusters.
    pub fn count(&self) -> usize {
        self.centers.len()
    }

    /// Number of vertices per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count()];
        for &c in &self.cluster {
            sizes[c as usize] += 1;
        }
        sizes
    }
}

/// Cluster the graph into BFS balls of radius `radius` (>= 0). Every
/// vertex lands in exactly one cluster; cluster ids are dense and
/// ordered by center discovery.
///
/// The ball growth is a truncated BFS that only claims *unclustered*
/// vertices, so later balls flow around earlier ones. Runs serially —
/// clustering is a preprocessing step whose output feeds the parallel
/// traversals, not the hot path itself.
pub fn bfs_ball_clustering(graph: &CsrGraph, radius: u32) -> Clustering {
    let n = graph.num_vertices();
    let mut cluster = vec![u32::MAX; n];
    let mut centers = Vec::new();
    let mut depth = vec![UNVISITED; n];
    let mut q = VecDeque::new();
    for c in 0..n as VertexId {
        if cluster[c as usize] != u32::MAX {
            continue;
        }
        let id = centers.len() as u32;
        centers.push(c);
        cluster[c as usize] = id;
        depth[c as usize] = 0;
        q.clear();
        q.push_back(c);
        while let Some(u) = q.pop_front() {
            let du = depth[u as usize];
            if du >= radius {
                continue;
            }
            for &w in graph.neighbors(u) {
                if cluster[w as usize] == u32::MAX {
                    cluster[w as usize] = id;
                    depth[w as usize] = du + 1;
                    q.push_back(w);
                }
            }
        }
    }
    Clustering { cluster, centers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use obfs_graph::gen;

    #[test]
    fn radius_zero_is_singletons() {
        let g = gen::cycle(7);
        let c = bfs_ball_clustering(&g, 0);
        assert_eq!(c.count(), 7);
        assert!(c.sizes().iter().all(|&s| s == 1));
    }

    #[test]
    fn huge_radius_is_one_cluster_per_component() {
        let g = gen::grid2d(6, 6);
        let c = bfs_ball_clustering(&g, 1000);
        assert_eq!(c.count(), 1);
        assert_eq!(c.sizes(), vec![36]);
    }

    #[test]
    fn every_vertex_clustered_exactly_once() {
        let g = gen::barabasi_albert(400, 3, 3);
        let c = bfs_ball_clustering(&g, 2);
        assert!(c.cluster.iter().all(|&x| (x as usize) < c.count()));
        assert_eq!(c.sizes().iter().sum::<usize>(), 400);
    }

    #[test]
    fn cluster_diameter_bounded() {
        // Every member of a cluster is within `radius` hops of its
        // center *in the full graph* (claims only shrink balls, and a
        // claimed vertex was reached within the radius).
        let g = gen::erdos_renyi(300, 1800, 9);
        let radius = 2;
        let c = bfs_ball_clustering(&g, radius);
        for (id, &center) in c.centers.iter().enumerate() {
            let dist = obfs_graph::stats::bfs_levels(&g, center);
            #[allow(clippy::needless_range_loop)] // v is the vertex id, used in two arrays
            for v in 0..300 {
                if c.cluster[v] == id as u32 {
                    assert!(
                        dist[v] <= radius,
                        "vertex {v} in cluster {id} is {} hops from center {center}",
                        dist[v]
                    );
                }
            }
        }
    }

    #[test]
    fn path_clusters_are_contiguous_runs() {
        let g = gen::path(20);
        let c = bfs_ball_clustering(&g, 1);
        // Ball of radius 1 around 0 claims {0,1}; next center 2 claims
        // {2,3}, ... — 10 clusters of 2.
        assert_eq!(c.count(), 10);
        assert!(c.sizes().iter().all(|&s| s == 2));
    }

    #[test]
    fn disconnected_components_get_own_clusters() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2)]);
        let c = bfs_ball_clustering(&g, 5);
        assert_eq!(c.count(), 2);
        assert_eq!(c.cluster[0], c.cluster[1]);
        assert_ne!(c.cluster[0], c.cluster[2]);
    }
}
