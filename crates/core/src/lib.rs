//! The paper's parallel BFS algorithms.
//!
//! Two families, each in a locked and a lock-free (optimistic) variant:
//!
//! | Acronym  | Algorithm | Module |
//! |----------|-----------|--------|
//! | `sbfs`   | serial reference BFS | [`serial`] |
//! | `BFSC`   | centralized segment dispatch, global lock | [`centralized`] |
//! | `BFSCL`  | centralized, optimistic lock-free | [`centralized`] |
//! | `BFSDL`  | decentralized (j queue pools), lock-free | [`decentralized`] |
//! | `BFSW`   | randomized work-stealing, per-victim locks | [`worksteal`] |
//! | `BFSWL`  | work-stealing, optimistic lock-free | [`worksteal`] |
//! | `BFSWS`  | two-phase scale-free work-stealing, locks | [`scalefree`] |
//! | `BFSWSL` | two-phase scale-free, lock-free | [`scalefree`] |
//! | `EdgeCL` | §IV-D extension: edge-balanced optimistic dispatch | [`ext`] |
//!
//! All parallel variants share the level-synchronous driver in [`driver`]:
//! per-thread input/output queue arrays (`Qin[p]` / `Qout[p]`), a shared
//! `level[]` array written with benign races, queue swap at each level
//! barrier. The lock-free variants manipulate the shared queue cursors
//! with plain racy loads/stores ([`obfs_sync::racy`]) and recover from the
//! resulting invalid / overlapping / stale segments exactly as §IV of the
//! paper describes: sanity-check and retry for invalid segments, and a
//! zero-on-read sentinel protocol that turns overlap into bounded
//! duplicate work.

#![warn(missing_docs)]

pub mod batch;
pub mod centralized;
pub mod decentralized;
pub mod dispatch;
pub mod driver;
pub mod ext;
pub mod flight;
pub mod frontier;
pub mod model;
pub mod options;
pub mod perthread;
pub mod scalefree;
pub mod scan;
pub mod serial;
pub mod state;
pub mod stats;
pub mod validate;
pub mod worksteal;

pub use batch::{BatchQueryResult, BatchResult, MAX_BATCH};
pub use dispatch::{KernelChoice, ScanBackend};
pub use flight::FlightRecording;
pub use options::{
    Algorithm, BfsOptions, CompactionPolicy, DedupMode, Direction, ForcedDirection, HybridPolicy,
    SegmentPolicy, WatchdogPolicy,
};
pub use stats::{LevelStats, Outcome, RunHists, RunStats, StealCounters, ThreadStats};

// Re-exported so engine-layer callers name the cancellation vocabulary
// through one crate.
pub use obfs_sync::{CancelCause, CancelToken, Clock, ManualClock};

use obfs_graph::CsrGraph;
use obfs_graph::VertexId;
use obfs_runtime::{LevelPool, PoolError};

/// Level value for vertices not reached from the source.
pub const UNVISITED: u32 = u32::MAX;

/// Result of one BFS run.
#[derive(Debug, Clone)]
pub struct BfsResult {
    /// `levels[v]` = BFS distance from the source, [`UNVISITED`] if
    /// unreachable.
    pub levels: Vec<u32>,
    /// Parent of each vertex in some BFS tree (only when
    /// [`BfsOptions::record_parents`] is set); the source is its own
    /// parent, unreachable vertices get [`obfs_graph::INVALID_VERTEX`].
    pub parents: Option<Vec<VertexId>>,
    /// Aggregated counters and timings.
    pub stats: RunStats,
}

impl BfsResult {
    /// Number of vertices reached (including the source).
    pub fn reached(&self) -> usize {
        self.levels.iter().filter(|&&l| l != UNVISITED).count()
    }

    /// Deepest level reached.
    pub fn depth(&self) -> u32 {
        self.levels.iter().copied().filter(|&l| l != UNVISITED).max().unwrap_or(0)
    }
}

/// Run `algo` from `src`, creating a fresh worker pool of
/// `opts.threads` workers. For repeated runs (benchmarks) use
/// [`BfsRunner`] to amortize pool creation.
pub fn run_bfs(algo: Algorithm, graph: &CsrGraph, src: VertexId, opts: &BfsOptions) -> BfsResult {
    if algo == Algorithm::Serial {
        return serial::serial_bfs_with_opts(graph, src, opts);
    }
    let pool = LevelPool::new(opts.threads);
    driver::run_on_pool(algo, graph, src, opts, &pool)
}

/// As [`run_bfs`], but surfacing a worker panic as [`PoolError`] instead
/// of panicking the caller.
pub fn try_run_bfs(
    algo: Algorithm,
    graph: &CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
) -> Result<BfsResult, PoolError> {
    if algo == Algorithm::Serial {
        return Ok(serial::serial_bfs_with_opts(graph, src, opts));
    }
    let pool = LevelPool::new(opts.threads);
    driver::try_run_on_pool(algo, graph, src, opts, &pool)
}

/// Run `algo` from every source in `sources` (1..=[`MAX_BATCH`]) in one
/// batched bit-parallel traversal; result `q` answers `sources[q]`.
/// Panics on a worker failure; see [`try_run_batch`]. Incompatible with
/// [`DedupMode::OwnerArray`] (asserted).
pub fn run_batch(
    algo: Algorithm,
    graph: &CsrGraph,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> BatchResult {
    try_run_batch(algo, graph, sources, opts)
        .unwrap_or_else(|e| panic!("BFS worker pool failed: {e}"))
}

/// As [`run_batch`], surfacing a worker panic as [`PoolError`].
pub fn try_run_batch(
    algo: Algorithm,
    graph: &CsrGraph,
    sources: &[VertexId],
    opts: &BfsOptions,
) -> Result<BatchResult, PoolError> {
    if algo == Algorithm::Serial {
        return Ok(batch::serial_batch(graph, sources, opts));
    }
    let pool = LevelPool::new(opts.threads);
    driver::try_run_batch_on_pool(algo, graph, sources, opts, &pool)
}

/// A reusable runner owning a worker pool.
pub struct BfsRunner {
    pool: LevelPool,
}

impl BfsRunner {
    /// Create a runner with `threads` persistent workers.
    pub fn new(threads: usize) -> Self {
        Self { pool: LevelPool::new(threads) }
    }

    /// Number of workers in the owned pool.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Run `algo`; `opts.threads` must equal the pool size (asserted).
    pub fn run(
        &self,
        algo: Algorithm,
        graph: &CsrGraph,
        src: VertexId,
        opts: &BfsOptions,
    ) -> BfsResult {
        if algo == Algorithm::Serial {
            return serial::serial_bfs_with_opts(graph, src, opts);
        }
        assert_eq!(
            opts.threads,
            self.pool.threads(),
            "BfsOptions::threads must match the runner's pool size"
        );
        driver::run_on_pool(algo, graph, src, opts, &self.pool)
    }

    /// As [`BfsRunner::run`], surfacing a worker panic as [`PoolError`]
    /// instead of panicking. On `Err` the pool is poisoned; recover by
    /// replacing the runner (or let `obfs-runtime`'s `PoolManager`
    /// rebuild for you).
    pub fn try_run(
        &self,
        algo: Algorithm,
        graph: &CsrGraph,
        src: VertexId,
        opts: &BfsOptions,
    ) -> Result<BfsResult, PoolError> {
        if algo == Algorithm::Serial {
            return Ok(serial::serial_bfs_with_opts(graph, src, opts));
        }
        assert_eq!(
            opts.threads,
            self.pool.threads(),
            "BfsOptions::threads must match the runner's pool size"
        );
        driver::try_run_on_pool(algo, graph, src, opts, &self.pool)
    }

    /// As [`run_batch`], on the owned pool: one batched traversal
    /// answering every source in `sources` (1..=[`MAX_BATCH`]).
    pub fn run_batch(
        &self,
        algo: Algorithm,
        graph: &CsrGraph,
        sources: &[VertexId],
        opts: &BfsOptions,
    ) -> BatchResult {
        self.try_run_batch(algo, graph, sources, opts)
            .unwrap_or_else(|e| panic!("BFS worker pool failed: {e}"))
    }

    /// As [`BfsRunner::run_batch`], surfacing a worker panic as
    /// [`PoolError`]. On `Err` the pool is poisoned; replace the runner.
    pub fn try_run_batch(
        &self,
        algo: Algorithm,
        graph: &CsrGraph,
        sources: &[VertexId],
        opts: &BfsOptions,
    ) -> Result<BatchResult, PoolError> {
        if algo == Algorithm::Serial {
            return Ok(batch::serial_batch(graph, sources, opts));
        }
        assert_eq!(
            opts.threads,
            self.pool.threads(),
            "BfsOptions::threads must match the runner's pool size"
        );
        driver::try_run_batch_on_pool(algo, graph, sources, opts, &self.pool)
    }

    /// As [`BfsRunner::run`], but probing hybrid bottom-up levels
    /// through a caller-provided in-edge graph (must be
    /// `graph.transpose()`, or the graph itself for symmetric graphs) so
    /// repeated runs amortize the transpose. Ignored unless
    /// [`BfsOptions::hybrid`] is set.
    pub fn run_with_transpose<'g>(
        &self,
        algo: Algorithm,
        graph: &'g CsrGraph,
        transpose: Option<&'g CsrGraph>,
        src: VertexId,
        opts: &BfsOptions,
    ) -> BfsResult {
        if algo == Algorithm::Serial {
            return serial::serial_bfs_with_opts(graph, src, opts);
        }
        assert_eq!(
            opts.threads,
            self.pool.threads(),
            "BfsOptions::threads must match the runner's pool size"
        );
        driver::run_on_pool_with_transpose(algo, graph, src, opts, &self.pool, transpose)
    }
}
