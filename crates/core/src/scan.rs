//! Prefix-sum frontier compaction primitives and the bitmap scan kernels.
//!
//! # The compaction pipeline
//!
//! Dense BFS levels pay real overhead in queue-segment dispatch: racy
//! cursor traffic, sanity-check retries, and duplicate explorations. For
//! a level the leader predicts dense, the driver instead materializes the
//! frontier as one contiguous array via a work-efficient **parallel
//! exclusive prefix sum** (Tithi/Fogel/Chowdhury, arXiv:2209.08764) and
//! consumes it with a perfectly balanced static partition:
//!
//! 1. **Fill / reduce** — each worker rebuilds its chunk-aligned share of
//!    a frontier bitmap from the `level[]` array (single writer per word,
//!    like `bottom_up_level`), records a popcount per
//!    [`COMPACT_CHUNK_WORDS`]-word chunk, and publishes its block total.
//! 2. **Scan** — after the barrier publishes the block totals, every
//!    worker independently computes the same exclusive prefix over the
//!    `p` totals ([`block_prefix`]; replicated O(p) work instead of a
//!    serial section — barrier-free within the pass).
//! 3. **Downsweep / materialize** — each worker emits its chunks' set
//!    bits into the disjoint output range `[prefix, prefix + total)` the
//!    scan assigned it (single writer per output slot).
//!
//! Every pass is barrier-separated and single-writer within, so the
//! whole pipeline needs no locks and no atomic RMW — the same discipline
//! as the paper's optimistic dispatchers, minus even the benign races.
//!
//! # Scan kernels
//!
//! The bitmap walks (popcount, set-bit enumeration) come in two
//! interchangeable kernels selected at startup by [`crate::dispatch`]:
//! word-at-a-time (skip zero words, `trailing_zeros` iteration) and a
//! branchy per-bit scalar fallback. Both emit vertices in ascending
//! order, so the choice never changes results — only speed.

use crate::dispatch::ScanBackend;
use crate::frontier::{FrontierBitmap, BITMAP_WORD_BITS};
use crate::perthread::PerThread;
use obfs_runtime::LevelPool;
use std::cell::UnsafeCell;

/// Bitmap words per compaction chunk (2048 vertices): fine enough that
/// per-chunk popcounts load-balance skewed frontiers, coarse enough that
/// a chunk spans whole cache lines of bitmap words.
pub const COMPACT_CHUNK_WORDS: usize = 64;

/// Serial exclusive prefix sum: `out[i] = xs[0] + … + xs[i-1]`, with one
/// extra trailing element holding the total (`out.len() == xs.len() + 1`).
/// The reference the property tests pin the parallel scan against, and
/// the leader-side helper for small inputs.
pub fn exclusive_scan(xs: &[u64]) -> Vec<u64> {
    let mut out = Vec::with_capacity(xs.len() + 1);
    let mut acc = 0u64;
    for &x in xs {
        out.push(acc);
        acc += x;
    }
    out.push(acc);
    out
}

/// Contiguous block `[lo, hi)` of `len` items owned by `tid` of
/// `threads` (the last blocks may be empty when `len < threads`).
#[inline]
pub fn block_range(len: usize, threads: usize, tid: usize) -> (usize, usize) {
    let per = obfs_util::div_ceil(len, threads.max(1));
    ((tid * per).min(len), ((tid + 1) * per).min(len))
}

/// Exclusive prefix of the published block totals: the sum of
/// `totals[..tid]`. Every worker computes this independently after the
/// barrier — replicated O(p) work in place of a serial section.
#[inline]
pub fn block_prefix(totals: &[u64], tid: usize) -> u64 {
    totals[..tid].iter().sum()
}

/// Count the set bits of `bm.words[wlo..whi]` with the selected kernel.
/// Both kernels return the same count; the wordwise one is a straight
/// `count_ones` per word, the scalar one tests every bit individually.
pub fn popcount_words(backend: ScanBackend, bm: &FrontierBitmap, wlo: usize, whi: usize) -> u64 {
    match backend {
        ScanBackend::Wordwise => {
            let mut c = 0u64;
            for wi in wlo..whi {
                c += u64::from(bm.word(wi).count_ones());
            }
            c
        }
        ScanBackend::Scalar => {
            let mut c = 0u64;
            for wi in wlo..whi {
                let w = bm.word(wi);
                for b in 0..BITMAP_WORD_BITS {
                    c += u64::from(w >> b & 1);
                }
            }
            c
        }
    }
}

// lint:region hot-path:scan-emit
/// Call `f(v)` for every set bit of `bm.words[wlo..whi]`, ascending
/// (`v = word_index * BITMAP_WORD_BITS + bit`). The wordwise kernel
/// skips zero words outright and walks set bits by `trailing_zeros`;
/// the scalar kernel tests every bit. Emission order is identical.
pub fn for_each_set(
    backend: ScanBackend,
    bm: &FrontierBitmap,
    wlo: usize,
    whi: usize,
    mut f: impl FnMut(usize),
) {
    match backend {
        ScanBackend::Wordwise => {
            for wi in wlo..whi {
                let mut w = bm.word(wi);
                if w == 0 {
                    continue;
                }
                let base = wi * BITMAP_WORD_BITS;
                while w != 0 {
                    f(base + w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
        }
        ScanBackend::Scalar => {
            for wi in wlo..whi {
                let w = bm.word(wi);
                let base = wi * BITMAP_WORD_BITS;
                for b in 0..BITMAP_WORD_BITS {
                    if w >> b & 1 == 1 {
                        f(base + b);
                    }
                }
            }
        }
    }
}

/// Call `f(base + bit)` for every set bit of the single word `w`,
/// ascending. The inner step of the wordwise kernels (bottom-up
/// candidate scan, compaction emit) — shared so both agree on order.
#[inline]
pub fn for_each_set_in_word(w: u32, base: usize, mut f: impl FnMut(usize)) {
    let mut w = w;
    while w != 0 {
        f(base + w.trailing_zeros() as usize);
        w &= w - 1;
    }
}
// lint:endregion

/// Shared output slots for [`parallel_exclusive_scan`]: each worker
/// writes only the disjoint index range the scan assigned it, and the
/// pool join publishes everything before the buffer is read back.
struct ScanSlots(Box<[UnsafeCell<u64>]>);

// SAFETY: workers write disjoint index ranges (enforced by
// `block_range`) and the pool join orders all writes before the
// single-threaded read-back — the same discipline as `PerThread`.
unsafe impl Sync for ScanSlots {}

impl ScanSlots {
    /// # Safety
    /// Call only for an index in the caller's own disjoint range while
    /// the pool region is active (no other writer of slot `i`).
    unsafe fn write(&self, i: usize, v: u64) {
        *self.0[i].get() = v;
    }
}

// lint:region hot-path:parallel-scan
/// Run the three-pass parallel exclusive prefix sum of `xs` on `pool`,
/// returning `out` with `out[i] = xs[0] + … + xs[i-1]` and a trailing
/// total (`out.len() == xs.len() + 1`) — element-for-element equal to
/// [`exclusive_scan`]. This is the standalone form of the compaction
/// scan (same phase structure, same helpers), kept callable on bare
/// slices so the property tests can pin it against the serial reference
/// across lengths and thread counts.
pub fn parallel_exclusive_scan(pool: &LevelPool, xs: &[u64]) -> Vec<u64> {
    let threads = pool.threads();
    let slots = ScanSlots(
        (0..xs.len() + 1).map(|_| UnsafeCell::new(0u64)).collect::<Vec<_>>().into_boxed_slice(),
    );
    // Pass 1 results: one published block total per worker.
    let totals = PerThread::new(threads, |_| 0u64);
    pool.run(|ctx| {
        let tid = ctx.tid();
        let (lo, hi) = block_range(xs.len(), threads, tid);
        // Pass 1: reduce my block.
        // SAFETY: own slot only while the region is active.
        unsafe { *totals.get_mut(tid) = xs[lo..hi].iter().sum() };
        ctx.barrier().wait();
        // Pass 2 (replicated): exclusive prefix over the block totals.
        // SAFETY: every peer published its slot before the barrier and
        // none writes again — read-only from here on.
        let all: Vec<u64> = (0..threads).map(|k| unsafe { *totals.get(k) }).collect();
        let mut acc = block_prefix(&all, tid);
        // Pass 3: downsweep my block into my disjoint output range.
        for (i, &x) in xs.iter().enumerate().take(hi).skip(lo) {
            // SAFETY: index ranges are disjoint per worker (block_range).
            unsafe { slots.write(i, acc) };
            acc += x;
        }
        if tid == threads - 1 {
            // The last block's owner also writes the trailing total.
            // SAFETY: index xs.len() belongs to no block; only this
            // worker touches it.
            unsafe { slots.write(xs.len(), acc) };
        }
    })
    .expect("scan worker panicked");
    slots.0.into_vec().into_iter().map(UnsafeCell::into_inner).collect()
}
// lint:endregion

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_scan_reference() {
        assert_eq!(exclusive_scan(&[]), vec![0]);
        assert_eq!(exclusive_scan(&[7]), vec![0, 7]);
        assert_eq!(exclusive_scan(&[1, 2, 3]), vec![0, 1, 3, 6]);
    }

    #[test]
    fn block_ranges_partition() {
        for (len, threads) in [(0, 4), (1, 4), (3, 4), (4, 4), (17, 4), (4100, 8)] {
            let mut next = 0;
            for t in 0..threads {
                let (lo, hi) = block_range(len, threads, t);
                assert_eq!(lo, next.min(len), "len={len} t={t}");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, len, "blocks must cover [0, len)");
        }
    }

    #[test]
    fn parallel_scan_matches_serial_smoke() {
        let pool = LevelPool::new(3);
        let xs: Vec<u64> = (0..257).map(|i| (i * 37 + 11) % 101).collect();
        assert_eq!(parallel_exclusive_scan(&pool, &xs), exclusive_scan(&xs));
        assert_eq!(parallel_exclusive_scan(&pool, &[]), vec![0]);
    }

    #[test]
    fn kernels_agree_on_popcount_and_order() {
        let bm = FrontierBitmap::new(200);
        bm.set_word(0, 0xDEAD_BEEF);
        bm.set_word(3, 0x8000_0001);
        bm.set_word(6, 0xFF); // bits 192..=199 only (len 200)
        let words = bm.word_count();
        assert_eq!(
            popcount_words(ScanBackend::Wordwise, &bm, 0, words),
            popcount_words(ScanBackend::Scalar, &bm, 0, words),
        );
        let mut a = Vec::new();
        let mut b = Vec::new();
        for_each_set(ScanBackend::Wordwise, &bm, 0, words, |v| a.push(v));
        for_each_set(ScanBackend::Scalar, &bm, 0, words, |v| b.push(v));
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "ascending emission");
        let mut c = Vec::new();
        for_each_set_in_word(0xDEAD_BEEF, 0, |v| c.push(v));
        assert_eq!(c, a.iter().copied().take_while(|&v| v < 32).collect::<Vec<_>>());
    }
}
