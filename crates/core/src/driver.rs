//! The level-synchronous driver shared by every parallel BFS variant.
//!
//! Per level, every worker:
//! 1. runs the strategy's `level_start` hook (reset its segment
//!    descriptor, pick a pool, ...), then waits at the barrier;
//! 2. consumes Qin according to the strategy, pushing discoveries into its
//!    private output queue `Qout[tid]`;
//! 3. waits at the barrier; the last arriver (leader) runs the serial
//!    section: sums the new frontier size and lets the strategy build any
//!    leader-side work lists for the next level;
//! 4. if the next frontier is empty the run ends; otherwise each worker
//!    resets its old input queue (which becomes its next output queue)
//!    and the parity flips.
//!
//! The barrier at step 1 makes the descriptors and resets of step 4
//! visible before anyone consumes; the barrier at step 3 publishes all
//! level-`d` writes (including the benign-racy `level[]` stores) before
//! level `d+1` begins — that is the synchronization point that bounds the
//! paper's races to within a single level.

use crate::frontier::decode;
use crate::options::{Algorithm, BfsOptions, Direction};
use crate::perthread::PerThread;
use crate::state::RunState;
use crate::stats::{Outcome, RunStats, ThreadStats};
use crate::{BfsResult, UNVISITED};
use obfs_graph::{CsrGraph, VertexId, INVALID_VERTEX};
use obfs_runtime::{LevelPool, PoolError, WorkerCtx};
use obfs_sync::{flight, CancelCause};
use obfs_util::Xoshiro256StarStar;

/// Per-thread, per-level working context handed to strategies.
pub struct LevelEnv<'r, 'g> {
    /// The shared run state.
    pub st: &'r RunState<'g>,
    /// Current queue parity: `st.qin(parity)` is this level's input.
    pub parity: usize,
    /// Current BFS level (depth of the vertices being consumed).
    pub level: u32,
}

/// One BFS algorithm's per-level behaviour. The driver owns everything
/// else (init, barriers, swap, termination, stats).
pub trait Strategy: Sync {
    /// Per-thread hook before the level's consumption barrier. Typical
    /// use: reset this thread's segment descriptor from its input queue.
    fn level_start(&self, _env: &LevelEnv<'_, '_>, _tid: usize) {}

    /// Leader-only hook, run inside the barrier serial section right
    /// before a level begins (after queues were reset and parity
    /// flipped). `env` describes the *upcoming* level.
    fn serial_prepare(&self, _env: &LevelEnv<'_, '_>) {}

    /// Consume the level. May use `ctx.barrier()` for internal phases as
    /// long as every thread performs the same number of waits.
    fn consume(
        &self,
        env: &LevelEnv<'_, '_>,
        ctx: &WorkerCtx<'_>,
        tid: usize,
        out_rear: &mut usize,
        rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    );
}

/// Dispatch an algorithm onto a pool. `opts.threads` must equal the pool
/// width.
pub fn run_on_pool(
    algo: Algorithm,
    graph: &CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
) -> BfsResult {
    run_on_pool_with_transpose(algo, graph, src, opts, pool, None)
}

/// As [`run_on_pool`], but returning the pool failure (a worker panic)
/// instead of panicking — what the query engine needs to retry on a
/// rebuilt pool.
pub fn try_run_on_pool(
    algo: Algorithm,
    graph: &CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
) -> Result<BfsResult, PoolError> {
    try_run_on_pool_with_transpose(algo, graph, src, opts, pool, None)
}

/// As [`run_on_pool`], but probing hybrid bottom-up levels through a
/// caller-provided in-edge graph (must be `graph.transpose()`, or the
/// graph itself for symmetric graphs; benchmarks amortize it across
/// runs). Ignored unless [`BfsOptions::hybrid`] is set; when hybrid is
/// set and no transpose is given, one is built before the traversal
/// timer starts.
pub fn run_on_pool_with_transpose<'g>(
    algo: Algorithm,
    graph: &'g CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
    transpose: Option<&'g CsrGraph>,
) -> BfsResult {
    try_run_on_pool_with_transpose(algo, graph, src, opts, pool, transpose)
        .unwrap_or_else(|e| panic!("BFS worker pool failed: {e}"))
}

/// As [`run_on_pool_with_transpose`], surfacing pool failures.
pub fn try_run_on_pool_with_transpose<'g>(
    algo: Algorithm,
    graph: &'g CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
    transpose: Option<&'g CsrGraph>,
) -> Result<BfsResult, PoolError> {
    assert_eq!(opts.threads, pool.threads(), "options/pool thread mismatch");
    assert!(
        (src as usize) < graph.num_vertices(),
        "source {src} out of range for n={}",
        graph.num_vertices()
    );
    let t = transpose;
    match algo {
        Algorithm::Serial => Ok(crate::serial::serial_bfs_with_opts(graph, src, opts)),
        Algorithm::Bfsc => {
            try_drive_with_transpose(&crate::centralized::CentralLocked, graph, src, opts, pool, t)
        }
        Algorithm::Bfscl => {
            try_drive_with_transpose(&crate::centralized::CentralLockfree, graph, src, opts, pool, t)
        }
        Algorithm::Bfsdl => {
            try_drive_with_transpose(&crate::decentralized::Decentralized, graph, src, opts, pool, t)
        }
        Algorithm::Bfsw => {
            try_drive_with_transpose(&crate::worksteal::WorkStealing { locked: true, scale_free: false }, graph, src, opts, pool, t)
        }
        Algorithm::Bfswl => {
            try_drive_with_transpose(&crate::worksteal::WorkStealing { locked: false, scale_free: false }, graph, src, opts, pool, t)
        }
        Algorithm::Bfsws => {
            try_drive_with_transpose(&crate::worksteal::WorkStealing { locked: true, scale_free: true }, graph, src, opts, pool, t)
        }
        Algorithm::Bfswsl => {
            try_drive_with_transpose(&crate::worksteal::WorkStealing { locked: false, scale_free: true }, graph, src, opts, pool, t)
        }
        Algorithm::EdgeCl => {
            try_drive_with_transpose(&crate::ext::EdgePartitioned, graph, src, opts, pool, t)
        }
    }
}

/// Batch dispatch: one traversal answers every source in `sources` (see
/// [`crate::batch`]). `Algorithm::Serial` degrades to a loop of serial
/// runs; every parallel variant shares the batched driver.
pub fn try_run_batch_on_pool(
    algo: Algorithm,
    graph: &CsrGraph,
    sources: &[VertexId],
    opts: &BfsOptions,
    pool: &LevelPool,
) -> Result<crate::batch::BatchResult, PoolError> {
    try_run_batch_on_pool_with_transpose(algo, graph, sources, opts, pool, None)
}

/// As [`try_run_batch_on_pool`], with a caller-provided in-edge graph for
/// hybrid bottom-up levels.
pub fn try_run_batch_on_pool_with_transpose<'g>(
    algo: Algorithm,
    graph: &'g CsrGraph,
    sources: &[VertexId],
    opts: &BfsOptions,
    pool: &LevelPool,
    transpose: Option<&'g CsrGraph>,
) -> Result<crate::batch::BatchResult, PoolError> {
    if algo == Algorithm::Serial {
        return Ok(crate::batch::serial_batch(graph, sources, opts));
    }
    assert_eq!(opts.threads, pool.threads(), "options/pool thread mismatch");
    let t = transpose;
    match algo {
        Algorithm::Serial => unreachable!("handled above"),
        Algorithm::Bfsc => {
            try_drive_batch_with_transpose(&crate::centralized::CentralLocked, graph, sources, opts, pool, t)
        }
        Algorithm::Bfscl => {
            try_drive_batch_with_transpose(&crate::centralized::CentralLockfree, graph, sources, opts, pool, t)
        }
        Algorithm::Bfsdl => {
            try_drive_batch_with_transpose(&crate::decentralized::Decentralized, graph, sources, opts, pool, t)
        }
        Algorithm::Bfsw => {
            try_drive_batch_with_transpose(&crate::worksteal::WorkStealing { locked: true, scale_free: false }, graph, sources, opts, pool, t)
        }
        Algorithm::Bfswl => {
            try_drive_batch_with_transpose(&crate::worksteal::WorkStealing { locked: false, scale_free: false }, graph, sources, opts, pool, t)
        }
        Algorithm::Bfsws => {
            try_drive_batch_with_transpose(&crate::worksteal::WorkStealing { locked: true, scale_free: true }, graph, sources, opts, pool, t)
        }
        Algorithm::Bfswsl => {
            try_drive_batch_with_transpose(&crate::worksteal::WorkStealing { locked: false, scale_free: true }, graph, sources, opts, pool, t)
        }
        Algorithm::EdgeCl => {
            try_drive_batch_with_transpose(&crate::ext::EdgePartitioned, graph, sources, opts, pool, t)
        }
    }
}

/// The shared driver.
pub fn drive<S: Strategy>(
    strategy: &S,
    graph: &CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
) -> BfsResult {
    drive_with_transpose(strategy, graph, src, opts, pool, None)
}

/// As [`drive`], with an optional caller-provided in-edge graph for
/// hybrid bottom-up levels (see [`run_on_pool_with_transpose`]).
pub fn drive_with_transpose<'g, S: Strategy>(
    strategy: &S,
    graph: &'g CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
    transpose: Option<&'g CsrGraph>,
) -> BfsResult {
    try_drive_with_transpose(strategy, graph, src, opts, pool, transpose)
        .unwrap_or_else(|e| panic!("BFS worker pool failed: {e}"))
}

/// As [`drive_with_transpose`], surfacing pool failures (worker panics)
/// as `Err` instead of panicking the caller.
pub fn try_drive_with_transpose<'g, S: Strategy>(
    strategy: &S,
    graph: &'g CsrGraph,
    src: VertexId,
    opts: &BfsOptions,
    pool: &LevelPool,
    transpose: Option<&'g CsrGraph>,
) -> Result<BfsResult, PoolError> {
    let st = RunState::new_with_transpose(graph, opts, transpose);
    let stats = drive_shared(strategy, &st, src, pool)?;
    let n = graph.num_vertices();
    let levels: Vec<u32> = (0..n).map(|v| st.levels.get(v)).collect();
    let parents = st
        .parents
        .as_ref()
        .map(|p| (0..n).map(|v| p.get(v)).collect::<Vec<VertexId>>());
    debug_assert!(levels[src as usize] == 0);
    debug_assert!(parents.as_ref().is_none_or(|p| p[src as usize] == src));
    // An aborted run may have partially consumed its last level L,
    // labeling some vertices L+1 == stats.levels before quiescing.
    let max_label = stats.levels + u32::from(stats.partial);
    debug_assert!(
        levels.iter().all(|&l| l == UNVISITED || l < max_label),
        "level exceeds executed level count"
    );
    let _ = INVALID_VERTEX;
    Ok(BfsResult { levels, parents, stats })
}

/// Batch counterpart of [`try_drive_with_transpose`]: one traversal over
/// the union frontier answers every source in `sources` (1..=64, see
/// [`crate::batch`]). The level loop, dispatchers, watchdog and
/// cancellation run completely unchanged — only the seed section and the
/// per-vertex discovery kernel differ.
pub fn try_drive_batch_with_transpose<'g, S: Strategy>(
    strategy: &S,
    graph: &'g CsrGraph,
    sources: &[VertexId],
    opts: &BfsOptions,
    pool: &LevelPool,
    transpose: Option<&'g CsrGraph>,
) -> Result<crate::batch::BatchResult, PoolError> {
    let st = RunState::new_batch(graph, opts, transpose, sources);
    let stats = drive_shared(strategy, &st, 0, pool)?;
    let b = st.batch.as_ref().expect("batch state armed by new_batch");
    let queries = crate::batch::extract_results(b, graph.num_vertices());
    for qr in &queries {
        debug_assert_eq!(qr.levels[qr.source as usize], 0);
        debug_assert!(qr
            .parents
            .as_ref()
            .is_none_or(|p| p[qr.source as usize] == qr.source));
    }
    Ok(crate::batch::BatchResult { queries, stats })
}

/// The shared driver body: seeds the frontier (single-source or batched,
/// depending on how `st` was constructed), runs the level loop on the
/// pool, and assembles [`RunStats`]. Label extraction is the caller's
/// job (`src` is ignored for batch-mode state).
fn drive_shared<'g, S: Strategy>(
    strategy: &S,
    st: &RunState<'g>,
    src: VertexId,
    pool: &LevelPool,
) -> Result<RunStats, PoolError> {
    let threads = st.threads;
    let stats = PerThread::new(threads, |_| ThreadStats::default());
    let deepest = PerThread::new(threads, |_| 0u32);
    // Per-level counter snapshots: each worker copies its cumulative
    // ThreadStats here right before the level-end barrier so the leader
    // can merge a consistent cross-thread view without aliasing the
    // workers' live `&mut` stats. The hybrid heuristic needs the same
    // snapshots for its cross-thread frontier-edge sums.
    let level_snap = (st.opts.collect_level_stats || st.opts.hybrid.is_some())
        .then(|| PerThread::new(threads, |_| ThreadStats::default()));
    // Drained flight-recorder rings, filled by each worker on exit.
    let flight_dumps =
        PerThread::new(threads, |_| None::<obfs_sync::flight::RingDump>);
    // Drained latency-histogram sets, same lifecycle as the rings.
    let hist_dumps =
        PerThread::new(threads, |_| None::<Box<obfs_sync::metrics::WorkerHists>>);

    let t0 = std::time::Instant::now();
    pool.run(|ctx| {
        let tid = ctx.tid();
        // SAFETY: each worker touches only its own slot while the region
        // is active.
        let ts = unsafe { stats.get_mut(tid) };
        // SAFETY: own slot only, as above.
        let my_deepest = unsafe { deepest.get_mut(tid) };
        let mut rng = Xoshiro256StarStar::for_stream(st.opts.seed, tid as u64);
        if let Some(cfg) = &st.opts.chaos {
            // Seed-reproducible fault plan, one PRNG stream per worker
            // (no-op unless built with the `chaos` feature).
            obfs_sync::chaos::install(cfg, tid as u64);
        }
        if let Some(tok) = &st.opts.cancel {
            // Stall-breaker probe: chaos-injected stalls poll this token
            // so cancellation still lands within one dispatch quantum
            // while a worker is wedged inside an injected stall.
            obfs_sync::cancel::install_probe(tok.clone());
        }
        if let Some(cap) = st.opts.flight_recorder {
            // Shared epoch so all workers' timelines line up (no-op
            // unless built with the `trace` feature).
            obfs_sync::flight::install(cap, t0);
        }
        if st.opts.collect_histograms {
            obfs_sync::metrics::install();
        }
        if let Some(t) = &st.opts.telemetry {
            // Per-run gauges/counters shared with the embedding engine's
            // metrics registry (no-op for callers that leave it unset).
            obfs_telemetry::worker::install(std::sync::Arc::clone(t));
        }
        flight::record(flight::kind::WORKER_BEGIN, 0, tid as u64, 0);

        st.init_chunk(tid);
        ctx.barrier().wait_then(|| {
            // Seed the frontier: each source goes into the queue it hashes
            // to, so the work-stealing variants start at a "random" owner.
            let (seeded, seed_edges) = match &st.batch {
                Some(b) => {
                    // Batch seeds: claim level-0 slots per query, merge
                    // duplicate sources, push each distinct vertex once
                    // (pushed_at doubles as the in-section dedup).
                    let mut rears = vec![0usize; st.threads];
                    let mut seeded = 0usize;
                    let mut seed_edges = 0u64;
                    for (q, &s) in b.sources.iter().enumerate() {
                        let v = s as usize;
                        b.levels.set(v * b.k + q, 0);
                        if let Some(p) = &b.parents {
                            p.set(v * b.k + q, s);
                        }
                        b.visited_by.set(v, b.visited_by.get(v) | (1 << q));
                        if b.pushed_at.get(v) != 0 {
                            b.pushed_at.set(v, 0);
                            let qi = v % st.threads;
                            st.qin(0).queue(qi).push(&mut rears[qi], s);
                            seeded += 1;
                            seed_edges += st.graph.degree(s) as u64;
                        }
                    }
                    flight::record(flight::kind::BATCH, 0, b.k as u64, seeded as u64);
                    (seeded, seed_edges)
                }
                None => {
                    let q0 = (src as usize) % st.threads;
                    st.levels.set(src as usize, 0);
                    if let Some(p) = &st.parents {
                        p.set(src as usize, src);
                    }
                    if let Some(o) = &st.owner {
                        o.set(src as usize, q0 as u32 + 1);
                    }
                    let queue = st.qin(0).queue(q0);
                    let mut rear = 0usize;
                    queue.push(&mut rear, src);
                    (1, st.graph.degree(src) as u64)
                }
            };
            st.next_total.store(seeded);
            let mut dir0 = Direction::TopDown;
            if let (Some(hyb), Some(pol)) = (&st.hyb, st.opts.hybrid) {
                // Level-0 direction: Beamer's rule with nf = seed count,
                // mf = seed degree sum, mu = m (nothing explored yet) —
                // the same inputs the baseline uses for its first level.
                // SAFETY: barrier serial section.
                let ctl = unsafe { hyb.ctl.get_mut() };
                dir0 = pol.decide(
                    Direction::TopDown,
                    seeded as u64,
                    seed_edges,
                    ctl.unexplored_edges,
                    st.graph.num_vertices() as u64,
                );
                ctl.directions.push(dir0);
                // SAFETY: barrier serial section.
                unsafe { *hyb.direction.get_mut() = dir0 };
            }
            if let (Some(cs), Some(pol)) = (&st.compact, st.opts.compaction) {
                // Level-0 compaction: same density rule as every other
                // level, fed the seed count (only a forced-on policy or a
                // tiny graph compacts a single-seed frontier).
                let on = dir0 == Direction::TopDown
                    && pol.decide(seeded as u64, st.graph.num_vertices() as u64);
                // SAFETY: barrier serial section.
                unsafe { *cs.enabled.get_mut() = on };
                if on {
                    // SAFETY: barrier serial section.
                    unsafe { *cs.levels_compacted.get_mut() += 1 };
                    if let Some(t) = &st.opts.telemetry {
                        t.compacted_levels.inc();
                    }
                    flight::record(
                        flight::kind::COMPACT,
                        0,
                        seeded as u64,
                        st.scan_backend.code(),
                    );
                }
            }
            if let Some(t) = &st.opts.telemetry {
                // Leader publishes the run's starting shape so a scrape of
                // the registry mid-traversal sees level 0 under way.
                t.traversals.inc();
                t.level.set(0);
                t.frontier.set(seeded as i64);
                t.direction.set(i64::from(dir0 == Direction::BottomUp));
            }
            if let Some(tr) = &st.trace {
                // SAFETY: barrier serial section.
                let t = unsafe { tr.get_mut() };
                t.mark = std::time::Instant::now();
                t.frontier_in = seeded;
            }
            strategy.serial_prepare(&LevelEnv { st, parity: 0, level: 0 });
            // SAFETY: barrier serial section.
            unsafe { st.watchdog_arm() };
        });

        let mut parity = 0usize;
        let mut level = 0u32;
        let mut out_rear = 0usize;
        loop {
            // Direction the leader picked for this level (always top-down
            // without hybrid).
            let dir = match &st.hyb {
                // SAFETY: written only in the previous barrier's serial
                // section; read only between barriers.
                Some(h) => unsafe { *h.direction.get() },
                None => Direction::TopDown,
            };
            // Whether the leader chose prefix-sum compaction for this
            // (always top-down) level.
            let compacted = match &st.compact {
                // SAFETY: written only in the previous barrier's serial
                // section; read only between barriers.
                Some(c) => unsafe { *c.enabled.get() },
                None => false,
            };
            if dir == Direction::BottomUp {
                // Rebuild this worker's share of the frontier bitmap from
                // the level[] stores the last barrier published (under
                // chaos, that barrier also flushed every deferred store —
                // including the leader's degraded-sweep writes).
                st.fill_bitmap_chunk(level, tid);
            } else if compacted {
                // Compaction pass 1 (see crate::scan): rebuild the
                // compaction bitmap and per-chunk popcounts from the same
                // published level[] stores; the level-start barrier below
                // publishes them for the materialize pass.
                st.compact_fill_chunk(level, tid);
            }
            let env = LevelEnv { st, parity, level };
            strategy.level_start(&env, tid);
            ctx.barrier().wait();
            flight::record(
                flight::kind::LEVEL_START,
                level,
                st.qin(parity).queue(tid).rear() as u64,
                0,
            );
            if dir == Direction::BottomUp {
                // All threads take this branch (they read the same cell),
                // so strategies with internal barriers stay aligned.
                st.bottom_up_level(
                    level,
                    tid,
                    st.qout(parity).queue(tid),
                    &mut out_rear,
                    ts,
                );
            } else if compacted {
                // Compaction passes 2+3 + consume. Every thread reads the
                // same `enabled` cell, so all of them cross this internal
                // barrier together (it publishes the materialized frontier
                // array before the static-partition consume).
                st.compact_materialize(tid);
                ctx.barrier().wait();
                st.compact_consume(
                    level,
                    tid,
                    st.qout(parity).queue(tid),
                    &mut out_rear,
                    ts,
                );
            } else {
                strategy.consume(&env, &ctx, tid, &mut out_rear, &mut rng, ts);
            }
            flight::record(flight::kind::LEVEL_END, level, 0, 0);
            // Level-granularity edge publication: each worker pushes the
            // delta of its cumulative scan count into the shared run
            // counter (one TLS flag check when no telemetry is installed).
            obfs_telemetry::worker::flush_edges(ts.edges_scanned);
            if st.opts.chaos.is_some() {
                // Keep injected_faults cumulative at level granularity so
                // the per-level deltas below stay conservative. (Nothing
                // between here and the barrier injects: quiesce only
                // flushes.)
                ts.injected_faults = obfs_sync::chaos::faults_injected();
            }
            if let Some(snap) = &level_snap {
                // SAFETY: own slot only; the borrow ends before the
                // barrier, where the leader reads the peers' slots.
                unsafe { *snap.get_mut(tid) = *ts };
            }
            let this_level = level;
            ctx.barrier().wait_then(|| {
                // The run-abort decision is made HERE, once, by the
                // leader: workers must agree on which iteration exits the
                // level loop or the barrier counts diverge. A cancelled
                // run is not swept — its partially-consumed input queue
                // is exactly what the partial-state contract hands back.
                let cause = st.cancel_cause();
                if let Some(c) = cause {
                    // SAFETY: barrier serial section.
                    unsafe { *st.run_abort.get_mut() = Some(c) };
                    flight::record(
                        flight::kind::CANCEL,
                        this_level,
                        match c {
                            CancelCause::Cancelled => flight::kind::CANCEL_EXPLICIT,
                            CancelCause::DeadlineExceeded => flight::kind::CANCEL_DEADLINE,
                        },
                        0,
                    );
                }
                let degraded = cause.is_none() && st.watchdog_tripped();
                if degraded {
                    // Degraded level: finish it serially before counting
                    // the next frontier. SAFETY: barrier serial section.
                    unsafe {
                        *st.wd_degraded.get_mut() += 1;
                        st.serial_finish_level(
                            parity,
                            this_level,
                            tid,
                            st.qout(parity).queue(tid),
                            &mut out_rear,
                            ts,
                        );
                    }
                    flight::record(flight::kind::DEGRADED, this_level, 0, 0);
                }
                let produced = st.qout(parity).total_entries();
                st.next_total.store(produced);
                if st.opts.chaos.is_some() {
                    // The leader sweep above may have injected; re-snapshot
                    // its own count so this level's delta includes it.
                    ts.injected_faults = obfs_sync::chaos::faults_injected();
                }
                if let (Some(hyb), Some(pol), true) = (&st.hyb, st.opts.hybrid, cause.is_none()) {
                    // (Skipped on abort so `directions` keeps exactly one
                    // entry per *executed* level.)
                    // SAFETY: barrier serial section.
                    let ctl = unsafe { hyb.ctl.get_mut() };
                    // Cross-thread frontier edge volume: the leader's live
                    // counters (which include any sweep above) plus the
                    // peers' pre-barrier snapshots.
                    let mut fe = ts.frontier_edges;
                    if let Some(snap) = &level_snap {
                        for k in 0..st.threads {
                            if k != tid {
                                // SAFETY: peers are parked at the barrier
                                // and published their snapshots.
                                fe += unsafe { snap.get(k) }.frontier_edges;
                            }
                        }
                    }
                    let mf = fe - ctl.prev_frontier_edges;
                    ctl.prev_frontier_edges = fe;
                    // Beamer's bookkeeping order: retire the next
                    // frontier's edges from mu first, then decide.
                    ctl.unexplored_edges -= mf.min(ctl.unexplored_edges);
                    if produced > 0 {
                        let next_dir = pol.decide(
                            dir,
                            produced as u64,
                            mf,
                            ctl.unexplored_edges,
                            st.graph.num_vertices() as u64,
                        );
                        if next_dir != dir {
                            ctl.switches += 1;
                            let code = |d: Direction| match d {
                                Direction::TopDown => flight::kind::DIR_TOP_DOWN,
                                Direction::BottomUp => flight::kind::DIR_BOTTOM_UP,
                            };
                            flight::record(
                                flight::kind::DIR_SWITCH,
                                this_level + 1,
                                code(next_dir),
                                code(dir),
                            );
                        }
                        ctl.directions.push(next_dir);
                        // SAFETY: barrier serial section.
                        unsafe { *hyb.direction.get_mut() = next_dir };
                    }
                }
                if let (Some(cs), Some(pol)) = (&st.compact, st.opts.compaction) {
                    // Compaction decision for the NEXT level, after the
                    // hybrid block above settled its direction: compact
                    // only a top-down level of a run that will actually
                    // continue, so every decision recorded here is a
                    // level that runs compacted.
                    let next_dir = match &st.hyb {
                        // SAFETY: barrier serial section (written above).
                        Some(h) => unsafe { *h.direction.get() },
                        None => Direction::TopDown,
                    };
                    let on = cause.is_none()
                        && produced > 0
                        && next_dir == Direction::TopDown
                        && pol.decide(produced as u64, st.graph.num_vertices() as u64);
                    // SAFETY: barrier serial section.
                    unsafe { *cs.enabled.get_mut() = on };
                    if on {
                        // SAFETY: barrier serial section.
                        unsafe { *cs.levels_compacted.get_mut() += 1 };
                        if let Some(t) = &st.opts.telemetry {
                            t.compacted_levels.inc();
                        }
                        flight::record(
                            flight::kind::COMPACT,
                            this_level + 1,
                            produced as u64,
                            st.scan_backend.code(),
                        );
                    }
                }
                if let Some(t) = &st.opts.telemetry {
                    // Leader publishes the level boundary: a mid-run scrape
                    // sees the frontier size and direction of the level
                    // about to start.
                    t.levels.inc();
                    t.level.set(i64::from(this_level) + 1);
                    t.frontier.set(produced as i64);
                    let next_dir = match &st.hyb {
                        // SAFETY: barrier serial section (written above).
                        Some(h) => unsafe { *h.direction.get() },
                        None => Direction::TopDown,
                    };
                    t.direction.set(i64::from(next_dir == Direction::BottomUp));
                }
                if let (Some(tr), Some(snap)) = (&st.trace, &level_snap) {
                    // SAFETY: barrier serial section; every peer is parked
                    // at the barrier and published its snapshot (its own
                    // `get_mut` borrow ended) before arriving.
                    let t = unsafe { tr.get_mut() };
                    let now = std::time::Instant::now();
                    let mut sum = *ts; // leader's own live counters
                    for k in 0..st.threads {
                        if k != tid {
                            // SAFETY: barrier serial section — every peer
                            // published its snapshot before arriving.
                            sum.merge(unsafe { snap.get(k) });
                        }
                    }
                    let counters = sum.diff(&t.prev_totals);
                    t.prev_totals = sum;
                    t.entries.push(crate::stats::LevelStats {
                        level: this_level,
                        frontier: t.frontier_in,
                        discovered: produced,
                        duration: now - t.mark,
                        degraded,
                        direction: dir,
                        compacted,
                        counters,
                    });
                    t.mark = now;
                    t.frontier_in = produced;
                }
            });
            // SAFETY: written only in the serial section of the barrier
            // every worker just crossed; read-only between barriers. The
            // guard keeps token-free runs at zero extra cost.
            if st.opts.cancel.is_some() && unsafe { st.run_abort.get().is_some() } {
                // Leader-published abort: all workers observe it on the
                // same iteration and quiesce together.
                *my_deepest = level;
                break;
            }
            if st.next_total.load() == 0 {
                *my_deepest = level;
                break;
            }
            // My old input queue becomes my next output queue.
            st.qin(parity).queue(tid).reset();
            out_rear = 0;
            parity ^= 1;
            level += 1;
            let next_env_parity = parity;
            let next_level = level;
            ctx.barrier().wait_then(|| {
                strategy.serial_prepare(&LevelEnv {
                    st,
                    parity: next_env_parity,
                    level: next_level,
                });
                // SAFETY: barrier serial section.
                unsafe { st.watchdog_arm() };
            });
        }
        flight::record(flight::kind::WORKER_END, 0, tid as u64, 0);
        // Credit this worker's faults and drop its plan so a later run on
        // the same pool starts clean (returns 0 without `chaos`). With
        // level stats on, keep the last per-level snapshot instead: the
        // handful of racy ops after the final level barrier would
        // otherwise break the sum(level deltas) == totals invariant.
        let injected_total = obfs_sync::chaos::uninstall();
        if st.trace.is_none() {
            ts.injected_faults = injected_total;
        }
        if st.opts.flight_recorder.is_some() {
            if let Some(dump) = obfs_sync::flight::uninstall() {
                // SAFETY: own slot only.
                unsafe { *flight_dumps.get_mut(tid) = Some(dump) };
            }
        }
        if st.opts.collect_histograms {
            if let Some(h) = obfs_sync::metrics::uninstall() {
                // SAFETY: own slot only.
                unsafe { *hist_dumps.get_mut(tid) = Some(h) };
            }
        }
        if st.opts.cancel.is_some() {
            obfs_sync::cancel::uninstall_probe();
        }
        if st.opts.telemetry.is_some() {
            // Final flush catches edges scanned after the last level
            // barrier (degraded sweeps, abort quiesce), then clears the
            // TLS hook so a later run on the same pool starts clean.
            obfs_telemetry::worker::flush_edges(ts.edges_scanned);
            obfs_telemetry::worker::uninstall();
        }
    })?;
    let traversal_time = t0.elapsed();
    let _ = src;

    let levels_run = deepest.into_values().into_iter().max().unwrap_or(0) + 1;
    let per_thread = stats.into_values();
    // SAFETY: workers are done (pool.run returned); no serial section can
    // be mutating the cell.
    let abort_cause = unsafe { *st.run_abort.get() };
    let mut stats = RunStats::from_threads(per_thread, levels_run, traversal_time);
    stats.partial = abort_cause.is_some();
    stats.outcome = match abort_cause {
        Some(CancelCause::Cancelled) => Outcome::Cancelled,
        Some(CancelCause::DeadlineExceeded) => Outcome::DeadlineExceeded,
        None => Outcome::Complete, // may become Degraded below
    };
    // SAFETY: workers are done (pool.run returned); no serial section can
    // be mutating the cell.
    stats.degraded_levels = unsafe { *st.wd_degraded.get() };
    if stats.outcome == Outcome::Complete && stats.degraded_levels > 0 {
        stats.outcome = Outcome::Degraded;
    }
    if let Some(hyb) = &st.hyb {
        // SAFETY: workers are done (pool.run returned); no serial section
        // can be mutating the cell.
        let ctl = unsafe { hyb.ctl.get() };
        debug_assert_eq!(
            ctl.directions.len() as u32,
            levels_run,
            "one recorded direction per executed level"
        );
        stats.directions = ctl.directions.clone();
        stats.direction_switches = ctl.switches;
    }
    if let Some(cs) = &st.compact {
        // SAFETY: workers are done (pool.run returned); no serial section
        // can be mutating the cell.
        stats.compacted_levels = unsafe { *cs.levels_compacted.get() };
    }
    // Every parallel run resolves a backend (serial BFS never reaches
    // this driver, so its reports honestly say `None`).
    stats.kernel_backend = Some(st.scan_backend);
    if let Some(tr) = &st.trace {
        // SAFETY: workers are done, as above.
        stats.level_stats = unsafe { tr.get() }.entries.clone();
    }
    let dumps = flight_dumps.into_values();
    if dumps.iter().any(|d| d.is_some()) {
        // Only present when the recorder actually captured something —
        // i.e. requested AND built with the `trace` feature — so callers
        // can distinguish "feature off" from "empty trace".
        stats.flight = Some(crate::flight::FlightRecording {
            workers: dumps.into_iter().map(Option::unwrap_or_default).collect(),
        });
    }
    if st.opts.collect_histograms {
        stats.hists = Some(crate::stats::RunHists {
            workers: hist_dumps
                .into_values()
                .into_iter()
                .map(|h| *h.unwrap_or_default())
                .collect(),
        });
    }
    Ok(stats)
}

// lint:region hot-path:take-slot
/// Walk helper used by the lock-free consumers: read slot `i` of `queue`,
/// returning `None` if it holds the sentinel, clearing it otherwise.
/// (Separated out so the optimistic variants share one implementation of
/// the zero-on-read protocol.)
#[inline]
pub(crate) fn take_slot(
    queue: &crate::frontier::FrontierQueue,
    i: usize,
) -> Option<VertexId> {
    if i >= queue.capacity() {
        return None;
    }
    let s = queue.slot(i);
    if s == crate::frontier::EMPTY_SLOT {
        return None;
    }
    queue.clear_slot(i);
    Some(decode(s))
}
// lint:endregion

#[cfg(test)]
mod tests {
    use crate::options::{Algorithm, BfsOptions};
    use crate::run_bfs;
    use crate::stats::Outcome;
    use obfs_graph::gen;
    use obfs_sync::{CancelToken, Clock};

    #[test]
    fn pre_cancelled_token_yields_cancelled_partial_result() {
        let g = gen::binary_tree(1023);
        let serial = crate::serial::serial_bfs(&g, 0);
        for algo in [Algorithm::Bfscl, Algorithm::Bfswl, Algorithm::Bfswsl, Algorithm::EdgeCl] {
            let clock = Clock::wall();
            let tok = CancelToken::new(&clock);
            tok.cancel(); // before the run even starts
            let opts = BfsOptions {
                threads: 3,
                record_parents: true,
                clock: clock.clone(),
                cancel: Some(tok),
                ..Default::default()
            };
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.stats.outcome, Outcome::Cancelled, "{algo}");
            assert!(r.stats.partial, "{algo}");
            // The leader publishes the abort at the first level-end
            // barrier: exactly one level runs.
            assert_eq!(r.stats.levels, 1, "{algo}: quiesce within one level");
            crate::validate::check_partial(&g, 0, &r, &serial.levels)
                .unwrap_or_else(|e| panic!("{algo}: partial state broken: {e}"));
        }
    }

    #[test]
    fn expired_deadline_on_frozen_clock_is_deterministic() {
        let g = gen::erdos_renyi(400, 2800, 3);
        let serial = crate::serial::serial_bfs(&g, 0);
        let (clock, hand) = Clock::manual();
        hand.set_ns(1_000);
        let tok = CancelToken::with_deadline_at(&clock, 500); // already past
        let opts = BfsOptions {
            threads: 4,
            record_parents: true,
            clock,
            cancel: Some(tok),
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        assert_eq!(r.stats.outcome, Outcome::DeadlineExceeded);
        assert!(r.stats.partial);
        assert_eq!(r.stats.levels, 1);
        crate::validate::check_partial(&g, 0, &r, &serial.levels).unwrap();
    }

    #[test]
    fn unexpired_deadline_on_frozen_clock_completes() {
        let g = gen::erdos_renyi(400, 2800, 3);
        let (clock, _hand) = Clock::manual(); // frozen at 0: deadline never passes
        let tok = CancelToken::with_deadline_at(&clock, 1);
        let opts =
            BfsOptions { threads: 4, clock, cancel: Some(tok), ..Default::default() };
        let r = run_bfs(Algorithm::Bfswsl, &g, 0, &opts);
        assert_eq!(r.stats.outcome, Outcome::Complete);
        assert!(!r.stats.partial);
        assert_eq!(r.levels, crate::serial::serial_bfs(&g, 0).levels);
    }

    #[test]
    fn watchdog_deadline_reads_the_injected_clock() {
        // Satellite proof: the watchdog and cancellation share one Clock.
        // A frozen manual clock can never trip a nonzero watchdog
        // deadline; a zero deadline trips every level — both without a
        // single wall-clock read.
        let g = gen::binary_tree(255);
        let (clock, _hand) = Clock::manual();
        let base = BfsOptions { threads: 3, clock, ..Default::default() };
        let relaxed = BfsOptions {
            watchdog: Some(crate::options::WatchdogPolicy::deadline(
                std::time::Duration::from_millis(1),
            )),
            ..base.clone()
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &relaxed);
        assert_eq!(r.stats.degraded_levels, 0, "frozen clock cannot trip");
        assert_eq!(r.stats.outcome, Outcome::Complete);
        let strict = BfsOptions {
            watchdog: Some(crate::options::WatchdogPolicy::deadline(
                std::time::Duration::ZERO,
            )),
            ..base
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &strict);
        assert_eq!(r.stats.degraded_levels, r.stats.levels, "every level degrades");
        assert_eq!(r.stats.outcome, Outcome::Degraded);
        assert!(!r.stats.partial, "degraded is a full traversal");
        assert_eq!(r.levels, crate::serial::serial_bfs(&g, 0).levels);
    }

    #[test]
    fn cancelled_hybrid_run_keeps_direction_bookkeeping_aligned() {
        let g = gen::erdos_renyi(600, 9000, 17);
        let clock = Clock::wall();
        let tok = CancelToken::new(&clock);
        tok.cancel();
        let opts = BfsOptions {
            threads: 4,
            hybrid: Some(crate::options::HybridPolicy::default()),
            collect_level_stats: true,
            clock,
            cancel: Some(tok),
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        assert_eq!(r.stats.outcome, Outcome::Cancelled);
        assert_eq!(r.stats.directions.len() as u32, r.stats.levels);
        assert_eq!(r.stats.level_stats.len() as u32, r.stats.levels);
    }

    #[test]
    fn level_stats_match_frontier_profile() {
        let g = gen::binary_tree(127); // frontiers 1,2,4,...,64
        let opts = BfsOptions {
            threads: 3,
            collect_level_stats: true,
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        let tr = &r.stats.level_stats;
        assert_eq!(tr.len() as u32, r.stats.levels);
        // Single-parent tree: no duplicate pushes possible, so the trace
        // frontier sizes are exact powers of two.
        for (d, e) in tr.iter().enumerate() {
            assert_eq!(e.level, d as u32);
            assert_eq!(e.frontier, 1 << d, "level {d} frontier");
            if d + 1 < tr.len() {
                assert_eq!(e.discovered, 1 << (d + 1));
            } else {
                assert_eq!(e.discovered, 0, "last level discovers nothing");
            }
            assert!(!e.degraded, "no watchdog configured");
        }
        // Consumed totals match: sum of frontiers = reached vertices.
        let consumed: usize = tr.iter().map(|e| e.frontier).sum();
        assert_eq!(consumed, 127);
    }

    #[test]
    fn level_stats_off_by_default() {
        let g = gen::path(10);
        let r = run_bfs(Algorithm::Bfswl, &g, 0, &BfsOptions::default());
        assert!(r.stats.level_stats.is_empty());
        assert!(r.stats.flight.is_none());
    }

    #[test]
    fn level_stats_work_for_all_parallel_algorithms() {
        let g = gen::erdos_renyi(300, 2100, 4);
        let opts = BfsOptions {
            threads: 4,
            collect_level_stats: true,
            ..Default::default()
        };
        for algo in Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial) {
            let r = run_bfs(algo, &g, 0, &opts);
            assert_eq!(r.stats.level_stats.len() as u32, r.stats.levels, "{algo}");
            assert!(r.stats.level_stats.iter().all(|e| e.frontier > 0), "{algo}");
        }
    }

    /// The per-level counter deltas must sum back to the merged totals —
    /// the conservation invariant the bench schema leans on.
    #[test]
    fn level_stats_counters_conserve_totals() {
        let g = gen::erdos_renyi(400, 3000, 9);
        for algo in Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial) {
            let opts = BfsOptions {
                threads: 4,
                collect_level_stats: true,
                ..Default::default()
            };
            let r = run_bfs(algo, &g, 0, &opts);
            let mut sum = crate::stats::ThreadStats::default();
            for e in &r.stats.level_stats {
                assert!(e.counters.steal.is_consistent(), "{algo} level {}", e.level);
                sum.merge(&e.counters);
            }
            assert_eq!(sum, r.stats.totals, "{algo}: level deltas must sum to totals");
            let degraded: u32 = r.stats.level_stats.iter().map(|e| u32::from(e.degraded)).sum();
            assert_eq!(degraded, r.stats.degraded_levels, "{algo}");
        }
    }

    #[test]
    fn histograms_off_by_default() {
        let g = gen::erdos_renyi(200, 1400, 2);
        let r = run_bfs(Algorithm::Bfscl, &g, 0, &BfsOptions { threads: 3, ..Default::default() });
        assert!(r.stats.hists.is_none());
    }

    #[test]
    fn histograms_collected_for_all_parallel_algorithms() {
        let g = gen::erdos_renyi(500, 3500, 5);
        for algo in Algorithm::ALL.into_iter().filter(|a| *a != Algorithm::Serial) {
            let opts = BfsOptions {
                threads: 4,
                collect_histograms: true,
                ..Default::default()
            };
            let r = run_bfs(algo, &g, 0, &opts);
            let hists = r.stats.hists.as_ref().unwrap_or_else(|| panic!("{algo}: no hists"));
            assert_eq!(hists.workers.len(), 4, "{algo}: one dump per worker");
            let merged = hists.merged();
            // Every parallel variant crosses the level barrier at least
            // once per level on every worker.
            assert!(
                merged.barrier_wait_us.count() >= r.stats.levels as u64 * 4,
                "{algo}: barrier episodes {} < levels {} x 4",
                merged.barrier_wait_us.count(),
                r.stats.levels
            );
            // The merged count is exactly the sum over workers (merge
            // loses nothing).
            let per_worker: u64 = hists.workers.iter().map(|w| w.barrier_wait_us.count()).sum();
            assert_eq!(merged.barrier_wait_us.count(), per_worker, "{algo}");
        }
    }

    /// Dispatcher-specific histogram coverage: centralized variants time
    /// every segment fetch; work-stealing variants time steal attempts;
    /// optimistic fetches record a retry-burst sample per success.
    #[test]
    fn histograms_cover_the_right_paths_per_dispatcher() {
        let g = gen::erdos_renyi(500, 3500, 6);
        let opts = BfsOptions { threads: 4, collect_histograms: true, ..Default::default() };

        let r = run_bfs(Algorithm::Bfscl, &g, 0, &opts);
        let m = r.stats.hists.as_ref().unwrap().merged();
        assert_eq!(m.segment_fetch_us.count(), r.stats.totals.segments_fetched);
        assert_eq!(m.fetch_retry_burst.count(), r.stats.totals.segments_fetched);
        // Burst histogram records the retry count per fetch: its sum is
        // bounded by the retry total (each retry appears in one burst).
        assert!(m.steal_us.is_empty(), "BFS_CL never steals");

        let r = run_bfs(Algorithm::Bfswl, &g, 0, &opts);
        let m = r.stats.hists.as_ref().unwrap().merged();
        assert_eq!(m.steal_us.count(), r.stats.totals.steal.attempts);

        // Locked centralized variant: fetches timed, but no sanity-check
        // retries exist, so the burst histogram stays honest-empty.
        let r = run_bfs(Algorithm::Bfsc, &g, 0, &opts);
        let m = r.stats.hists.as_ref().unwrap().merged();
        assert_eq!(m.segment_fetch_us.count(), r.stats.totals.segments_fetched);
        assert!(m.fetch_retry_burst.is_empty(), "locked fetches never retry");
    }

    /// Chaos-injected delays sit inside the racy cursor operations of
    /// the fetch path, so the segment-fetch latency histogram must shift
    /// right when chaos delays are dialed up: the collector sees the
    /// same latencies the traversal actually suffered.
    #[cfg(feature = "chaos")]
    #[test]
    fn chaos_delays_land_in_higher_latency_buckets() {
        let g = gen::erdos_renyi(250, 1700, 11);
        let base = BfsOptions {
            threads: 4,
            collect_histograms: true,
            segment: crate::options::SegmentPolicy::Fixed(8),
            ..Default::default()
        };
        let clean = run_bfs(Algorithm::Bfscl, &g, 0, &base);
        let clean_m = clean.stats.hists.as_ref().unwrap().merged();

        // Delay-only plan, dialed far past any honest fetch latency.
        let chaos_cfg = obfs_sync::ChaosConfig {
            seed: 7,
            defer_chance: 0.0,
            stale_window: 0,
            delay_chance: 0.15,
            delay_spins: 60_000,
            skew_chance: 0.0,
            skew_max: 0,
            ..Default::default()
        };
        let noisy = run_bfs(
            Algorithm::Bfscl,
            &g,
            0,
            &BfsOptions { chaos: Some(chaos_cfg), ..base.clone() },
        );
        assert!(noisy.stats.totals.injected_faults > 0, "chaos plan never fired");
        let noisy_m = noisy.stats.hists.as_ref().unwrap().merged();
        assert!(noisy_m.segment_fetch_us.count() > 0);
        assert!(
            noisy_m.segment_fetch_us.max() > clean_m.segment_fetch_us.max(),
            "delayed fetches must reach higher buckets: chaos max {} vs clean max {}",
            noisy_m.segment_fetch_us.max(),
            clean_m.segment_fetch_us.max()
        );
        // And the traversal stayed exact under the same delays.
        assert_eq!(noisy.levels, crate::serial::serial_bfs(&g, 0).levels);
    }

    /// Wrap path: a deliberately tiny flight ring must overwrite oldest
    /// events, report them via `FlightRecording::dropped`, and the
    /// derived profile must surface the wrap.
    #[cfg(feature = "trace")]
    #[test]
    fn flight_ring_wrap_is_counted_and_profiled() {
        let g = gen::erdos_renyi(500, 3500, 4);
        let opts = BfsOptions {
            threads: 3,
            flight_recorder: Some(8), // far too small on purpose
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfswl, &g, 0, &opts);
        let rec = r.stats.flight.as_ref().expect("trace feature is on");
        assert!(rec.dropped() > 0, "an 8-event ring must wrap on this run");
        assert!(rec.workers.iter().all(|w| w.events.len() <= 8));
        let profile = crate::flight::analysis::Profile::from_recording(rec);
        assert_eq!(profile.total_dropped, rec.dropped());
        assert!(profile.render_table().contains("suffix window"));
        // The exported trace round-trips the dropped counts too.
        let reparsed =
            crate::flight::parse_chrome_trace(&crate::flight::to_chrome_trace(rec)).unwrap();
        assert_eq!(&reparsed, rec);
    }
}
