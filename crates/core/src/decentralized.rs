//! BFSDL — decentralized lock-free BFS (paper §IV-A.3).
//!
//! The `p` per-thread queues are grouped into `j ∈ [1, p]` pools, each
//! with its own racy dispatch cursor. A thread picks a random pool at the
//! start of every level and drains it with the same optimistic segment
//! dispatch as BFSCL. When its pool runs dry it probes random pools up to
//! `c·j·log j` times (the balls-and-bins bound: w.h.p. every pool is
//! probed at least once) before giving up for the level.
//!
//! `j = 1` degenerates to BFSCL; `j = p` is fully distributed.

use crate::centralized::consume_pool_lockfree;
use crate::driver::{LevelEnv, Strategy};
use crate::stats::ThreadStats;
use obfs_runtime::WorkerCtx;
use obfs_sync::flight;
use obfs_util::Xoshiro256StarStar;

/// BFSDL strategy (pool count from [`crate::BfsOptions::pools`]).
pub struct Decentralized;

impl Strategy for Decentralized {
    fn serial_prepare(&self, env: &LevelEnv<'_, '_>) {
        for j in 0..env.st.pools() {
            let (start, _) = env.st.pool_range(j);
            env.st.pool_cursors[j].store(start);
        }
    }

    fn consume(
        &self,
        env: &LevelEnv<'_, '_>,
        _ctx: &WorkerCtx<'_>,
        tid: usize,
        out_rear: &mut usize,
        rng: &mut Xoshiro256StarStar,
        ts: &mut ThreadStats,
    ) {
        let st = env.st;
        let qin = st.qin(env.parity);
        let out = st.qout(env.parity).queue(tid);
        let pools = st.pools();
        // Each thread starts at a random pool each level (paper §IV-A.3);
        // with a topology, a random pool *on its own socket* (§IV-C).
        let mut pool = match &st.opts.topology {
            Some(topo) => {
                let local = local_pools(env, topo, tid);
                local[rng.below_usize(local.len())]
            }
            None => rng.below_usize(pools),
        };
        loop {
            consume_pool_lockfree(
                st,
                qin,
                pool,
                st.pool_range(pool),
                env.level,
                tid,
                out_rear,
                out,
                ts,
            );
            if st.watchdog_tripped() {
                return; // leader sweep finishes the level
            }
            // Our pool looks dry; probe random pools for leftover work.
            match find_nonempty_pool(env, tid, pool, rng, ts) {
                Some(next) => pool = next,
                None => return,
            }
        }
    }
}

/// Pools whose queue range contains at least one queue owned by a
/// worker on `tid`'s socket (always non-empty: `tid`'s own pool
/// qualifies).
fn local_pools(
    env: &LevelEnv<'_, '_>,
    topo: &obfs_runtime::Topology,
    tid: usize,
) -> Vec<usize> {
    let st = env.st;
    let mut out: Vec<usize> = (0..st.pools())
        .filter(|&j| {
            let (s, e) = st.pool_range(j);
            (s..e).any(|q| q < topo.threads() && topo.same_socket(tid, q))
        })
        .collect();
    if out.is_empty() {
        out.extend(0..st.pools());
    }
    out
}

/// Probe up to `c·j·log j` random pools for one with a queue that still
/// has unconsumed entries. Pure reads — no cursor updates — so failed
/// probes cost nothing to other threads. With a topology, the first half
/// of the budget is spent on same-socket pools (the §IV-C priority
/// scheme: local pools first, remote as fallback).
fn find_nonempty_pool(
    env: &LevelEnv<'_, '_>,
    tid: usize,
    current: usize,
    rng: &mut Xoshiro256StarStar,
    ts: &mut ThreadStats,
) -> Option<usize> {
    let st = env.st;
    let pools = st.pools();
    if pools <= 1 {
        return None;
    }
    let budget = st.opts.retry_budget(pools);
    let mut wd_retries = 0u64;
    if let Some(topo) = &st.opts.topology {
        let local = local_pools(env, topo, tid);
        for _ in 0..budget / 2 {
            let j = local[rng.below_usize(local.len())];
            if j != current && pool_has_work(env, j) {
                return Some(j);
            }
            ts.fetch_retries += 1;
            flight::record(flight::kind::FETCH_RETRY, env.level, j as u64, 1);
            if st.watchdog_retry(&mut wd_retries) {
                return None; // degraded: stop probing
            }
        }
    }
    for _ in 0..budget {
        let j = rng.below_usize(pools);
        if j == current {
            continue;
        }
        if pool_has_work(env, j) {
            return Some(j);
        }
        ts.fetch_retries += 1;
        flight::record(flight::kind::FETCH_RETRY, env.level, j as u64, 1);
        if st.watchdog_retry(&mut wd_retries) {
            return None; // degraded: stop probing
        }
    }
    // The paper's balls-and-bins argument only covers every pool "w.h.p.",
    // which is weak for small j (with j = 2 a thread misses the other
    // pool in all `c·j·log j` coin flips with probability ~6%; if every
    // thread misses in the same level, live work would be abandoned and
    // the BFS would terminate early — found by the soak suite). A final
    // deterministic sweep over all pools makes termination-with-empty-
    // frontier a guarantee instead of a probability, at O(j) cost once
    // per give-up.
    (0..pools).find(|&j| j != current && pool_has_work(env, j))
}

/// Racy check whether any queue in pool `j` still has unconsumed entries.
fn pool_has_work(env: &LevelEnv<'_, '_>, j: usize) -> bool {
    let st = env.st;
    let qin = st.qin(env.parity);
    let (s, e) = st.pool_range(j);
    (s..e).any(|k| qin.queue(k).front() < qin.queue(k).rear())
}

#[cfg(test)]
mod tests {
    use crate::options::{Algorithm, BfsOptions};
    use crate::serial::serial_bfs;
    use crate::run_bfs;
    use obfs_graph::gen;

    fn opts(threads: usize, pools: usize) -> BfsOptions {
        BfsOptions { threads, pools, ..Default::default() }
    }

    #[test]
    fn matches_serial_across_pool_counts() {
        let g = gen::erdos_renyi(600, 4000, 7);
        let ser = serial_bfs(&g, 11);
        for pools in [1, 2, 3, 4, 8] {
            let r = run_bfs(Algorithm::Bfsdl, &g, 11, &opts(4, pools));
            assert_eq!(r.levels, ser.levels, "pools={pools}");
        }
    }

    #[test]
    fn fully_distributed_pools() {
        // j = p: every queue is its own pool.
        let g = gen::barabasi_albert(500, 2, 3);
        let ser = serial_bfs(&g, 0);
        let r = run_bfs(Algorithm::Bfsdl, &g, 0, &opts(6, 6));
        assert_eq!(r.levels, ser.levels);
    }

    #[test]
    fn deep_graph_many_levels() {
        let g = gen::path(400);
        let ser = serial_bfs(&g, 0);
        let r = run_bfs(Algorithm::Bfsdl, &g, 0, &opts(4, 2));
        assert_eq!(r.levels, ser.levels);
        assert_eq!(r.stats.levels, 400);
    }

    #[test]
    fn single_thread_single_pool() {
        let g = gen::cycle(64);
        let ser = serial_bfs(&g, 5);
        let r = run_bfs(Algorithm::Bfsdl, &g, 5, &opts(1, 1));
        assert_eq!(r.levels, ser.levels);
    }

    #[test]
    fn numa_topology_pool_preference_is_correct() {
        let g = gen::erdos_renyi(800, 6400, 13);
        let ser = serial_bfs(&g, 0);
        let o = BfsOptions {
            threads: 8,
            pools: 4,
            topology: Some(obfs_runtime::Topology::blocked(8, 2)),
            ..Default::default()
        };
        let r = run_bfs(Algorithm::Bfsdl, &g, 0, &o);
        assert_eq!(r.levels, ser.levels);
    }

    /// Regression: with j=2 pools and few threads on a deep graph, the
    /// randomized pool probes can all miss the one pool that still has
    /// work; without the deterministic final sweep the BFS terminated
    /// early (soak seed 6). Many levels + many repetitions make the
    /// probabilistic failure near-certain if the sweep regresses.
    #[test]
    fn never_abandons_work_when_probes_miss() {
        let g = gen::grid2d(40, 40); // ~80 levels of tiny frontiers
        let ser = serial_bfs(&g, 316);
        for seed in 0..30 {
            let o = BfsOptions {
                threads: 2,
                pools: 2,
                seed,
                segment: crate::options::SegmentPolicy::Fixed(3),
                ..Default::default()
            };
            let r = run_bfs(Algorithm::Bfsdl, &g, 316, &o);
            assert_eq!(r.levels, ser.levels, "abandoned work at seed {seed}");
        }
    }

    #[test]
    fn pool_count_exceeding_threads_is_clamped() {
        let g = gen::star(100);
        let ser = serial_bfs(&g, 0);
        let r = run_bfs(Algorithm::Bfsdl, &g, 0, &opts(3, 99));
        assert_eq!(r.levels, ser.levels);
    }
}
